#include "src/core/campaign.h"

#include <algorithm>
#include <chrono>
#include <random>

#include "src/common/logging.h"
#include "src/conf/plan_equiv.h"

namespace zebra {

namespace {

int64_t SumField(const std::map<std::string, AppStageCounts>& per_app,
                 int64_t AppStageCounts::*field) {
  int64_t total = 0;
  for (const auto& [app, counts] : per_app) {
    total += counts.*field;
  }
  return total;
}

// RAII duration-collector installation (exception-safe around a work unit).
class ScopedDurationCollector {
 public:
  explicit ScopedDurationCollector(std::vector<double>* collector) {
    SetRunDurationCollector(collector);
  }
  ~ScopedDurationCollector() { SetRunDurationCollector(nullptr); }
  ScopedDurationCollector(const ScopedDurationCollector&) = delete;
  ScopedDurationCollector& operator=(const ScopedDurationCollector&) = delete;
};

}  // namespace

int64_t CampaignReport::TotalOriginal() const {
  return SumField(per_app, &AppStageCounts::original);
}
int64_t CampaignReport::TotalAfterStatic() const {
  return SumField(per_app, &AppStageCounts::after_static);
}
int64_t CampaignReport::TotalAfterPrerun() const {
  return SumField(per_app, &AppStageCounts::after_prerun);
}
int64_t CampaignReport::TotalAfterUncertainty() const {
  return SumField(per_app, &AppStageCounts::after_uncertainty);
}
int64_t CampaignReport::TotalExecuted() const {
  return SumField(per_app, &AppStageCounts::executed_runs);
}

// ---------------------------------------------------------------------------
// CampaignFolder: canonical-order merge of unit results.
// ---------------------------------------------------------------------------

CampaignFolder::CampaignFolder(const ConfSchema& schema, const CampaignOptions& options)
    : schema_(schema),
      frequent_failure_threshold_(options.frequent_failure_threshold) {}

void CampaignFolder::BeginApp(const std::string& app, int64_t original_count,
                              int64_t after_static_count, int tests_total) {
  AppStageCounts& counts = report_.per_app[app];
  counts.original = original_count;
  counts.after_static = after_static_count;
  counts.tests_total = tests_total;
  report_.sharing[app];  // the app appears in sharing stats even when all-zero

  // Canonical execution order runs every pre-run of an app before any of its
  // dynamic phases (exactly what the sequential campaign does), so all
  // pre-runs count toward runs_to_first_detection of any unit in this app.
  executed_before_ += tests_total;
}

void CampaignFolder::Fold(const UnitWorkResult& unit) {
  AppStageCounts& counts = report_.per_app[unit.app];
  counts.after_prerun += unit.after_prerun;
  counts.after_uncertainty += unit.after_uncertainty;
  counts.executed_runs +=
      unit.prerun_executions + unit.executed_runs + unit.coupling_runs;
  if (unit.started_any_node) {
    ++counts.tests_with_nodes;
  }

  SharingStats& sharing = report_.sharing[unit.app];
  if (unit.any_conf_usage) {
    ++sharing.tests_with_conf_usage;
    if (unit.conf_sharing_detected) {
      ++sharing.tests_with_sharing;
    }
  }

  report_.first_trial_candidates += unit.first_trial_candidates;
  report_.filtered_by_hypothesis += unit.filtered_by_hypothesis;
  report_.cache_hits += unit.cache_hits;
  report_.cache_misses += unit.cache_misses;
  report_.equiv_hits += unit.equiv_hits;
  report_.canonicalized_plans += unit.canonicalized_plans;
  report_.mispredictions += unit.mispredictions;
  report_.cache_evictions += unit.cache_evictions;
  report_.coupling_runs += unit.coupling_runs;
  report_.coupling_confirmations += unit.coupling_confirmations;
  if (unit.dynamic_phase_skipped) {
    ++report_.units_skipped;
  }

  if (report_.runs_to_first_detection == 0 && unit.runs_to_first_confirmation > 0) {
    report_.runs_to_first_detection =
        executed_before_ + unit.runs_to_first_confirmation;
    report_.first_detection_param = unit.confirmations.front().param;
  }
  // Coupling add-on runs are deliberately excluded: runs_to_first_detection
  // measures the enumerative phase the prioritization optimizes, and must be
  // identical with the add-on on or off.
  executed_before_ += unit.executed_runs;

  for (const UnitConfirmation& confirmation : unit.confirmations) {
    ParamFinding& finding = report_.findings[confirmation.param];
    if (finding.param.empty()) {
      finding.param = confirmation.param;
      const ParamSpec* spec = schema_.Find(confirmation.param);
      finding.owning_app = spec != nullptr ? spec->app : "unknown";
    }
    finding.witness_tests.insert(unit.test_id);
    if (finding.example_failure.empty()) {
      finding.example_failure = confirmation.witness_failure;
    }
    finding.best_p_value = std::min(finding.best_p_value, confirmation.p_value);

    confirmed_tests_per_param_[confirmation.param].insert(unit.test_id);
    if (static_cast<int>(confirmed_tests_per_param_[confirmation.param].size()) >=
        frequent_failure_threshold_) {
      globally_unsafe_.insert(confirmation.param);
    }
  }

  report_.run_durations_seconds.insert(report_.run_durations_seconds.end(),
                                       unit.run_durations.begin(),
                                       unit.run_durations.end());
}

CampaignReport CampaignFolder::Finish() {
  report_.total_unit_test_runs = report_.TotalExecuted();
  return std::move(report_);
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

Campaign::Campaign(const ConfSchema& schema, const UnitTestRegistry& corpus,
                   CampaignOptions options)
    : schema_(schema),
      corpus_(corpus),
      options_(std::move(options)),
      generator_(schema, corpus,
                 GeneratorOptions{options_.enable_round_robin,
                                  options_.prune_unread_instances,
                                  options_.static_prior,
                                  options_.enable_coupling_plans,
                                  options_.max_coupling_plans_per_test}),
      runner_(options_.significance, options_.first_trials) {
  if (options_.apps.empty()) {
    std::set<std::string> apps;
    for (const UnitTestDef& test : corpus_.tests()) {
      apps.insert(test.app);
    }
    options_.apps.assign(apps.begin(), apps.end());
  }
  if (options_.enable_equiv_cache) {
    options_.enable_run_cache = true;  // the equiv layer rides on the cache
  }
  if (options_.enable_run_cache) {
    run_cache_ = std::make_unique<RunCache>(
        RunCache::Limits{options_.cache_max_entries, options_.cache_max_bytes});
  }
}

bool Campaign::VerifyInstance(const GeneratedInstance& instance, UnitWorkResult* unit,
                              std::set<std::string>* confirmed_in_test) const {
  Verdict verdict = runner_.Verify(instance, &unit->executed_runs);
  if (verdict.kind == Verdict::Kind::kNotCandidate) {
    return false;
  }
  ++unit->first_trial_candidates;
  if (verdict.kind == Verdict::Kind::kFilteredFlaky) {
    ++unit->filtered_by_hypothesis;
    return false;
  }

  // Confirmed unsafe.
  if (unit->runs_to_first_confirmation == 0) {
    unit->runs_to_first_confirmation = unit->executed_runs;
  }
  confirmed_in_test->insert(instance.plan.param);
  unit->confirmations.push_back(UnitConfirmation{
      instance.plan.param, verdict.p_value, verdict.witness_failure});
  return true;
}

void Campaign::BisectPool(const UnitTestDef& test, std::vector<GeneratedInstance> pool,
                          UnitWorkResult* unit,
                          std::set<std::string>* confirmed_in_test) const {
  if (pool.empty()) {
    return;
  }
  if (pool.size() == 1) {
    VerifyInstance(pool.front(), unit, confirmed_in_test);
    return;
  }
  size_t half = pool.size() / 2;
  std::vector<GeneratedInstance> left(pool.begin(), pool.begin() + half);
  std::vector<GeneratedInstance> right(pool.begin() + half, pool.end());
  for (auto* side : {&left, &right}) {
    TestPlan plan;
    for (const GeneratedInstance& instance : *side) {
      plan.Add(instance.plan);
    }
    ++unit->executed_runs;
    if (!RunUnitTestShared(test, plan, /*trial=*/0)->passed) {
      BisectPool(test, *side, unit, confirmed_in_test);
    }
  }
}

void Campaign::RunCouplingForTest(const UnitTestDef& test,
                                  const std::vector<CoupledInstance>& coupled,
                                  const std::set<std::string>& globally_unsafe,
                                  UnitWorkResult* unit) const {
  if (coupled.empty()) {
    return;
  }
  std::set<std::string> confirmed_in_test;
  for (const UnitConfirmation& confirmation : unit->confirmations) {
    confirmed_in_test.insert(confirmation.param);
  }
  for (const CoupledInstance& pair : coupled) {
    // A pair with an already-confirmed member cannot be attributed cleanly
    // (the known-unsafe member would explain any failure), so skip it.
    bool any_settled = false;
    for (const std::string& param : pair.params) {
      if (globally_unsafe.count(param) > 0 || confirmed_in_test.count(param) > 0) {
        any_settled = true;
      }
    }
    if (any_settled) {
      continue;
    }

    ++unit->coupling_runs;
    std::shared_ptr<const TestResult> hetero =
        RunUnitTestShared(test, pair.plan, /*trial=*/0);
    if (hetero->passed) {
      continue;
    }

    // Blame isolation: a member that fails heterogeneous on its own is the
    // enumerative phase's business, not a coupling.
    bool member_fails_alone = false;
    for (const ParamPlan& member : pair.plan.params()) {
      TestPlan solo;
      solo.Add(member);
      ++unit->coupling_runs;
      if (!RunUnitTestShared(test, solo, /*trial=*/0)->passed) {
        member_fails_alone = true;
        break;
      }
    }
    if (member_fails_alone) {
      continue;
    }

    // Definition 3.1 lifted to pairs: confirm only when every homogeneous
    // control of the pair passes.
    bool controls_pass = true;
    for (int side = 0; side < 2 && controls_pass; ++side) {
      TestPlan homo;
      for (const ParamPlan& member : pair.plan.params()) {
        ParamPlan control = member;
        control.assigner = ValueAssigner::Homogeneous(
            side == 0 ? member.assigner.group_value : member.assigner.other_value);
        homo.Add(std::move(control));
      }
      ++unit->coupling_runs;
      controls_pass = RunUnitTestShared(test, homo, /*trial=*/0)->passed;
    }
    if (!controls_pass) {
      continue;
    }

    for (const std::string& param : pair.params) {
      confirmed_in_test.insert(param);
      ++unit->coupling_confirmations;
      unit->confirmations.push_back(UnitConfirmation{
          param, options_.significance,
          "coupled failure: " + hetero->failure});
    }
  }
}

std::vector<std::string> Campaign::ParamOrder(
    const std::map<std::string, std::vector<GeneratedInstance>>& by_param) const {
  std::vector<std::string> order;
  order.reserve(by_param.size());
  for (const auto& [param, instances] : by_param) {
    order.push_back(param);
  }
  // Map iteration is name-sorted; a stable sort on priority keeps name order
  // within each band.
  std::stable_sort(order.begin(), order.end(),
                   [&](const std::string& a, const std::string& b) {
                     return by_param.at(a).front().plan.static_priority >
                            by_param.at(b).front().plan.static_priority;
                   });
  if (options_.shuffle_order_seed != 0) {
    std::mt19937_64 rng(options_.shuffle_order_seed);
    std::shuffle(order.begin(), order.end(), rng);
  }
  return order;
}

void Campaign::RunPooledForTest(
    const UnitTestDef& test,
    std::map<std::string, std::vector<GeneratedInstance>> by_param,
    const std::set<std::string>& globally_unsafe, UnitWorkResult* unit) const {
  std::set<std::string> confirmed_in_test;
  std::vector<std::string> order = ParamOrder(by_param);
  size_t max_rounds = 0;
  for (const auto& [param, instances] : by_param) {
    max_rounds = std::max(max_rounds, instances.size());
  }

  for (size_t round = 0; round < max_rounds; ++round) {
    // Pool the round-th instance of every parameter that still has one and
    // is not already settled. Pool order follows the static prior, so
    // bisection descends into the wire-tainted half first.
    std::vector<GeneratedInstance> pool;
    for (const std::string& param : order) {
      const std::vector<GeneratedInstance>& instances = by_param.at(param);
      if (round >= instances.size() || globally_unsafe.count(param) > 0 ||
          confirmed_in_test.count(param) > 0) {
        continue;
      }
      pool.push_back(instances[round]);
    }
    if (pool.empty()) {
      continue;
    }
    TestPlan plan;
    for (const GeneratedInstance& instance : pool) {
      plan.Add(instance.plan);
    }
    ++unit->executed_runs;
    if (RunUnitTestShared(test, plan, /*trial=*/0)->passed) {
      continue;  // every pooled parameter assumed safe for this instance
    }
    BisectPool(test, std::move(pool), unit, &confirmed_in_test);
  }
}

UnitWorkResult Campaign::RunUnitDynamic(
    const PreRunRecord& record, const std::set<std::string>& globally_unsafe) const {
  UnitWorkResult unit;
  unit.app = record.test->app;
  unit.test_id = record.test->id;

  const SessionReport& session = record.result.report;
  unit.any_conf_usage = session.any_conf_usage;
  unit.conf_sharing_detected = session.conf_sharing_detected;
  unit.started_any_node = session.StartedAnyNode();

  // Impacted-only / only-tests restrictions: the pre-run (our read-trace
  // probe) already ran; the dynamic phase is what gets skipped.
  if (!options_.only_tests.empty() &&
      options_.only_tests.count(unit.test_id) == 0) {
    unit.dynamic_phase_skipped = true;
    return unit;
  }
  if (!options_.impacted_params.empty()) {
    bool intersects = false;
    for (const std::string& param : session.AllParamsRead()) {
      if (options_.impacted_params.count(param) > 0) {
        intersects = true;
        break;
      }
    }
    if (!intersects) {
      unit.dynamic_phase_skipped = true;
      return unit;
    }
  }

  int64_t before_uncertainty = 0;
  std::vector<GeneratedInstance> instances =
      generator_.Generate(record, &before_uncertainty);
  unit.after_prerun = before_uncertainty;
  unit.after_uncertainty = static_cast<int64_t>(instances.size());
  if (instances.empty()) {
    return unit;
  }

  // Observational-equivalence layer: the pre-run's read surface canonicalizes
  // and trace-predicts every plan this unit's dynamic phase executes (see
  // plan_equiv.h). Installed for this unit only — the surface is the promise
  // of *this* test's pre-run. Works identically in-process and inside a
  // forked scheduler worker (process-global scoped state, like the cache).
  ReadSurface surface(session);
  ScopedReadSurface scoped_surface(
      options_.enable_equiv_cache && surface.usable() ? &surface : nullptr);

  // Coupled plans are derived from the generated instances before they are
  // regrouped below; pairs with a filtered-out member are dropped.
  std::vector<CoupledInstance> coupled =
      generator_.GenerateCoupled(record, instances);
  coupled.erase(
      std::remove_if(coupled.begin(), coupled.end(),
                     [this](const CoupledInstance& pair) {
                       for (const std::string& param : pair.params) {
                         if (!options_.only_params.empty() &&
                             options_.only_params.count(param) == 0) {
                           return true;
                         }
                         if (options_.exclude_params.count(param) > 0) {
                           return true;
                         }
                       }
                       return false;
                     }),
      coupled.end());

  std::map<std::string, std::vector<GeneratedInstance>> by_param;
  for (GeneratedInstance& instance : instances) {
    const std::string& param = instance.plan.param;
    if (!options_.only_params.empty() && options_.only_params.count(param) == 0) {
      continue;
    }
    if (options_.exclude_params.count(param) > 0) {
      continue;
    }
    by_param[param].push_back(std::move(instance));
  }
  for (const auto& [param, param_instances] : by_param) {
    unit.params_tested.push_back(param);
  }

  if (options_.enable_pooling) {
    RunPooledForTest(*record.test, std::move(by_param), globally_unsafe, &unit);
  } else {
    // Ablation: verify every instance individually (stop per parameter once
    // confirmed in this test).
    std::set<std::string> confirmed_in_test;
    for (const std::string& param : ParamOrder(by_param)) {
      const std::vector<GeneratedInstance>& param_instances = by_param.at(param);
      for (const GeneratedInstance& instance : param_instances) {
        if (globally_unsafe.count(param) > 0 || confirmed_in_test.count(param) > 0) {
          break;
        }
        VerifyInstance(instance, &unit, &confirmed_in_test);
      }
    }
  }

  // Coupling add-on: strictly after the enumerative phase, so that phase's
  // results (and runs_to_first accounting) are untouched whether or not the
  // add-on runs.
  RunCouplingForTest(*record.test, coupled, globally_unsafe, &unit);
  return unit;
}

UnitWorkResult Campaign::RunUnit(const UnitTestDef& test,
                                 const std::set<std::string>& globally_unsafe) {
  RunCache* cache = active_cache();
  ScopedRunCache scoped_cache(cache);
  // Per-unit stat deltas only make sense when this engine is the cache's
  // sole user; under a shared cache, concurrent workers move the counters
  // between our two reads, so the deltas are skipped and the scheduler
  // fills report totals from the shared cache once at the end.
  const bool track_unit_stats = cache != nullptr && shared_run_cache_ == nullptr;
  RunCache::Stats stats_before;
  if (track_unit_stats) {
    stats_before = cache->stats();
  }

  std::vector<double> durations;
  UnitWorkResult unit;
  {
    ScopedDurationCollector scoped_collector(&durations);
    int64_t prerun_executions = 0;
    PreRunRecord record = generator_.PreRunTest(test, &prerun_executions);
    unit = RunUnitDynamic(record, globally_unsafe);
    unit.prerun_executions = prerun_executions;
  }
  unit.run_durations = std::move(durations);
  if (track_unit_stats) {
    RunCache::Stats stats = cache->stats();
    unit.cache_hits = stats.hits - stats_before.hits;
    unit.cache_misses = stats.misses - stats_before.misses;
    unit.equiv_hits = stats.equiv_hits - stats_before.equiv_hits;
    unit.canonicalized_plans =
        stats.canonicalized_plans - stats_before.canonicalized_plans;
    unit.mispredictions = stats.mispredictions - stats_before.mispredictions;
    unit.cache_evictions = stats.evictions - stats_before.evictions;
  }
  return unit;
}

CampaignReport Campaign::Run() {
  CampaignFolder folder(schema_, options_);
  ScopedRunCache scoped_cache(run_cache_.get());
  ScopedDurationCollector scoped_collector(&folder.report().run_durations_seconds);
  auto start = std::chrono::steady_clock::now();

  // Cancellation (SIGINT/SIGTERM via options_.cancel_flag) is honored at
  // unit boundaries only: the report stays a valid fold prefix, and callers
  // holding a run cache get the chance to persist it before exiting.
  auto cancelled = [this]() {
    return options_.cancel_flag != nullptr && *options_.cancel_flag != 0;
  };

  for (const std::string& app : options_.apps) {
    if (cancelled()) {
      break;
    }
    std::vector<PreRunRecord> records = generator_.PreRunApp(app, nullptr);
    folder.BeginApp(app, generator_.OriginalInstanceCount(app),
                    generator_.StaticPrunedInstanceCount(app),
                    static_cast<int>(records.size()));

    for (const PreRunRecord& record : records) {
      if (cancelled()) {
        ZLOG_WARN << "campaign: cancellation requested; stopping app " << app
                  << " early";
        break;
      }
      UnitWorkResult unit = RunUnitDynamic(record, folder.globally_unsafe());
      unit.prerun_executions = 1;  // the PreRunApp baseline for this record
      folder.Fold(unit);
    }

    ZLOG_INFO << "campaign: app " << app << " done, runs so far "
              << folder.report().TotalExecuted();
  }

  auto end = std::chrono::steady_clock::now();
  if (run_cache_ != nullptr) {
    RunCache::Stats stats = run_cache_->stats();
    folder.report().cache_hits = stats.hits;
    folder.report().cache_misses = stats.misses;
    folder.report().equiv_hits = stats.equiv_hits;
    folder.report().canonicalized_plans = stats.canonicalized_plans;
    folder.report().mispredictions = stats.mispredictions;
    folder.report().cache_evictions = stats.evictions;
    folder.report().cache_load_failures = stats.load_failures;
  }
  folder.report().wall_seconds = std::chrono::duration<double>(end - start).count();
  return folder.Finish();
}

}  // namespace zebra
