// In-process thread-pool campaign scheduler: the work-stealing campaign
// without the forks.
//
// The forked schedulers (sharded_campaign.h, parallel_scheduler.h) buy
// isolation with address-space copies: every worker process gets its own
// ConfAgent singleton, its own run cache, its own everything — at the cost of
// a fork per worker, a pipe round-trip per unit, and a full serialize/parse
// of every UnitWorkResult. On the native corpus (~53us per unit-test run)
// that overhead is comparable to the work itself, which is the native-regime
// performance gap this runner closes.
//
// Isolation without processes. Everything a forked worker relied on the
// address-space copy for is now per-thread:
//
//   * ConfAgent — each worker installs a ScopedThreadConfAgent, so
//     ConfAgent::Current() resolves to a private agent (own sessions, own
//     intern arena, own conf registry) for the whole worker lifetime.
//   * Campaign engine — each worker owns a private Campaign (generator,
//     runner, options copy); RunUnit never touches another worker's engine.
//   * Harness globals — the run-cache installation pointer, the pre-run
//     ReadSurface pointer, and the duration collector are thread_local, so a
//     worker's installation windows never leak across threads.
//   * SimClock/Cluster — already per-TestContext; nothing to do.
//
// What *is* shared is chosen, not accidental: one internally synchronized
// RunCache serves all workers (share_run_cache), so a result computed by one
// worker is a hit for every other — strictly better than the forked
// schedulers' per-process caches, which recompute each other's entries.
//
// Determinism is inherited unchanged from the work-stealing design: workers
// run units speculatively under a snapshot of the globally-unsafe set, a
// coordinator folds results with CampaignFolder in canonical unit order, and
// any buffered result whose snapshot is stale (a parameter it tested became
// globally unsafe outside the snapshot) is discarded and re-run. Findings,
// Table-5 stage counts, and runs_to_first_detection are bitwise-identical to
// Campaign(...).Run() at every thread count.
//
// Result delivery is lock-free: one pre-sized slot per unit; a worker writes
// the result into its unit's slot and publishes with a release store on the
// slot's ready flag. The only mutexes are the dispatch queue (workers pull
// units, the coordinator pushes requeues) and the coordinator's wakeup
// condition variable — neither is held during unit execution.
//
// Fault tolerance. The fault-injection vocabulary (fault_injection.h) maps to
// threads as follows: kCrash terminates the worker *thread* after reporting a
// failed attempt (the thread analog of a dead process — remaining workers
// absorb the queue; all workers dead throws, as in the forked scheduler);
// kGarbledFrame reports a failed attempt (there is no frame to garble — the
// delivery path is typed, which is precisely what the forked runner's parse
// failures defended against); kHang reports a failed attempt immediately and
// is counted in hung_workers. There is no watchdog: a thread cannot be
// SIGKILLed without taking down the process, so a *real* runaway unit is the
// forked schedulers' territory — they remain the process-fault testbed
// (docs/ROBUSTNESS.md). Failed attempts feed the same requeue/backoff/
// quarantine machinery: a unit failing unit_attempt_limit attempts is
// quarantined into poisoned_units and folds as an empty stub.
//
// Crash safety: the journal/resume contract is identical to the forked
// scheduler's (campaign_journal.h) — every folded result is appended at fold
// time, resume replays the valid prefix through the same fold.

#ifndef SRC_CORE_THREAD_POOL_SCHEDULER_H_
#define SRC_CORE_THREAD_POOL_SCHEDULER_H_

#include <string>

#include "src/core/campaign.h"
#include "src/core/fault_injection.h"

namespace zebra {

struct ThreadPoolCampaignOptions {
  // Worker threads to spawn (clamped to the unit count).
  int workers = 1;

  // Deterministic fault-injection plan evaluated at (worker, test id,
  // attempt) coordinates — see fault_injection.h and the thread mapping
  // above. Empty = no injected faults.
  FaultPlan faults;

  // Crash-safe journal (campaign_journal.h), same contract as the forked
  // scheduler: non-empty appends every folded unit result; resume=true
  // replays an existing journal's valid prefix instead of re-executing.
  std::string journal_path;
  bool resume = false;

  // Journal durability: records per fdatasync (group commit), same contract
  // as the forked scheduler. 1 = sync every append (default).
  int journal_sync_batch = 1;

  // Test hook simulating a coordinator crash: stop dispatching and return
  // after this many *live* folds (journal replay does not count).
  int abort_after_folds = 0;

  // When the campaign options enable a run cache, share one internally
  // synchronized cache across all workers instead of one cache per worker
  // engine. Cross-worker sharing can only add hits (a served result is
  // bitwise what a re-execution would produce), never change findings.
  bool share_run_cache = true;
};

// Runs the campaign over `workers` in-process threads pulling (app,
// unit-test) work units dynamically. Findings, stage counts, and
// runs_to_first_detection are bitwise-identical to Campaign(...).Run() for
// every thread count. Throws Error on invalid worker counts or when every
// worker thread has died (injected crashes).
CampaignReport RunThreadPoolCampaign(const ConfSchema& schema,
                                     const UnitTestRegistry& corpus,
                                     CampaignOptions options, int workers);

// Full-control variant (fault injection, journal/resume, abort hooks).
CampaignReport RunThreadPoolCampaign(const ConfSchema& schema,
                                     const UnitTestRegistry& corpus,
                                     CampaignOptions options,
                                     const ThreadPoolCampaignOptions& pool);

}  // namespace zebra

#endif  // SRC_CORE_THREAD_POOL_SCHEDULER_H_
