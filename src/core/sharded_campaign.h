// Sharded campaign: the paper's "test in parallel" (§4) on one machine.
//
// Test instances are independent, but ConfAgent sessions are process-global,
// so intra-process parallelism is impossible by design — exactly why the
// paper runs one test per Docker container. We reproduce that isolation with
// worker *processes*: applications are partitioned across forked workers,
// each worker runs its shard's campaign in its own address space, serializes
// its report over a pipe, and the parent merges the shards.

#ifndef SRC_CORE_SHARDED_CAMPAIGN_H_
#define SRC_CORE_SHARDED_CAMPAIGN_H_

#include "src/core/campaign.h"

namespace zebra {

// Runs the campaign with apps partitioned over up to `workers` forked child
// processes. Results are bitwise-identical to a sequential run (campaigns
// are deterministic and shards are independent); wall-clock shrinks with the
// slowest shard. Throws Error if a worker fails.
CampaignReport RunShardedCampaign(const ConfSchema& schema,
                                  const UnitTestRegistry& corpus,
                                  CampaignOptions options, int workers);

}  // namespace zebra

#endif  // SRC_CORE_SHARDED_CAMPAIGN_H_
