// Sharded campaign: the paper's "test in parallel" (§4) on one machine.
//
// Test instances are independent, but ConfAgent sessions are process-global,
// so intra-process parallelism is impossible by design — exactly why the
// paper runs one test per Docker container. We reproduce that isolation with
// worker *processes*: applications are partitioned across forked workers,
// each worker runs its shard's campaign in its own address space, serializes
// its report over a pipe, and the parent merges the shards.
//
// Fault tolerance (docs/ROBUSTNESS.md). The parent drains shard pipes with
// poll() under a watchdog deadline (CampaignOptions::watchdog_floor_seconds +
// watchdog_multiplier * p95 of completed shard durations); a hung shard is
// SIGKILLed. Any failed shard — crash, hang, torn or garbled report — is
// recovered by re-running its apps sequentially in the parent, so the merged
// report is identical to a healthy run (shard campaigns are deterministic).
// The runner throws only on setup errors (bad worker count, pipe/fork
// failure), never on worker failure.

#ifndef SRC_CORE_SHARDED_CAMPAIGN_H_
#define SRC_CORE_SHARDED_CAMPAIGN_H_

#include "src/core/campaign.h"
#include "src/core/fault_injection.h"

namespace zebra {

struct ShardedCampaignOptions {
  // Worker processes to fork (clamped to the app count).
  int workers = 1;

  // Deterministic fault-injection plan evaluated in each shard child before
  // it runs, at (shard index, test id, attempt 0) coordinates — see
  // fault_injection.h. Empty = no injected faults.
  FaultPlan faults;
};

// Runs the campaign with apps partitioned over up to `workers` forked child
// processes. Results are bitwise-identical to a sequential run (campaigns
// are deterministic and shards are independent); wall-clock shrinks with the
// slowest shard.
CampaignReport RunShardedCampaign(const ConfSchema& schema,
                                  const UnitTestRegistry& corpus,
                                  CampaignOptions options, int workers);

// Full-control variant (fault-injection hooks for tests).
CampaignReport RunShardedCampaign(const ConfSchema& schema,
                                  const UnitTestRegistry& corpus,
                                  CampaignOptions options,
                                  const ShardedCampaignOptions& sharded);

}  // namespace zebra

#endif  // SRC_CORE_SHARDED_CAMPAIGN_H_
