// Work-stealing test-campaign scheduler: the paper's "test in parallel" (§4)
// with dynamic load balancing and exact sequential semantics.
//
// The static per-app sharding in sharded_campaign.h is hard-capped by its
// largest shard (minidfs alone is ~70% of the corpus work). This scheduler
// instead fans out *(app, unit test)* work units: a persistent pool of forked
// workers — fork-per-worker preserves the ConfAgent process-global-session
// isolation the paper gets from containers — pulls units from a parent-owned
// queue over pipes and streams per-unit shard reports back incrementally.
//
// Determinism. The parent merges unit results with CampaignFolder in the
// canonical unit order (options.apps order, then corpus registration order),
// the same fold Campaign::Run performs, so findings, Table-5 stage counts,
// and runs_to_first_detection are bitwise-identical to the sequential
// campaign at every worker count. The only cross-unit coupling is the
// frequent-failure rule: each dispatch carries the parent's current
// globally-unsafe snapshot (a best-effort broadcast of newly unsafe
// parameters to idle workers). Because folding is canonical, a dispatched
// snapshot is always a *subset* of the exact sequential set; if the
// difference touches a parameter the unit actually tested, the parent
// discards the speculative result and re-runs the unit with the exact set —
// the prune accelerates, it never changes results.
//
// Fault tolerance (docs/ROBUSTNESS.md). A worker that dies mid-unit (EOF /
// broken pipe / garbled frame) is reaped and its unit re-queued to the
// survivors after a capped exponential backoff; a worker that *hangs* is
// caught by a watchdog deadline (CampaignOptions::watchdog_floor_seconds +
// watchdog_multiplier * p95 of observed unit completions), SIGKILLed, and
// treated the same way. A unit that keeps killing workers is quarantined
// after CampaignOptions::unit_attempt_limit attempts and recorded in
// CampaignReport::poisoned_units instead of looping forever. The scheduler
// throws only when no workers remain. All children are reaped on every exit
// path.
//
// Crash safety. With journal_path set, every folded unit result is appended
// to a checksummed on-disk journal (campaign_journal.h) the moment it folds;
// resume=true replays the journal's valid prefix through the same fold and
// dispatches only the remaining units — the resumed report is
// bitwise-identical to an uninterrupted run.
//
// Each worker keeps a process-local memoized run cache across the units it
// executes when options.enable_run_cache is set (see testkit/run_cache.h);
// hit/miss totals fold into CampaignReport.

#ifndef SRC_CORE_PARALLEL_SCHEDULER_H_
#define SRC_CORE_PARALLEL_SCHEDULER_H_

#include <string>

#include "src/core/campaign.h"
#include "src/core/fault_injection.h"

namespace zebra {

struct ParallelCampaignOptions {
  // Worker processes to fork (clamped to the unit count).
  int workers = 1;

  // Deterministic fault-injection plan evaluated inside each worker at
  // (worker, test id, attempt) coordinates — see fault_injection.h. Empty =
  // no injected faults.
  FaultPlan faults;

  // Legacy single-crash shorthand (folded into `faults` as an explicit
  // crash spec): the worker with this index _Exits instead of executing
  // whenever it is assigned the unit for this test id. Empty = disabled.
  std::string crash_on_test_id;
  int crash_worker_index = 0;

  // Crash-safe journal (campaign_journal.h). Non-empty: append every folded
  // unit result to this file. With resume=true an existing journal's valid
  // prefix is replayed instead of re-executed; a fingerprint mismatch
  // (different apps/corpus/result-affecting options) throws.
  std::string journal_path;
  bool resume = false;

  // Journal durability: records per fdatasync (group commit). 1 = sync
  // every append (the default and the safest); N coalesces up to N records
  // per sync, trading at most the last N-1 unsynced records of resume
  // coverage for far fewer disk barriers on the fold path. Never affects
  // findings.
  int journal_sync_batch = 1;

  // Test hook simulating a parent crash: stop dispatching and return after
  // this many *live* folds (journal replay does not count). 0 = disabled.
  // The returned report is partial; the journal retains the folded prefix.
  int abort_after_folds = 0;
};

// Runs the campaign over `workers` forked worker processes pulling (app,
// unit-test) work units dynamically. Findings, stage counts, and
// runs_to_first_detection are bitwise-identical to Campaign(...).Run() for
// every worker count. Throws Error on invalid worker counts or when every
// worker has died.
CampaignReport RunWorkStealingCampaign(const ConfSchema& schema,
                                       const UnitTestRegistry& corpus,
                                       CampaignOptions options, int workers);

// Full-control variant (fault injection, journal/resume, abort hooks).
CampaignReport RunWorkStealingCampaign(const ConfSchema& schema,
                                       const UnitTestRegistry& corpus,
                                       CampaignOptions options,
                                       const ParallelCampaignOptions& parallel);

}  // namespace zebra

#endif  // SRC_CORE_PARALLEL_SCHEDULER_H_
