// Work-stealing test-campaign scheduler: the paper's "test in parallel" (§4)
// with dynamic load balancing and exact sequential semantics.
//
// The static per-app sharding in sharded_campaign.h is hard-capped by its
// largest shard (minidfs alone is ~70% of the corpus work). This scheduler
// instead fans out *(app, unit test)* work units: a persistent pool of forked
// workers — fork-per-worker preserves the ConfAgent process-global-session
// isolation the paper gets from containers — pulls units from a parent-owned
// queue over pipes and streams per-unit shard reports back incrementally.
//
// Determinism. The parent merges unit results with CampaignFolder in the
// canonical unit order (options.apps order, then corpus registration order),
// the same fold Campaign::Run performs, so findings, Table-5 stage counts,
// and runs_to_first_detection are bitwise-identical to the sequential
// campaign at every worker count. The only cross-unit coupling is the
// frequent-failure rule: each dispatch carries the parent's current
// globally-unsafe snapshot (a best-effort broadcast of newly unsafe
// parameters to idle workers). Because folding is canonical, a dispatched
// snapshot is always a *subset* of the exact sequential set; if the
// difference touches a parameter the unit actually tested, the parent
// discards the speculative result and re-runs the unit with the exact set —
// the prune accelerates, it never changes results.
//
// Fault tolerance. A worker that dies mid-unit (EOF / broken pipe) is
// reaped, its in-flight unit is re-queued to the survivors, and the campaign
// completes; the scheduler throws only when no workers remain. All children
// are reaped on every exit path.
//
// Each worker keeps a process-local memoized run cache across the units it
// executes when options.enable_run_cache is set (see testkit/run_cache.h);
// hit/miss totals fold into CampaignReport.

#ifndef SRC_CORE_PARALLEL_SCHEDULER_H_
#define SRC_CORE_PARALLEL_SCHEDULER_H_

#include <string>

#include "src/core/campaign.h"

namespace zebra {

struct ParallelCampaignOptions {
  // Worker processes to fork (clamped to the unit count).
  int workers = 1;

  // Fault-injection hook for tests: the worker with this index _Exits
  // instead of executing whenever it is assigned the unit for this test id.
  // Surviving workers pick the unit up. Empty = disabled.
  std::string crash_on_test_id;
  int crash_worker_index = 0;
};

// Runs the campaign over `workers` forked worker processes pulling (app,
// unit-test) work units dynamically. Findings, stage counts, and
// runs_to_first_detection are bitwise-identical to Campaign(...).Run() for
// every worker count. Throws Error on invalid worker counts or when every
// worker has died.
CampaignReport RunWorkStealingCampaign(const ConfSchema& schema,
                                       const UnitTestRegistry& corpus,
                                       CampaignOptions options, int workers);

// Full-control variant (fault-injection hooks for tests).
CampaignReport RunWorkStealingCampaign(const ConfSchema& schema,
                                       const UnitTestRegistry& corpus,
                                       CampaignOptions options,
                                       const ParallelCampaignOptions& parallel);

}  // namespace zebra

#endif  // SRC_CORE_PARALLEL_SCHEDULER_H_
