// CampaignExecutor: one interface over every campaign execution backend.
//
// The campaign layer grew four ways to run the same fold — sequential
// (Campaign::Run), per-app sharding (sharded_campaign.h), forked
// work-stealing (parallel_scheduler.h), and the in-process thread pool
// (thread_pool_scheduler.h). They share one contract: findings, Table-5
// stage counts, and runs_to_first_detection are bitwise-identical across
// backends and worker counts; only wall-clock and the robustness surface
// differ. This interface pins that contract down so harness layers
// (journal/resume, fault injection, watchdog, run caching, plan-equivalence
// dedup) and callers (CLI, benches, tests) are written once against
// `CampaignExecutor` instead of once per backend — and so a future
// distributed fabric (ROADMAP) is "implement this interface", not "re-plumb
// every layer".
//
// Capability flags express what a backend can honor instead of silently
// ignoring options: process faults need forked workers, journaling needs a
// dynamic unit-order scheduler. Run() throws Error when handed an
// ExecutorOptions it cannot honor — a campaign that quietly dropped its
// journal would be worse than one that refused to start.

#ifndef SRC_CORE_CAMPAIGN_EXECUTOR_H_
#define SRC_CORE_CAMPAIGN_EXECUTOR_H_

#include <memory>
#include <optional>
#include <string>

#include "src/core/campaign.h"
#include "src/core/fault_injection.h"

namespace zebra {

enum class ExecutorKind {
  kSequential,   // Campaign::Run on the calling thread
  kSharded,      // per-app forked shards (sharded_campaign.h)
  kStealing,     // forked work-stealing pool (parallel_scheduler.h)
  kThreadPool,   // in-process thread pool (thread_pool_scheduler.h)
  kDistributed,  // TCP coordinator/agent fabric (distributed_campaign.h)
};

// Backend-independent execution controls. Each backend honors the subset its
// capability flags advertise and throws on the rest.
struct ExecutorOptions {
  // Parallel workers (processes or threads, per backend). Sequential
  // requires 1.
  int workers = 1;

  // Deterministic fault-injection plan (fault_injection.h). The forked
  // backends inject real process faults; the thread pool maps them to
  // failed attempts (see thread_pool_scheduler.h); sequential rejects any
  // non-empty plan.
  FaultPlan faults;

  // Crash-safe journal + resume (campaign_journal.h). Honored by the
  // dynamic-order schedulers (stealing, thread pool) only.
  std::string journal_path;
  bool resume = false;

  // Journal durability: records per fdatasync (group commit). 1 syncs every
  // append; N trades at most the last N-1 unsynced records of resume
  // coverage for fewer disk barriers. Never affects findings.
  int journal_sync_batch = 1;

  // Test hook: stop after this many live folds (dynamic schedulers only).
  int abort_after_folds = 0;

  // Thread pool only: one shared internally synchronized run cache across
  // workers instead of a cache per worker engine.
  bool share_run_cache = true;

  // Distributed fabric only (distributed_campaign.h). `workers` is the agent
  // count there; agent_threads is each agent's local thread pool. Every
  // other backend rejects non-default values — a silently ignored fleet
  // shape or fault plan would be worse than a refusal.
  int agent_threads = 1;
  NetFaultPlan net_faults;
  // Fork local agent processes (single-box default). false = listen on
  // listen_address and wait for remote `--connect` agents.
  bool spawn_agents = true;
  std::string listen_address;
  // Leases kept in flight per agent, as a multiple of its thread count.
  // 0 = the fabric's default (2); any other value is fabric-only.
  int pipeline_depth = 0;
  // Directory for per-agent persistent run caches ("" = none); see
  // campaign_agent.h, "Warm starts".
  std::string agent_cache_dir;
};

class CampaignExecutor {
 public:
  virtual ~CampaignExecutor() = default;

  // Stable lowercase identifier ("sequential", "sharded", "stealing",
  // "threadpool", "distributed") — what ParseExecutorKind accepts and
  // benches/CLIs print.
  virtual const char* name() const = 0;

  // True when workers are separate processes, so injected kCrash/kHang
  // faults exercise real process death / watchdog SIGKILL paths.
  virtual bool supports_process_faults() const = 0;

  // True when the backend folds in canonical unit order incrementally and
  // can journal every fold (journal_path / resume / abort_after_folds).
  virtual bool supports_journal() const = 0;

  // True when the backend accepts any fault plan at all (even thread-mapped).
  virtual bool supports_fault_injection() const = 0;

  // Runs the campaign. The determinism contract: for a fixed (schema,
  // corpus, options), findings, stage counts, and runs_to_first_detection
  // are identical across every backend and every `exec.workers` value.
  // Throws Error on options the backend cannot honor.
  virtual CampaignReport Run(const ConfSchema& schema,
                             const UnitTestRegistry& corpus,
                             CampaignOptions options,
                             const ExecutorOptions& exec) = 0;
};

// Factory over the five backends.
std::unique_ptr<CampaignExecutor> MakeExecutor(ExecutorKind kind);

// Name -> kind ("sequential", "sharded", "stealing", "threadpool",
// "distributed"); nullopt for anything else.
std::optional<ExecutorKind> ParseExecutorKind(const std::string& name);

const char* ExecutorKindName(ExecutorKind kind);

}  // namespace zebra

#endif  // SRC_CORE_CAMPAIGN_EXECUTOR_H_
