#include "src/core/worker_ipc.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace zebra {

namespace {
constexpr size_t kFrameHeaderSize = 16;
}  // namespace

bool WriteAll(int fd, const void* data, size_t size) {
  if (size == 0) {
    // Explicit so that a zero-length payload (fabric heartbeats, empty
    // frames) never reaches write(2) with a possibly-null pointer, and so a
    // half-closed socket doesn't spuriously fail an empty send. EPIPE is
    // only observable once bytes are actually written.
    return true;
  }
  const char* bytes = static_cast<const char*>(data);
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, bytes + written, size - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

bool ReadExact(int fd, void* data, size_t size) {
  if (size == 0) {
    return true;  // mirror WriteAll: never pass a null buffer to read(2)
  }
  char* bytes = static_cast<char*>(data);
  size_t read_total = 0;
  while (read_total < size) {
    ssize_t n = ::read(fd, bytes + read_total, size - read_total);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return false;  // EOF before the expected byte count
    }
    read_total += static_cast<size_t>(n);
  }
  return true;
}

bool ReadToEof(int fd, std::string* out) {
  char buffer[4096];
  while (true) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return true;
    }
    out->append(buffer, static_cast<size_t>(n));
  }
}

bool WriteFrame(int fd, const std::string& payload) {
  char header[kFrameHeaderSize + 1];
  std::snprintf(header, sizeof(header), "%0*zu", static_cast<int>(kFrameHeaderSize),
                payload.size());
  return WriteAll(fd, header, kFrameHeaderSize) &&
         WriteAll(fd, payload.data(), payload.size());
}

bool ReadFrame(int fd, std::string* payload) {
  char header[kFrameHeaderSize + 1] = {0};
  if (!ReadExact(fd, header, kFrameHeaderSize)) {
    return false;
  }
  size_t size = 0;
  for (size_t i = 0; i < kFrameHeaderSize; ++i) {
    if (header[i] < '0' || header[i] > '9') {
      return false;
    }
    size = size * 10 + static_cast<size_t>(header[i] - '0');
  }
  payload->assign(size, '\0');
  return size == 0 || ReadExact(fd, payload->data(), size);
}

bool ReapAll(const std::vector<pid_t>& pids) {
  bool all_clean = true;
  for (pid_t pid : pids) {
    if (pid < 0) {
      continue;
    }
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
    if (reaped != pid || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      all_clean = false;
    }
  }
  return all_clean;
}

}  // namespace zebra
