#include "src/core/fault_injection.h"

#include "src/common/strings.h"

namespace zebra {

namespace {

bool SpecMatches(const FaultSpec& spec, int worker, const std::string& test_id,
                 int attempt) {
  if (!spec.test_id.empty() && spec.test_id != test_id) {
    return false;
  }
  if (spec.worker >= 0 && spec.worker != worker) {
    return false;
  }
  if (spec.attempt >= 0 && spec.attempt != attempt) {
    return false;
  }
  return true;
}

// Stable coin flip in [0, 1): folds the coordinate into the plan seed. The
// worker index is deliberately excluded so the flip replays identically
// under any unit-to-worker assignment.
double Coin(uint64_t seed, FaultKind kind, const std::string& test_id,
            int attempt) {
  uint64_t digest = HashFnv64(test_id, seed ^ 0x9e3779b97f4a7c15ull);
  digest = HashFnv64(Int64ToString(static_cast<int64_t>(kind)), digest);
  digest = HashFnv64(Int64ToString(attempt), digest);
  // Top 53 bits -> exactly representable double in [0, 1).
  return static_cast<double>(digest >> 11) / 9007199254740992.0;
}

}  // namespace

bool FaultPlan::DecideKind(FaultKind kind, int worker, const std::string& test_id,
                           int attempt, FaultSpec* out) const {
  for (const FaultSpec& spec : specs) {
    if (spec.kind == kind && SpecMatches(spec, worker, test_id, attempt)) {
      *out = spec;
      return true;
    }
  }
  double rate = 0.0;
  switch (kind) {
    case FaultKind::kCrash:
      rate = crash_rate;
      break;
    case FaultKind::kHang:
      rate = hang_rate;
      break;
    case FaultKind::kGarbledFrame:
      rate = garble_rate;
      break;
    case FaultKind::kSlowWorker:
      rate = 0.0;  // random mode never slows; use an explicit spec
      break;
  }
  if (rate > 0.0 && Coin(seed, kind, test_id, attempt) < rate) {
    out->kind = kind;
    out->test_id = test_id;
    out->worker = worker;
    out->attempt = attempt;
    return true;
  }
  return false;
}

bool FaultPlan::Decide(int worker, const std::string& test_id, int attempt,
                       FaultSpec* out) const {
  // Explicit specs first, in plan order (most specific wins by convention).
  for (const FaultSpec& spec : specs) {
    if (SpecMatches(spec, worker, test_id, attempt)) {
      *out = spec;
      return true;
    }
  }
  for (FaultKind kind :
       {FaultKind::kCrash, FaultKind::kHang, FaultKind::kGarbledFrame}) {
    if (DecideKind(kind, worker, test_id, attempt, out)) {
      return true;
    }
  }
  return false;
}

namespace {

bool NetSpecMatches(const NetFaultSpec& spec, int agent,
                    const std::string& test_id, int attempt) {
  if (!spec.test_id.empty() && spec.test_id != test_id) {
    return false;
  }
  if (spec.agent >= 0 && spec.agent != agent) {
    return false;
  }
  if (spec.attempt >= 0 && spec.attempt != attempt) {
    return false;
  }
  return true;
}

// Same construction as Coin() above, but folded from a distinct salt so a
// FaultPlan and a NetFaultPlan sharing a seed draw independent flips. The
// agent index is excluded for the same replay-identity reason.
double NetCoin(uint64_t seed, NetFaultKind kind, const std::string& test_id,
               int attempt) {
  uint64_t digest = HashFnv64(test_id, seed ^ 0xc2b2ae3d27d4eb4full);
  digest = HashFnv64(Int64ToString(static_cast<int64_t>(kind)), digest);
  digest = HashFnv64(Int64ToString(attempt), digest);
  return static_cast<double>(digest >> 11) / 9007199254740992.0;
}

}  // namespace

bool NetFaultPlan::Decide(int agent, const std::string& test_id, int attempt,
                          NetFaultSpec* out) const {
  for (const NetFaultSpec& spec : specs) {
    if (NetSpecMatches(spec, agent, test_id, attempt)) {
      *out = spec;
      return true;
    }
  }
  struct RatedKind {
    NetFaultKind kind;
    double rate;
  };
  const RatedKind rated[] = {
      {NetFaultKind::kAgentCrash, agent_crash_rate},
      {NetFaultKind::kConnectionDrop, connection_drop_rate},
      {NetFaultKind::kGarbledFrame, garble_rate},
      {NetFaultKind::kStaleDuplicateResult, duplicate_rate},
  };
  for (const RatedKind& entry : rated) {
    if (entry.rate > 0.0 &&
        NetCoin(seed, entry.kind, test_id, attempt) < entry.rate) {
      out->kind = entry.kind;
      out->test_id = test_id;
      out->agent = agent;
      out->attempt = attempt;
      return true;
    }
  }
  return false;
}

}  // namespace zebra
