#include "src/core/parallel_scheduler.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>

#include "src/common/error.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/conf/conf_file.h"
#include "src/core/report_io.h"
#include "src/core/worker_ipc.h"

namespace zebra {

namespace {

// ---------------------------------------------------------------------------
// Wire format: one properties frame per unit result. Doubles round-trip at
// full precision ("%.17g") so the parent folds exactly the values a
// sequential campaign would have computed.
// ---------------------------------------------------------------------------

std::string Double17(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string SerializeUnit(size_t unit_index, const UnitWorkResult& unit) {
  std::map<std::string, std::string> properties;
  properties["unit"] = Int64ToString(static_cast<int64_t>(unit_index));
  properties["app"] = unit.app;
  properties["test_id"] = unit.test_id;
  properties["prerun_executions"] = Int64ToString(unit.prerun_executions);
  properties["after_prerun"] = Int64ToString(unit.after_prerun);
  properties["after_uncertainty"] = Int64ToString(unit.after_uncertainty);
  properties["executed_runs"] = Int64ToString(unit.executed_runs);
  properties["runs_to_first_confirmation"] =
      Int64ToString(unit.runs_to_first_confirmation);
  properties["any_conf_usage"] = unit.any_conf_usage ? "1" : "0";
  properties["conf_sharing_detected"] = unit.conf_sharing_detected ? "1" : "0";
  properties["started_any_node"] = unit.started_any_node ? "1" : "0";
  properties["first_trial_candidates"] = Int64ToString(unit.first_trial_candidates);
  properties["filtered_by_hypothesis"] = Int64ToString(unit.filtered_by_hypothesis);
  properties["cache_hits"] = Int64ToString(unit.cache_hits);
  properties["cache_misses"] = Int64ToString(unit.cache_misses);
  properties["equiv_hits"] = Int64ToString(unit.equiv_hits);
  properties["canonicalized_plans"] = Int64ToString(unit.canonicalized_plans);
  properties["mispredictions"] = Int64ToString(unit.mispredictions);
  properties["cache_evictions"] = Int64ToString(unit.cache_evictions);
  properties["params_tested"] = StrJoin(unit.params_tested, ",");

  properties["confirmations"] =
      Int64ToString(static_cast<int64_t>(unit.confirmations.size()));
  for (size_t i = 0; i < unit.confirmations.size(); ++i) {
    const UnitConfirmation& confirmation = unit.confirmations[i];
    std::string prefix = "confirmation." + std::to_string(i) + ".";
    properties[prefix + "param"] = confirmation.param;
    properties[prefix + "p_value"] = Double17(confirmation.p_value);
    properties[prefix + "failure"] = EscapeReportText(confirmation.witness_failure);
  }

  std::vector<std::string> durations;
  durations.reserve(unit.run_durations.size());
  for (double duration : unit.run_durations) {
    durations.push_back(Double17(duration));
  }
  properties["durations"] = StrJoin(durations, ",");
  return RenderProperties(properties);
}

bool ParseUnit(const std::string& text, size_t* unit_index, UnitWorkResult* unit) {
  std::map<std::string, std::string> properties;
  try {
    properties = ParseProperties(text);
  } catch (const Error&) {
    return false;
  }
  auto get = [&](const std::string& key) -> const std::string& {
    static const std::string kEmpty;
    auto it = properties.find(key);
    return it == properties.end() ? kEmpty : it->second;
  };
  auto get_int = [&](const std::string& key, int64_t* out) {
    return ParseInt64(get(key), out);
  };

  int64_t index = -1;
  if (!get_int("unit", &index) || index < 0) {
    return false;
  }
  *unit_index = static_cast<size_t>(index);
  unit->app = get("app");
  unit->test_id = get("test_id");
  int64_t candidates = 0;
  int64_t filtered = 0;
  if (!get_int("prerun_executions", &unit->prerun_executions) ||
      !get_int("after_prerun", &unit->after_prerun) ||
      !get_int("after_uncertainty", &unit->after_uncertainty) ||
      !get_int("executed_runs", &unit->executed_runs) ||
      !get_int("runs_to_first_confirmation", &unit->runs_to_first_confirmation) ||
      !get_int("first_trial_candidates", &candidates) ||
      !get_int("filtered_by_hypothesis", &filtered) ||
      !get_int("cache_hits", &unit->cache_hits) ||
      !get_int("cache_misses", &unit->cache_misses) ||
      !get_int("equiv_hits", &unit->equiv_hits) ||
      !get_int("canonicalized_plans", &unit->canonicalized_plans) ||
      !get_int("mispredictions", &unit->mispredictions) ||
      !get_int("cache_evictions", &unit->cache_evictions)) {
    return false;
  }
  unit->first_trial_candidates = static_cast<int>(candidates);
  unit->filtered_by_hypothesis = static_cast<int>(filtered);
  unit->any_conf_usage = get("any_conf_usage") == "1";
  unit->conf_sharing_detected = get("conf_sharing_detected") == "1";
  unit->started_any_node = get("started_any_node") == "1";

  for (const std::string& param : StrSplit(get("params_tested"), ',')) {
    if (!param.empty()) {
      unit->params_tested.push_back(param);
    }
  }

  int64_t confirmations = 0;
  if (!get_int("confirmations", &confirmations) || confirmations < 0) {
    return false;
  }
  for (int64_t i = 0; i < confirmations; ++i) {
    std::string prefix = "confirmation." + std::to_string(i) + ".";
    UnitConfirmation confirmation;
    confirmation.param = get(prefix + "param");
    if (confirmation.param.empty() ||
        !ParseDouble(get(prefix + "p_value"), &confirmation.p_value)) {
      return false;
    }
    confirmation.witness_failure = UnescapeReportText(get(prefix + "failure"));
    unit->confirmations.push_back(std::move(confirmation));
  }

  for (const std::string& duration_text : StrSplit(get("durations"), ',')) {
    if (duration_text.empty()) {
      continue;
    }
    double duration = 0;
    if (!ParseDouble(duration_text, &duration)) {
      return false;
    }
    unit->run_durations.push_back(duration);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

struct WorkUnit {
  size_t app_index = 0;
  const UnitTestDef* test = nullptr;
};

// Request frames: "run <unit-index>\n<comma-joined globally-unsafe params>"
// or "exit". Response frames: a serialized UnitWorkResult.
[[noreturn]] void WorkerMain(int request_fd, int response_fd, Campaign& engine,
                             const std::vector<WorkUnit>& units, int worker_index,
                             const ParallelCampaignOptions& parallel) {
  std::string request;
  while (ReadFrame(request_fd, &request)) {
    if (request == "exit") {
      break;
    }
    size_t newline = request.find('\n');
    std::string head = request.substr(0, newline);
    if (head.rfind("run ", 0) != 0) {
      std::_Exit(5);  // protocol error: nothing sane to report
    }
    int64_t index = -1;
    if (!ParseInt64(head.substr(4), &index) || index < 0 ||
        static_cast<size_t>(index) >= units.size()) {
      std::_Exit(5);
    }
    std::set<std::string> globally_unsafe;
    if (newline != std::string::npos) {
      for (const std::string& param : StrSplit(request.substr(newline + 1), ',')) {
        if (!param.empty()) {
          globally_unsafe.insert(param);
        }
      }
    }

    const WorkUnit& work = units[static_cast<size_t>(index)];
    if (worker_index == parallel.crash_worker_index &&
        !parallel.crash_on_test_id.empty() &&
        work.test->id == parallel.crash_on_test_id) {
      std::_Exit(13);  // fault injection: simulate a worker crash
    }

    UnitWorkResult unit = engine.RunUnit(*work.test, globally_unsafe);
    if (!WriteFrame(response_fd,
                    SerializeUnit(static_cast<size_t>(index), unit))) {
      std::_Exit(4);  // parent went away; nothing left to report to
    }
  }
  std::_Exit(0);
}

// ---------------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------------

struct WorkerHandle {
  pid_t pid = -1;
  int request_fd = -1;   // parent -> worker
  int response_fd = -1;  // worker -> parent
  int64_t in_flight = -1;
  std::set<std::string> snapshot;  // globally-unsafe set the unit ran under
  bool alive = false;
};

// Owns the pool for RAII cleanup: every exit path (including exceptions)
// closes all pipe ends — unblocking children still waiting for requests —
// and reaps every remaining child. No zombies, no stuck workers.
class WorkerPool {
 public:
  ~WorkerPool() {
    std::vector<pid_t> pending;
    for (WorkerHandle& worker : workers) {
      if (worker.request_fd >= 0) {
        ::close(worker.request_fd);
        worker.request_fd = -1;
      }
      if (worker.response_fd >= 0) {
        ::close(worker.response_fd);
        worker.response_fd = -1;
      }
      if (worker.pid > 0) {
        pending.push_back(worker.pid);
        worker.pid = -1;
      }
    }
    ReapAll(pending);  // best effort; exit status no longer matters here
  }

  // Closes fds and reaps one worker immediately (crash handling).
  void Retire(WorkerHandle& worker) {
    if (worker.request_fd >= 0) {
      ::close(worker.request_fd);
      worker.request_fd = -1;
    }
    if (worker.response_fd >= 0) {
      ::close(worker.response_fd);
      worker.response_fd = -1;
    }
    if (worker.pid > 0) {
      ReapAll({worker.pid});
      worker.pid = -1;
    }
    worker.alive = false;
  }

  std::vector<WorkerHandle> workers;
};

// Writes on a pipe whose reader died must surface as errors, not SIGPIPE.
class ScopedIgnoreSigPipe {
 public:
  ScopedIgnoreSigPipe() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    sigemptyset(&ignore.sa_mask);
    ::sigaction(SIGPIPE, &ignore, &previous_);
  }
  ~ScopedIgnoreSigPipe() { ::sigaction(SIGPIPE, &previous_, nullptr); }

 private:
  struct sigaction previous_ {};
};

}  // namespace

CampaignReport RunWorkStealingCampaign(const ConfSchema& schema,
                                       const UnitTestRegistry& corpus,
                                       CampaignOptions options, int workers) {
  ParallelCampaignOptions parallel;
  parallel.workers = workers;
  return RunWorkStealingCampaign(schema, corpus, std::move(options), parallel);
}

CampaignReport RunWorkStealingCampaign(const ConfSchema& schema,
                                       const UnitTestRegistry& corpus,
                                       CampaignOptions options,
                                       const ParallelCampaignOptions& parallel) {
  if (parallel.workers < 1) {
    throw Error("work-stealing campaign requires at least one worker");
  }
  auto start = std::chrono::steady_clock::now();

  // The engine resolves the canonical app order exactly as Campaign::Run
  // would; the parent uses it only for enumeration-stage counts (no unit-test
  // executions happen in the parent process).
  Campaign engine(schema, corpus, std::move(options));
  const std::vector<std::string>& apps = engine.options().apps;

  std::vector<WorkUnit> units;
  std::vector<int> units_per_app(apps.size(), 0);
  for (size_t app_index = 0; app_index < apps.size(); ++app_index) {
    for (const UnitTestDef* test : corpus.ForApp(apps[app_index])) {
      units.push_back(WorkUnit{app_index, test});
      ++units_per_app[app_index];
    }
  }

  CampaignFolder folder(schema, engine.options());
  size_t apps_begun = 0;
  auto begin_apps_through = [&](size_t app_index_exclusive) {
    while (apps_begun < app_index_exclusive) {
      const std::string& app = apps[apps_begun];
      folder.BeginApp(app, engine.generator().OriginalInstanceCount(app),
                      engine.generator().StaticPrunedInstanceCount(app),
                      units_per_app[apps_begun]);
      ++apps_begun;
    }
  };

  int worker_count =
      std::min<int>(parallel.workers, std::max<size_t>(units.size(), 1));

  ScopedIgnoreSigPipe sigpipe_guard;
  WorkerPool pool;

  for (int i = 0; i < worker_count && !units.empty(); ++i) {
    int request_pipe[2];
    int response_pipe[2];
    if (::pipe(request_pipe) != 0 || ::pipe(response_pipe) != 0) {
      throw Error("work-stealing campaign: pipe() failed");
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(request_pipe[0]);
      ::close(request_pipe[1]);
      ::close(response_pipe[0]);
      ::close(response_pipe[1]);
      throw Error("work-stealing campaign: fork() failed");
    }
    if (pid == 0) {
      // Child: keep only its own worker-side ends. Parent-side ends of every
      // pipe created so far (its own and earlier workers') must close, or a
      // sibling holding them open would defeat EOF-based shutdown.
      ::close(request_pipe[1]);
      ::close(response_pipe[0]);
      for (const WorkerHandle& sibling : pool.workers) {
        ::close(sibling.request_fd);
        ::close(sibling.response_fd);
      }
      WorkerMain(request_pipe[0], response_pipe[1], engine, units, i, parallel);
    }
    ::close(request_pipe[0]);
    ::close(response_pipe[1]);
    WorkerHandle handle;
    handle.pid = pid;
    handle.request_fd = request_pipe[1];
    handle.response_fd = response_pipe[0];
    handle.alive = true;
    pool.workers.push_back(handle);
  }

  std::deque<size_t> queue;
  for (size_t i = 0; i < units.size(); ++i) {
    queue.push_back(i);
  }

  struct BufferedResult {
    UnitWorkResult unit;
    std::set<std::string> snapshot;
  };
  std::map<size_t, BufferedResult> buffered;
  size_t cursor = 0;

  auto alive_workers = [&]() {
    int alive = 0;
    for (const WorkerHandle& worker : pool.workers) {
      alive += worker.alive ? 1 : 0;
    }
    return alive;
  };

  auto retire_worker = [&](WorkerHandle& worker) {
    if (worker.in_flight >= 0) {
      // The survivors pick the lost unit up first: it is the most likely to
      // be the fold cursor everyone else's results are waiting on.
      queue.push_front(static_cast<size_t>(worker.in_flight));
      worker.in_flight = -1;
    }
    pool.Retire(worker);
    ZLOG_INFO << "work-stealing campaign: worker died, " << alive_workers()
              << " remaining";
  };

  // A buffered result is stale when a parameter it actually tested has since
  // become globally unsafe outside its dispatch snapshot: the exact
  // sequential run would have excluded that parameter, so the speculative
  // result cannot be folded and the unit must re-run.
  auto is_stale = [&](const BufferedResult& result) {
    for (const std::string& param : result.unit.params_tested) {
      if (folder.globally_unsafe().count(param) > 0 &&
          result.snapshot.count(param) == 0) {
        return true;
      }
    }
    return false;
  };

  // Folds every buffered result the canonical order allows, then eagerly
  // re-queues EVERY buffered result that is stale against the current
  // globally-unsafe set — not just the one at the fold cursor. Staleness is
  // monotone (the set only grows and a result's snapshot is frozen), so a
  // result stale now is provably stale at its own fold turn; discarding the
  // whole doomed wave at once lets idle workers re-run the units in parallel
  // instead of serializing one re-run per fold step. The re-runs carry the
  // freshest set (still a subset of each unit's exact sequential set — the
  // invariant that keeps the fold bitwise-exact).
  auto advance_fold = [&]() {
    while (cursor < units.size()) {
      auto it = buffered.find(cursor);
      if (it == buffered.end() || is_stale(it->second)) {
        break;
      }
      begin_apps_through(units[cursor].app_index + 1);
      folder.Fold(it->second.unit);
      buffered.erase(it);
      ++cursor;
    }
    std::vector<size_t> stale_units;
    for (const auto& [index, result] : buffered) {
      if (is_stale(result)) {
        stale_units.push_back(index);
      }
    }
    // push_front in descending order keeps the re-queued wave in canonical
    // order at the head of the queue (the fold is waiting on the smallest).
    for (auto it = stale_units.rbegin(); it != stale_units.rend(); ++it) {
      ZLOG_INFO << "work-stealing campaign: re-running unit "
                << buffered.at(*it).unit.test_id
                << " (stale globally-unsafe snapshot)";
      buffered.erase(*it);
      queue.push_front(*it);
    }
  };

  while (cursor < units.size()) {
    if (alive_workers() == 0) {
      throw Error("work-stealing campaign: all workers died");
    }

    // Dispatch to idle workers. Each request carries the freshest
    // globally-unsafe snapshot (the best-effort broadcast): canonical folding
    // guarantees it is a subset of the exact sequential set for any unit
    // still in the queue, so a prune can only ever be validated or redone —
    // never silently wrong.
    for (WorkerHandle& worker : pool.workers) {
      if (!worker.alive || worker.in_flight >= 0 || queue.empty()) {
        continue;
      }
      size_t unit_index = queue.front();
      const std::set<std::string>& unsafe = folder.globally_unsafe();
      std::string request =
          "run " + std::to_string(unit_index) + "\n" +
          StrJoin(std::vector<std::string>(unsafe.begin(), unsafe.end()), ",");
      if (!WriteFrame(worker.request_fd, request)) {
        retire_worker(worker);
        continue;
      }
      queue.pop_front();
      worker.in_flight = static_cast<int64_t>(unit_index);
      worker.snapshot = unsafe;
    }
    if (alive_workers() == 0) {
      continue;  // top of loop throws with the precise error
    }

    // Wait for any busy worker to report (or die).
    std::vector<struct pollfd> poll_fds;
    std::vector<size_t> poll_workers;
    for (size_t i = 0; i < pool.workers.size(); ++i) {
      if (pool.workers[i].alive && pool.workers[i].in_flight >= 0) {
        poll_fds.push_back({pool.workers[i].response_fd, POLLIN, 0});
        poll_workers.push_back(i);
      }
    }
    if (poll_fds.empty()) {
      throw Error("work-stealing campaign: scheduler stalled (internal error)");
    }
    int ready;
    do {
      ready = ::poll(poll_fds.data(), poll_fds.size(), -1);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) {
      throw Error("work-stealing campaign: poll() failed");
    }

    for (size_t i = 0; i < poll_fds.size(); ++i) {
      if (poll_fds[i].revents == 0) {
        continue;
      }
      WorkerHandle& worker = pool.workers[poll_workers[i]];
      std::string payload;
      size_t unit_index = 0;
      UnitWorkResult unit;
      if (!ReadFrame(worker.response_fd, &payload) ||
          !ParseUnit(payload, &unit_index, &unit) ||
          unit_index != static_cast<size_t>(worker.in_flight)) {
        retire_worker(worker);
        continue;
      }
      buffered[unit_index] = BufferedResult{std::move(unit), worker.snapshot};
      worker.in_flight = -1;
    }

    advance_fold();
  }

  // Apps with zero units (or nothing at all to run) still appear in the
  // report with their enumeration-stage counts, as in the sequential run.
  begin_apps_through(apps.size());

  // Graceful shutdown; the pool destructor reaps.
  for (WorkerHandle& worker : pool.workers) {
    if (worker.alive) {
      WriteFrame(worker.request_fd, "exit");
    }
  }

  folder.report().wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return folder.Finish();
}

}  // namespace zebra
