#include "src/core/parallel_scheduler.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <set>

#include "src/common/error.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/conf/conf_file.h"
#include "src/core/campaign_journal.h"
#include "src/core/report_io.h"
#include "src/core/watchdog.h"
#include "src/core/worker_ipc.h"

namespace zebra {

namespace {

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

struct WorkUnit {
  size_t app_index = 0;
  const UnitTestDef* test = nullptr;
};

// Request frames: "run <unit-index> <attempt>\n<comma-joined globally-unsafe
// params>" or "exit". Response frames: a serialized UnitWorkResult
// (report_io's SerializeUnitResult — the same payload campaign-journal
// records carry).
[[noreturn]] void WorkerMain(int request_fd, int response_fd, Campaign& engine,
                             const std::vector<WorkUnit>& units, int worker_index,
                             const FaultPlan& faults) {
  std::string request;
  while (ReadFrame(request_fd, &request)) {
    if (request == "exit") {
      break;
    }
    size_t newline = request.find('\n');
    std::string head = request.substr(0, newline);
    if (head.rfind("run ", 0) != 0) {
      std::_Exit(5);  // protocol error: nothing sane to report
    }
    std::vector<std::string> head_fields = StrSplit(head.substr(4), ' ');
    int64_t index = -1;
    int64_t attempt = 0;
    if (head_fields.empty() || !ParseInt64(head_fields[0], &index) ||
        index < 0 || static_cast<size_t>(index) >= units.size() ||
        (head_fields.size() > 1 && !ParseInt64(head_fields[1], &attempt))) {
      std::_Exit(5);
    }
    std::set<std::string> globally_unsafe;
    if (newline != std::string::npos) {
      for (const std::string& param : StrSplit(request.substr(newline + 1), ',')) {
        if (!param.empty()) {
          globally_unsafe.insert(param);
        }
      }
    }

    const WorkUnit& work = units[static_cast<size_t>(index)];
    FaultSpec fault;
    if (!faults.empty() && faults.Decide(worker_index, work.test->id,
                                         static_cast<int>(attempt), &fault)) {
      switch (fault.kind) {
        case FaultKind::kCrash:
          std::_Exit(13);  // simulated worker crash
        case FaultKind::kHang:
          for (;;) {
            ::pause();  // simulated deadlock; only SIGKILL gets us out
          }
        case FaultKind::kGarbledFrame:
          // 16 junk bytes where ReadFrame expects a decimal length header.
          WriteAll(response_fd, "!GARBLED-FRAME!!", 16);
          std::_Exit(6);
        case FaultKind::kSlowWorker: {
          struct timespec delay;
          delay.tv_sec = static_cast<time_t>(fault.slow_seconds);
          delay.tv_nsec = static_cast<long>(
              (fault.slow_seconds - static_cast<double>(delay.tv_sec)) * 1e9);
          ::nanosleep(&delay, nullptr);
          break;  // then execute normally
        }
      }
    }

    UnitWorkResult unit = engine.RunUnit(*work.test, globally_unsafe);
    if (!WriteFrame(response_fd,
                    SerializeUnitResult(static_cast<size_t>(index), unit))) {
      std::_Exit(4);  // parent went away; nothing left to report to
    }
  }
  std::_Exit(0);
}

// ---------------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------------

struct WorkerHandle {
  pid_t pid = -1;
  int request_fd = -1;   // parent -> worker
  int response_fd = -1;  // worker -> parent
  int64_t in_flight = -1;
  std::set<std::string> snapshot;  // globally-unsafe set the unit ran under
  double dispatch_seconds = 0.0;   // when the in-flight unit was dispatched
  double deadline_seconds = 0.0;   // watchdog budget for it (0 = no deadline)
  bool alive = false;
};

// Owns the pool for RAII cleanup: every exit path (including exceptions)
// closes all pipe ends — unblocking children still waiting for requests —
// and reaps every remaining child. No zombies, no stuck workers.
class WorkerPool {
 public:
  ~WorkerPool() {
    std::vector<pid_t> pending;
    for (WorkerHandle& worker : workers) {
      if (worker.request_fd >= 0) {
        ::close(worker.request_fd);
        worker.request_fd = -1;
      }
      if (worker.response_fd >= 0) {
        ::close(worker.response_fd);
        worker.response_fd = -1;
      }
      if (worker.pid > 0) {
        pending.push_back(worker.pid);
        worker.pid = -1;
      }
    }
    ReapAll(pending);  // best effort; exit status no longer matters here
  }

  // Closes fds and reaps one worker immediately (crash handling).
  void Retire(WorkerHandle& worker) {
    if (worker.request_fd >= 0) {
      ::close(worker.request_fd);
      worker.request_fd = -1;
    }
    if (worker.response_fd >= 0) {
      ::close(worker.response_fd);
      worker.response_fd = -1;
    }
    if (worker.pid > 0) {
      ReapAll({worker.pid});
      worker.pid = -1;
    }
    worker.alive = false;
  }

  std::vector<WorkerHandle> workers;
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CampaignReport RunWorkStealingCampaign(const ConfSchema& schema,
                                       const UnitTestRegistry& corpus,
                                       CampaignOptions options, int workers) {
  ParallelCampaignOptions parallel;
  parallel.workers = workers;
  return RunWorkStealingCampaign(schema, corpus, std::move(options), parallel);
}

CampaignReport RunWorkStealingCampaign(const ConfSchema& schema,
                                       const UnitTestRegistry& corpus,
                                       CampaignOptions options,
                                       const ParallelCampaignOptions& parallel) {
  if (parallel.workers < 1) {
    throw Error("work-stealing campaign requires at least one worker");
  }
  auto start = std::chrono::steady_clock::now();

  // The engine resolves the canonical app order exactly as Campaign::Run
  // would; the parent uses it only for enumeration-stage counts (no unit-test
  // executions happen in the parent process).
  Campaign engine(schema, corpus, std::move(options));
  const std::vector<std::string>& apps = engine.options().apps;
  const CampaignOptions& resolved = engine.options();

  // Effective fault plan: the legacy single-crash shorthand folds into it as
  // an explicit spec, so both paths exercise the same recovery machinery.
  FaultPlan faults = parallel.faults;
  if (!parallel.crash_on_test_id.empty()) {
    FaultSpec legacy;
    legacy.kind = FaultKind::kCrash;
    legacy.test_id = parallel.crash_on_test_id;
    legacy.worker = parallel.crash_worker_index;
    legacy.attempt = -1;  // whenever that worker is assigned the unit
    faults.specs.push_back(legacy);
  }

  std::vector<WorkUnit> units;
  std::vector<int> units_per_app(apps.size(), 0);
  for (size_t app_index = 0; app_index < apps.size(); ++app_index) {
    for (const UnitTestDef* test : corpus.ForApp(apps[app_index])) {
      units.push_back(WorkUnit{app_index, test});
      ++units_per_app[app_index];
    }
  }

  CampaignFolder folder(schema, engine.options());
  size_t apps_begun = 0;
  auto begin_apps_through = [&](size_t app_index_exclusive) {
    while (apps_begun < app_index_exclusive) {
      const std::string& app = apps[apps_begun];
      folder.BeginApp(app, engine.generator().OriginalInstanceCount(app),
                      engine.generator().StaticPrunedInstanceCount(app),
                      units_per_app[apps_begun]);
      ++apps_begun;
    }
  };

  size_t cursor = 0;
  int64_t hung_workers = 0;
  int64_t requeued_units = 0;
  int64_t resumed_units = 0;

  // Crash-safe journal: replay the recovered prefix through the canonical
  // fold before any worker forks, so the remaining dispatch is exactly the
  // uninterrupted campaign's suffix.
  std::unique_ptr<CampaignJournal> journal;
  if (!parallel.journal_path.empty()) {
    journal = std::make_unique<CampaignJournal>(
        parallel.journal_path, CampaignJournal::Fingerprint(resolved, corpus),
        parallel.resume,
        CampaignJournal::SyncPolicy{parallel.journal_sync_batch});
    for (const auto& [index, unit] : journal->recovered()) {
      if (index != cursor || cursor >= units.size()) {
        ZLOG_WARN << "campaign journal: record out of canonical order; "
                     "ignoring the rest of the recovered prefix";
        break;
      }
      begin_apps_through(units[cursor].app_index + 1);
      folder.Fold(unit);
      ++cursor;
      ++resumed_units;
    }
    if (resumed_units > 0) {
      ZLOG_INFO << "campaign journal: resumed " << resumed_units << " of "
                << units.size() << " units from " << parallel.journal_path;
    }
  }

  size_t remaining = units.size() - cursor;
  int worker_count =
      std::min<int>(parallel.workers, std::max<size_t>(remaining, 1));

  ScopedIgnoreSigPipe sigpipe_guard;
  WorkerPool pool;

  for (int i = 0; i < worker_count && remaining > 0; ++i) {
    int request_pipe[2];
    int response_pipe[2];
    if (::pipe(request_pipe) != 0 || ::pipe(response_pipe) != 0) {
      throw Error("work-stealing campaign: pipe() failed");
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(request_pipe[0]);
      ::close(request_pipe[1]);
      ::close(response_pipe[0]);
      ::close(response_pipe[1]);
      throw Error("work-stealing campaign: fork() failed");
    }
    if (pid == 0) {
      // Child: keep only its own worker-side ends. Parent-side ends of every
      // pipe created so far (its own and earlier workers') must close, or a
      // sibling holding them open would defeat EOF-based shutdown.
      ::close(request_pipe[1]);
      ::close(response_pipe[0]);
      for (const WorkerHandle& sibling : pool.workers) {
        ::close(sibling.request_fd);
        ::close(sibling.response_fd);
      }
      WorkerMain(request_pipe[0], response_pipe[1], engine, units, i, faults);
    }
    ::close(request_pipe[0]);
    ::close(response_pipe[1]);
    WorkerHandle handle;
    handle.pid = pid;
    handle.request_fd = request_pipe[1];
    handle.response_fd = response_pipe[0];
    handle.alive = true;
    pool.workers.push_back(handle);
  }

  std::deque<size_t> queue;
  for (size_t i = cursor; i < units.size(); ++i) {
    queue.push_back(i);
  }

  struct BufferedResult {
    UnitWorkResult unit;
    std::set<std::string> snapshot;
  };
  std::map<size_t, BufferedResult> buffered;

  // Fault-tolerance bookkeeping: dispatch attempts per unit (failed attempts
  // only; stale-snapshot re-runs are not failures), the earliest time a
  // re-queued unit may be re-dispatched (capped exponential backoff), the
  // quarantined units, and the parent-observed completion times feeding the
  // watchdog's p95.
  std::vector<int> attempts(units.size(), 0);
  std::vector<double> not_before(units.size(), 0.0);
  std::set<size_t> poisoned;
  std::vector<double> completion_seconds;
  int live_folds = 0;
  bool stopped = false;  // abort_after_folds hook or cancel_flag

  auto alive_workers = [&]() {
    int alive = 0;
    for (const WorkerHandle& worker : pool.workers) {
      alive += worker.alive ? 1 : 0;
    }
    return alive;
  };

  // Shared requeue path for every way a worker can fail its unit (crash EOF,
  // garbled frame, dispatch-write failure, watchdog SIGKILL): bump the
  // attempt count, quarantine the unit once it has killed
  // unit_attempt_limit workers, otherwise re-queue it at the head — it is
  // the most likely to be the fold cursor everyone else's results are
  // waiting on — behind a capped exponential backoff so a transient
  // environment problem (fd pressure, OOM killer sweep) gets time to clear.
  auto retire_worker = [&](WorkerHandle& worker, const char* reason) {
    if (worker.in_flight >= 0) {
      size_t unit_index = static_cast<size_t>(worker.in_flight);
      worker.in_flight = -1;
      ++attempts[unit_index];
      if (attempts[unit_index] >= resolved.unit_attempt_limit) {
        ZLOG_WARN << "work-stealing campaign: unit "
                  << units[unit_index].test->id << " failed "
                  << attempts[unit_index]
                  << " attempts; quarantining as poisoned";
        poisoned.insert(unit_index);
      } else {
        double backoff =
            std::min(resolved.requeue_backoff_cap_seconds,
                     resolved.requeue_backoff_seconds *
                         std::pow(2.0, attempts[unit_index] - 1));
        not_before[unit_index] = NowSeconds() + std::max(0.0, backoff);
        queue.push_front(unit_index);
        ++requeued_units;
      }
    }
    pool.Retire(worker);
    ZLOG_INFO << "work-stealing campaign: worker " << reason << ", "
              << alive_workers() << " remaining";
  };

  // A buffered result is stale when a parameter it actually tested has since
  // become globally unsafe outside its dispatch snapshot: the exact
  // sequential run would have excluded that parameter, so the speculative
  // result cannot be folded and the unit must re-run.
  auto is_stale = [&](const BufferedResult& result) {
    for (const std::string& param : result.unit.params_tested) {
      if (folder.globally_unsafe().count(param) > 0 &&
          result.snapshot.count(param) == 0) {
        return true;
      }
    }
    return false;
  };

  // Folds every buffered result the canonical order allows, then eagerly
  // re-queues EVERY buffered result that is stale against the current
  // globally-unsafe set — not just the one at the fold cursor. Staleness is
  // monotone (the set only grows and a result's snapshot is frozen), so a
  // result stale now is provably stale at its own fold turn; discarding the
  // whole doomed wave at once lets idle workers re-run the units in parallel
  // instead of serializing one re-run per fold step. The re-runs carry the
  // freshest set (still a subset of each unit's exact sequential set — the
  // invariant that keeps the fold bitwise-exact).
  //
  // A poisoned unit at the cursor folds as an empty stub (the unit
  // contributed nothing; its id is reported in poisoned_units) so the
  // campaign completes instead of waiting forever on work that kills every
  // worker it touches. Every fold — live, stub, or replayed — is what the
  // journal records, so the journal always holds exactly the fold prefix.
  auto advance_fold = [&]() {
    while (cursor < units.size()) {
      if (poisoned.count(cursor) > 0) {
        begin_apps_through(units[cursor].app_index + 1);
        UnitWorkResult stub;
        stub.app = apps[units[cursor].app_index];
        stub.test_id = units[cursor].test->id;
        folder.Fold(stub);
        if (journal) {
          journal->Append(cursor, stub);
        }
        ++cursor;
        continue;
      }
      auto it = buffered.find(cursor);
      if (it == buffered.end() || is_stale(it->second)) {
        break;
      }
      begin_apps_through(units[cursor].app_index + 1);
      folder.Fold(it->second.unit);
      if (journal) {
        journal->Append(cursor, it->second.unit);
      }
      buffered.erase(it);
      ++cursor;
      ++live_folds;
      if (parallel.abort_after_folds > 0 &&
          live_folds >= parallel.abort_after_folds) {
        stopped = true;  // simulated parent crash (test hook)
        return;
      }
    }
    std::vector<size_t> stale_units;
    for (const auto& [index, result] : buffered) {
      if (is_stale(result)) {
        stale_units.push_back(index);
      }
    }
    // push_front in descending order keeps the re-queued wave in canonical
    // order at the head of the queue (the fold is waiting on the smallest).
    for (auto it = stale_units.rbegin(); it != stale_units.rend(); ++it) {
      ZLOG_INFO << "work-stealing campaign: re-running unit "
                << buffered.at(*it).unit.test_id
                << " (stale globally-unsafe snapshot)";
      buffered.erase(*it);
      queue.push_front(*it);
    }
  };

  while (cursor < units.size() && !stopped) {
    if (resolved.cancel_flag != nullptr && *resolved.cancel_flag != 0) {
      ZLOG_WARN << "work-stealing campaign: cancellation requested; stopping "
                   "after "
                << cursor << " of " << units.size() << " units";
      stopped = true;
      break;
    }
    if (alive_workers() == 0) {
      throw Error("work-stealing campaign: all workers died");
    }

    // Dispatch to idle workers. Each request carries the freshest
    // globally-unsafe snapshot (the best-effort broadcast): canonical folding
    // guarantees it is a subset of the exact sequential set for any unit
    // still in the queue, so a prune can only ever be validated or redone —
    // never silently wrong. Units whose backoff has not elapsed are skipped
    // (queue order is otherwise preserved).
    for (WorkerHandle& worker : pool.workers) {
      if (!worker.alive || worker.in_flight >= 0 || queue.empty()) {
        continue;
      }
      double t = NowSeconds();
      auto next = queue.begin();
      while (next != queue.end() && not_before[*next] > t) {
        ++next;
      }
      if (next == queue.end()) {
        break;  // every queued unit is backing off
      }
      size_t unit_index = *next;
      queue.erase(next);
      const std::set<std::string>& unsafe = folder.globally_unsafe();
      std::string request =
          "run " + std::to_string(unit_index) + " " +
          std::to_string(attempts[unit_index]) + "\n" +
          StrJoin(std::vector<std::string>(unsafe.begin(), unsafe.end()), ",");
      worker.in_flight = static_cast<int64_t>(unit_index);
      worker.snapshot = unsafe;
      worker.dispatch_seconds = t;
      worker.deadline_seconds = WatchdogDeadlineSeconds(
          resolved.watchdog_floor_seconds, resolved.watchdog_multiplier,
          completion_seconds);
      if (!WriteFrame(worker.request_fd, request)) {
        retire_worker(worker, "died at dispatch");
      }
    }
    if (alive_workers() == 0) {
      continue;  // top of loop throws with the precise error
    }

    // Wait for any busy worker to report (or die), but never past the
    // earliest watchdog deadline or backoff release.
    std::vector<struct pollfd> poll_fds;
    std::vector<size_t> poll_workers;
    double wait_until = -1.0;  // absolute; < 0 = wait forever
    double t = NowSeconds();
    for (size_t i = 0; i < pool.workers.size(); ++i) {
      const WorkerHandle& worker = pool.workers[i];
      if (worker.alive && worker.in_flight >= 0) {
        poll_fds.push_back({worker.response_fd, POLLIN, 0});
        poll_workers.push_back(i);
        if (worker.deadline_seconds > 0) {
          double deadline = worker.dispatch_seconds + worker.deadline_seconds;
          wait_until =
              wait_until < 0 ? deadline : std::min(wait_until, deadline);
        }
      }
    }
    bool any_idle = false;
    for (const WorkerHandle& worker : pool.workers) {
      any_idle = any_idle || (worker.alive && worker.in_flight < 0);
    }
    if (any_idle) {
      for (size_t unit_index : queue) {
        double release = not_before[unit_index];
        wait_until = wait_until < 0 ? release : std::min(wait_until, release);
      }
    }
    int timeout_ms = -1;
    if (wait_until >= 0) {
      timeout_ms = static_cast<int>(
          std::ceil(std::max(0.0, wait_until - t) * 1000.0));
      timeout_ms = std::max(timeout_ms, 1);
    }
    if (poll_fds.empty()) {
      if (!queue.empty() && timeout_ms > 0) {
        // Every worker is idle and every queued unit is backing off: sleep
        // until the earliest release.
        ::poll(nullptr, 0, timeout_ms);
        continue;
      }
      throw Error("work-stealing campaign: scheduler stalled (internal error)");
    }
    int ready;
    do {
      ready = ::poll(poll_fds.data(), poll_fds.size(), timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) {
      throw Error("work-stealing campaign: poll() failed");
    }

    for (size_t i = 0; i < poll_fds.size(); ++i) {
      if (poll_fds[i].revents == 0) {
        continue;
      }
      WorkerHandle& worker = pool.workers[poll_workers[i]];
      std::string payload;
      size_t unit_index = 0;
      UnitWorkResult unit;
      if (!ReadFrame(worker.response_fd, &payload) ||
          !ParseUnitResult(payload, &unit_index, &unit) ||
          unit_index != static_cast<size_t>(worker.in_flight)) {
        retire_worker(worker, "died (EOF or corrupt response frame)");
        continue;
      }
      completion_seconds.push_back(NowSeconds() - worker.dispatch_seconds);
      buffered[unit_index] = BufferedResult{std::move(unit), worker.snapshot};
      worker.in_flight = -1;
    }

    // Watchdog: SIGKILL any worker past its deadline. Retire() reaps it (a
    // SIGKILLed child exits immediately) and the shared requeue path hands
    // its unit to the survivors — a hang costs at most one deadline plus
    // backoff, never the campaign.
    double after = NowSeconds();
    for (WorkerHandle& worker : pool.workers) {
      if (!worker.alive || worker.in_flight < 0 ||
          worker.deadline_seconds <= 0) {
        continue;
      }
      if (after - worker.dispatch_seconds >= worker.deadline_seconds) {
        ZLOG_WARN << "work-stealing campaign: watchdog SIGKILL — worker "
                     "exceeded "
                  << DoubleToString(worker.deadline_seconds)
                  << "s deadline on unit "
                  << units[static_cast<size_t>(worker.in_flight)].test->id;
        ::kill(worker.pid, SIGKILL);
        ++hung_workers;
        retire_worker(worker, "hung (watchdog SIGKILL)");
      }
    }

    advance_fold();
  }

  if (!stopped) {
    // Apps with zero units (or nothing at all to run) still appear in the
    // report with their enumeration-stage counts, as in the sequential run.
    begin_apps_through(apps.size());
  }

  // Graceful shutdown; the pool destructor reaps.
  for (WorkerHandle& worker : pool.workers) {
    if (worker.alive) {
      WriteFrame(worker.request_fd, "exit");
    }
  }

  folder.report().hung_workers = hung_workers;
  folder.report().requeued_units = requeued_units;
  folder.report().resumed_units = resumed_units;
  if (journal) {
    // Under a batched sync policy a clean exit must not leave an unsynced
    // tail — flush before reading the failure counter so a sync error here
    // is still accounted.
    journal->Flush();
    folder.report().journal_append_failures = journal->append_failures();
  }
  for (size_t unit_index : poisoned) {
    folder.report().poisoned_units.push_back(units[unit_index].test->id);
  }
  folder.report().wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return folder.Finish();
}

}  // namespace zebra
