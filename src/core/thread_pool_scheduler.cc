#include "src/core/thread_pool_scheduler.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/common/error.h"
#include "src/common/logging.h"
#include "src/core/campaign_journal.h"

namespace zebra {

namespace {

struct WorkUnit {
  size_t app_index = 0;
  const UnitTestDef* test = nullptr;
};

// One pre-sized slot per unit: the lock-free delivery channel. A unit is
// in flight on at most one worker at a time (the queue hands it out once,
// and a requeue happens only after the coordinator consumed the previous
// delivery), so a plain-write-then-release-store publication is race-free:
// the worker writes the payload fields, then stores `ready`; the coordinator
// observes `ready` with an acquire load before touching the payload.
struct ResultSlot {
  UnitWorkResult unit;
  std::set<std::string> snapshot;  // globally-unsafe set the unit ran under
  bool failed = false;             // injected fault or escaped exception
  bool hang = false;               // kHang specifically (hung_workers count)
  std::atomic<bool> ready{false};
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CampaignReport RunThreadPoolCampaign(const ConfSchema& schema,
                                     const UnitTestRegistry& corpus,
                                     CampaignOptions options, int workers) {
  ThreadPoolCampaignOptions pool;
  pool.workers = workers;
  return RunThreadPoolCampaign(schema, corpus, std::move(options), pool);
}

CampaignReport RunThreadPoolCampaign(const ConfSchema& schema,
                                     const UnitTestRegistry& corpus,
                                     CampaignOptions options,
                                     const ThreadPoolCampaignOptions& pool) {
  if (pool.workers < 1) {
    throw Error("thread-pool campaign requires at least one worker");
  }
  auto start = std::chrono::steady_clock::now();

  // Coordinator-side engine: resolves the canonical app order and supplies
  // enumeration-stage counts, exactly as the forked schedulers' parent does.
  // No unit-test executions happen on the coordinator thread.
  Campaign coordinator_engine(schema, corpus, std::move(options));
  const std::vector<std::string>& apps = coordinator_engine.options().apps;
  const CampaignOptions& resolved = coordinator_engine.options();

  std::vector<WorkUnit> units;
  std::vector<int> units_per_app(apps.size(), 0);
  for (size_t app_index = 0; app_index < apps.size(); ++app_index) {
    for (const UnitTestDef* test : corpus.ForApp(apps[app_index])) {
      units.push_back(WorkUnit{app_index, test});
      ++units_per_app[app_index];
    }
  }

  CampaignFolder folder(schema, resolved);
  size_t apps_begun = 0;
  auto begin_apps_through = [&](size_t app_index_exclusive) {
    while (apps_begun < app_index_exclusive) {
      const std::string& app = apps[apps_begun];
      folder.BeginApp(app,
                      coordinator_engine.generator().OriginalInstanceCount(app),
                      coordinator_engine.generator().StaticPrunedInstanceCount(app),
                      units_per_app[apps_begun]);
      ++apps_begun;
    }
  };

  size_t cursor = 0;
  int64_t hung_workers = 0;
  int64_t requeued_units = 0;
  int64_t resumed_units = 0;

  // Journal replay before any worker starts, so the remaining dispatch is
  // exactly the uninterrupted campaign's suffix (same code shape as the
  // forked scheduler — replay and live results go through one fold).
  std::unique_ptr<CampaignJournal> journal;
  if (!pool.journal_path.empty()) {
    journal = std::make_unique<CampaignJournal>(
        pool.journal_path, CampaignJournal::Fingerprint(resolved, corpus),
        pool.resume, CampaignJournal::SyncPolicy{pool.journal_sync_batch});
    for (const auto& [index, unit] : journal->recovered()) {
      if (index != cursor || cursor >= units.size()) {
        ZLOG_WARN << "campaign journal: record out of canonical order; "
                     "ignoring the rest of the recovered prefix";
        break;
      }
      begin_apps_through(units[cursor].app_index + 1);
      folder.Fold(unit);
      ++cursor;
      ++resumed_units;
    }
    if (resumed_units > 0) {
      ZLOG_INFO << "campaign journal: resumed " << resumed_units << " of "
                << units.size() << " units from " << pool.journal_path;
    }
  }

  size_t remaining = units.size() - cursor;
  int worker_count =
      std::min<int>(pool.workers, std::max<size_t>(remaining, 1));

  // The shared cross-worker cache. Workers route executions through it via
  // Campaign::UseSharedRunCache; RunCache is internally synchronized.
  std::unique_ptr<RunCache> shared_cache;
  if (resolved.enable_run_cache && pool.share_run_cache) {
    shared_cache = std::make_unique<RunCache>(
        RunCache::Limits{resolved.cache_max_entries, resolved.cache_max_bytes});
  }

  // ---- Shared dispatch state (guarded by queue_mutex) -----------------------
  std::mutex queue_mutex;
  std::condition_variable queue_cv;  // workers wait here for work / stop
  std::deque<size_t> queue;
  std::vector<int> attempts(units.size(), 0);
  std::vector<double> not_before(units.size(), 0.0);
  // Coordinator's current globally-unsafe set, copied out to dispatches.
  // Updated under queue_mutex after every fold advance, so a worker's
  // snapshot is always some prefix-fold state — a subset of the exact
  // sequential set for any unit still queued (the staleness invariant).
  std::set<std::string> unsafe_copy;
  bool stop = false;

  for (size_t i = cursor; i < units.size(); ++i) {
    queue.push_back(i);
  }

  // ---- Result delivery (lock-free slots + a wakeup cv) ----------------------
  std::vector<ResultSlot> slots(units.size());
  std::mutex results_mutex;
  std::condition_variable results_cv;  // coordinator waits here
  int ready_count = 0;                 // guarded by results_mutex

  std::atomic<int> alive_workers{worker_count};

  const FaultPlan& faults = pool.faults;

  // Worker body. Everything session-scoped lives on this thread: a private
  // ConfAgent (installed as Current() for the whole lifetime), a private
  // Campaign engine, and thread-local installation windows for the run cache
  // and duration collector inside RunUnit.
  auto worker_main = [&](int worker_index) {
    ScopedThreadConfAgent agent_scope;
    Campaign engine(schema, corpus, resolved);
    if (shared_cache != nullptr) {
      engine.UseSharedRunCache(shared_cache.get());
    }

    for (;;) {
      size_t unit_index = 0;
      int attempt = 0;
      std::set<std::string> snapshot;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        for (;;) {
          if (stop) {
            return;
          }
          // First dispatchable unit: queue order preserved, backoff-held
          // units skipped (the forked scheduler's dispatch rule).
          double now = NowSeconds();
          double earliest_release = -1.0;
          auto it = queue.begin();
          while (it != queue.end() && not_before[*it] > now) {
            earliest_release = earliest_release < 0
                                   ? not_before[*it]
                                   : std::min(earliest_release, not_before[*it]);
            ++it;
          }
          if (it != queue.end()) {
            unit_index = *it;
            queue.erase(it);
            break;
          }
          if (earliest_release < 0) {
            queue_cv.wait(lock);  // empty queue: wait for requeue or stop
          } else {
            // Every queued unit is backing off: sleep until the earliest
            // release (or an earlier requeue/stop notification).
            queue_cv.wait_for(lock, std::chrono::duration<double>(
                                        earliest_release - now));
          }
        }
        attempt = attempts[unit_index];
        snapshot = unsafe_copy;
      }

      const WorkUnit& work = units[unit_index];
      ResultSlot& slot = slots[unit_index];
      slot.failed = false;
      slot.hang = false;

      bool skip_execution = false;
      bool die_after_publish = false;
      FaultSpec fault;
      if (!faults.empty() &&
          faults.Decide(worker_index, work.test->id, attempt, &fault)) {
        switch (fault.kind) {
          case FaultKind::kCrash:
            // Thread analog of a dead worker process: report the failed
            // attempt, then this worker exits for good.
            slot.failed = true;
            skip_execution = true;
            die_after_publish = true;
            break;
          case FaultKind::kHang:
            // No watchdog in-process (a thread cannot be SIGKILLed), so a
            // hang injects as an immediately-detected failed attempt; the
            // forked schedulers remain the real-hang testbed.
            slot.failed = true;
            slot.hang = true;
            skip_execution = true;
            break;
          case FaultKind::kGarbledFrame:
            // Typed in-process delivery has no frame to garble; the injected
            // effect (a worker's result is unusable) maps to a failed
            // attempt.
            slot.failed = true;
            skip_execution = true;
            break;
          case FaultKind::kSlowWorker: {
            struct timespec delay;
            delay.tv_sec = static_cast<time_t>(fault.slow_seconds);
            delay.tv_nsec = static_cast<long>(
                (fault.slow_seconds - static_cast<double>(delay.tv_sec)) * 1e9);
            ::nanosleep(&delay, nullptr);
            break;  // then execute normally
          }
        }
      }

      if (!skip_execution) {
        try {
          slot.unit = engine.RunUnit(*work.test, snapshot);
          slot.snapshot = std::move(snapshot);
        } catch (const std::exception& e) {
          // An exception escaping RunUnit is the in-process analog of a
          // worker dying mid-unit: the attempt failed, the worker survives.
          ZLOG_WARN << "thread-pool campaign: unit " << work.test->id
                    << " attempt failed (" << e.what() << ")";
          slot.failed = true;
        }
      }

      // Publish: payload writes above happen-before the release store;
      // the coordinator pairs it with an acquire load.
      slot.ready.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(results_mutex);
        ++ready_count;
      }
      results_cv.notify_one();

      if (die_after_publish) {
        alive_workers.fetch_sub(1, std::memory_order_acq_rel);
        results_cv.notify_one();  // wake the coordinator to observe the death
        return;
      }
    }
  };

  // RAII shutdown: every exit path (including exceptions) stops and joins
  // the pool, so no worker thread outlives this frame.
  std::vector<std::thread> threads;
  struct PoolJoiner {
    std::vector<std::thread>& threads;
    std::mutex& queue_mutex;
    std::condition_variable& queue_cv;
    bool& stop;
    ~PoolJoiner() {
      {
        std::lock_guard<std::mutex> lock(queue_mutex);
        stop = true;
      }
      queue_cv.notify_all();
      for (std::thread& thread : threads) {
        if (thread.joinable()) {
          thread.join();
        }
      }
    }
  } joiner{threads, queue_mutex, queue_cv, stop};

  {
    std::lock_guard<std::mutex> lock(queue_mutex);
    unsafe_copy = folder.globally_unsafe();
  }
  threads.reserve(static_cast<size_t>(worker_count));
  if (remaining > 0) {
    for (int i = 0; i < worker_count; ++i) {
      threads.emplace_back(worker_main, i);
    }
  }

  // ---- Coordinator: consume deliveries, fold canonically --------------------

  struct BufferedResult {
    UnitWorkResult unit;
    std::set<std::string> snapshot;
  };
  std::map<size_t, BufferedResult> buffered;
  std::set<size_t> poisoned;
  int live_folds = 0;
  bool stopped = false;  // abort_after_folds hook or cancel_flag

  // Shared requeue path for every failed attempt (injected crash/hang/garble,
  // escaped exception): quarantine after unit_attempt_limit attempts,
  // otherwise re-queue at the head behind a capped exponential backoff —
  // identical policy to the forked scheduler.
  auto handle_failed_attempt = [&](size_t unit_index) {
    ++attempts[unit_index];
    if (attempts[unit_index] >= resolved.unit_attempt_limit) {
      ZLOG_WARN << "thread-pool campaign: unit " << units[unit_index].test->id
                << " failed " << attempts[unit_index]
                << " attempts; quarantining as poisoned";
      poisoned.insert(unit_index);
      return;
    }
    double backoff = std::min(resolved.requeue_backoff_cap_seconds,
                              resolved.requeue_backoff_seconds *
                                  std::pow(2.0, attempts[unit_index] - 1));
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      not_before[unit_index] = NowSeconds() + std::max(0.0, backoff);
      queue.push_front(unit_index);
      ++requeued_units;
    }
    queue_cv.notify_one();
  };

  // Staleness: a parameter the unit actually tested became globally unsafe
  // outside its dispatch snapshot — the exact sequential run would have
  // excluded it, so the speculative result must be discarded and re-run.
  auto is_stale = [&](const BufferedResult& result) {
    for (const std::string& param : result.unit.params_tested) {
      if (folder.globally_unsafe().count(param) > 0 &&
          result.snapshot.count(param) == 0) {
        return true;
      }
    }
    return false;
  };

  // Folds every buffered result the canonical order allows, then eagerly
  // re-queues EVERY stale buffered result (staleness is monotone — see the
  // forked scheduler for the full argument). Poisoned units fold as empty
  // stubs. After any fold the workers' snapshot copy is refreshed.
  auto advance_fold = [&]() {
    bool folded_any = false;
    while (cursor < units.size()) {
      if (poisoned.count(cursor) > 0) {
        begin_apps_through(units[cursor].app_index + 1);
        UnitWorkResult stub;
        stub.app = apps[units[cursor].app_index];
        stub.test_id = units[cursor].test->id;
        folder.Fold(stub);
        if (journal) {
          journal->Append(cursor, stub);
        }
        ++cursor;
        continue;
      }
      auto it = buffered.find(cursor);
      if (it == buffered.end() || is_stale(it->second)) {
        break;
      }
      begin_apps_through(units[cursor].app_index + 1);
      folder.Fold(it->second.unit);
      if (journal) {
        journal->Append(cursor, it->second.unit);
      }
      buffered.erase(it);
      ++cursor;
      ++live_folds;
      folded_any = true;
      if (pool.abort_after_folds > 0 && live_folds >= pool.abort_after_folds) {
        stopped = true;  // simulated coordinator crash (test hook)
        break;
      }
    }
    std::vector<size_t> stale_units;
    for (const auto& [index, result] : buffered) {
      if (is_stale(result)) {
        stale_units.push_back(index);
      }
    }
    bool requeued_any = false;
    if (!stale_units.empty() || folded_any) {
      std::lock_guard<std::mutex> lock(queue_mutex);
      // push_front in descending order keeps the re-queued wave in canonical
      // order at the head (the fold is waiting on the smallest index).
      for (auto it = stale_units.rbegin(); it != stale_units.rend(); ++it) {
        ZLOG_INFO << "thread-pool campaign: re-running unit "
                  << buffered.at(*it).unit.test_id
                  << " (stale globally-unsafe snapshot)";
        buffered.erase(*it);
        slots[*it].ready.store(false, std::memory_order_relaxed);
        queue.push_front(*it);
        requeued_any = true;
      }
      unsafe_copy = folder.globally_unsafe();
    }
    if (requeued_any) {
      queue_cv.notify_all();
    }
  };

  while (cursor < units.size() && !stopped) {
    if (resolved.cancel_flag != nullptr && *resolved.cancel_flag != 0) {
      ZLOG_WARN << "thread-pool campaign: cancellation requested; stopping "
                   "after "
                << cursor << " of " << units.size() << " units";
      stopped = true;
      break;
    }
    if (alive_workers.load(std::memory_order_acquire) == 0) {
      // Drain any deliveries the dying workers published first; if the fold
      // still cannot complete, the campaign is stuck.
      bool drained;
      {
        std::lock_guard<std::mutex> lock(results_mutex);
        drained = ready_count == 0;
      }
      if (drained) {
        throw Error("thread-pool campaign: all workers died");
      }
    }

    // Sleep until a delivery arrives. The bounded wait keeps the cancel flag
    // responsive even when every worker is grinding on a long unit.
    {
      std::unique_lock<std::mutex> lock(results_mutex);
      results_cv.wait_for(lock, std::chrono::milliseconds(100),
                          [&] { return ready_count > 0; });
      if (ready_count == 0) {
        continue;
      }
    }

    // Consume every published slot. The acquire load pairs with the worker's
    // release store; consuming resets the flag before any possible requeue.
    for (size_t i = cursor; i < units.size(); ++i) {
      if (!slots[i].ready.load(std::memory_order_acquire)) {
        continue;
      }
      ResultSlot& slot = slots[i];
      slot.ready.store(false, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(results_mutex);
        --ready_count;
      }
      if (slot.failed) {
        if (slot.hang) {
          ++hung_workers;
        }
        handle_failed_attempt(i);
      } else {
        buffered[i] =
            BufferedResult{std::move(slot.unit), std::move(slot.snapshot)};
      }
    }

    advance_fold();
  }

  if (!stopped) {
    // Apps with zero units (or nothing at all to run) still appear in the
    // report with their enumeration-stage counts, as in the sequential run.
    begin_apps_through(apps.size());
  }

  folder.report().hung_workers = hung_workers;
  folder.report().requeued_units = requeued_units;
  folder.report().resumed_units = resumed_units;
  if (journal) {
    // Flush any batched records before reading the failure counter so a
    // clean exit never leaves an unsynced tail and a sync error here is
    // still accounted.
    journal->Flush();
    folder.report().journal_append_failures = journal->append_failures();
  }
  for (size_t unit_index : poisoned) {
    folder.report().poisoned_units.push_back(units[unit_index].test->id);
  }
  if (shared_cache != nullptr) {
    // Under a shared cache the per-unit deltas are skipped (see
    // Campaign::RunUnit), so the folded counters are zero; fill the totals
    // once from the one cache all workers used. Like the forked schedulers'
    // per-worker counters these are accounting, not part of the determinism
    // contract — hit/miss splits depend on scheduling.
    RunCache::Stats stats = shared_cache->stats();
    folder.report().cache_hits = stats.hits;
    folder.report().cache_misses = stats.misses;
    folder.report().equiv_hits = stats.equiv_hits;
    folder.report().canonicalized_plans = stats.canonicalized_plans;
    folder.report().mispredictions = stats.mispredictions;
    folder.report().cache_evictions = stats.evictions;
    folder.report().cache_load_failures = stats.load_failures;
  }
  folder.report().wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return folder.Finish();
}

}  // namespace zebra
