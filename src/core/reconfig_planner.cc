#include "src/core/reconfig_planner.h"

#include <algorithm>

#include "src/common/strings.h"

namespace zebra {

const char* ReconfigCategoryName(ReconfigCategory category) {
  switch (category) {
    case ReconfigCategory::kSafe:
      return "safe";
    case ReconfigCategory::kHeartbeatLike:
      return "heartbeat-like";
    case ReconfigCategory::kMaxLimitLike:
      return "max-limit-like";
    case ReconfigCategory::kWireFormatLike:
      return "wire-format-like";
    case ReconfigCategory::kCountLike:
      return "count-like";
    case ReconfigCategory::kConsistencyLike:
      return "consistency-like";
  }
  return "safe";
}

const std::map<std::string, ParamGuidance>& ReconfigGuidance() {
  static const auto* kGuidance = new std::map<std::string, ParamGuidance>{
      // ---- heartbeat-like -----------------------------------------------------
      {"dfs.heartbeat.interval",
       {ReconfigCategory::kHeartbeatLike,
        {"DataNode"},
        {"NameNode"},
        "decrease: senders first; increase: receivers first (§7.1)"}},
      {"dfs.namenode.heartbeat.recheck-interval",
       {ReconfigCategory::kHeartbeatLike,
        {"DataNode"},
        {"NameNode"},
        "the receiver-side tolerance window; treat like the interval"}},

      // ---- max-limit-like -----------------------------------------------------
      {"dfs.namenode.fs-limits.max-component-length",
       {ReconfigCategory::kMaxLimitLike, {}, {}, "never decrease below live state"}},
      {"dfs.namenode.fs-limits.max-directory-items",
       {ReconfigCategory::kMaxLimitLike, {}, {}, "never decrease below live state"}},
      {"yarn.scheduler.maximum-allocation-mb",
       {ReconfigCategory::kMaxLimitLike, {}, {}, "RM disallows value decreasement"}},
      {"yarn.scheduler.maximum-allocation-vcores",
       {ReconfigCategory::kMaxLimitLike, {}, {}, "RM disallows value decreasement"}},

      // ---- wire-format-like ---------------------------------------------------
      {"dfs.encrypt.data.transfer",
       {ReconfigCategory::kWireFormatLike, {}, {},
        "store the format per channel/file instead (§7.3)"}},
      {"dfs.checksum.type", {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"dfs.bytes-per-checksum", {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"dfs.data.transfer.protection", {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"dfs.block.access.token.enable",
       {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"dfs.http.policy", {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"dfs.ha.tail-edits.in-progress",
       {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"hadoop.rpc.protection", {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"mapreduce.map.output.compress", {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"mapreduce.map.output.compress.codec",
       {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"mapreduce.job.encrypted-intermediate-data",
       {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"mapreduce.shuffle.ssl.enabled", {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"mapreduce.fileoutputcommitter.algorithm.version",
       {ReconfigCategory::kWireFormatLike, {}, {},
        "commit-protocol version; never mix within a job"}},
      {"akka.ssl.enabled", {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"taskmanager.data.ssl.enabled", {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"hbase.regionserver.thrift.compact",
       {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"hbase.regionserver.thrift.framed",
       {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"yarn.http.policy", {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"yarn.timeline-service.enabled",
       {ReconfigCategory::kWireFormatLike, {}, {}, ""}},

      // ---- count-like ---------------------------------------------------------
      {"mapreduce.job.maps", {ReconfigCategory::kCountLike, {}, {}, ""}},
      {"mapreduce.job.reduces", {ReconfigCategory::kCountLike, {}, {}, ""}},
      {"taskmanager.numberOfTaskSlots",
       {ReconfigCategory::kCountLike, {}, {},
        "better: JobManager should ask each TaskManager (§7.3)"}},
      {"dfs.datanode.balance.max.concurrent.moves",
       {ReconfigCategory::kCountLike, {}, {},
        "better: Balancer should fetch per-DataNode values (HDFS-7466)"}},
      {"dfs.namenode.upgrade.domain.factor",
       {ReconfigCategory::kCountLike, {}, {},
        "better: Balancer should fetch the factor from the NameNode (§7.1)"}},

      // ---- consistency-like ---------------------------------------------------
      {"dfs.blockreport.incremental.intervalMsec",
       {ReconfigCategory::kConsistencyLike, {}, {},
        "clients may briefly observe stale block counts"}},
      {"dfs.namenode.stale.datanode.interval",
       {ReconfigCategory::kConsistencyLike, {}, {}, ""}},
      {"dfs.namenode.max-corrupt-file-blocks-returned",
       {ReconfigCategory::kConsistencyLike, {}, {}, ""}},
      {"dfs.datanode.du.reserved", {ReconfigCategory::kConsistencyLike, {}, {}, ""}},
      {"mapreduce.output.fileoutputformat.compress",
       {ReconfigCategory::kConsistencyLike, {}, {},
        "output names change; drain running jobs first"}},
      {"yarn.resourcemanager.delegation.token.renew-interval",
       {ReconfigCategory::kConsistencyLike, {}, {},
        "newly issued tokens may expire before older ones"}},

      // Remaining Table 3 entries treated individually:
      {"dfs.datanode.balance.bandwidthPerSec",
       {ReconfigCategory::kConsistencyLike, {}, {},
        "reserve bandwidth for control traffic before diverging limits (§7.1)"}},
      {"dfs.client.socket-timeout",
       {ReconfigCategory::kHeartbeatLike,
        {"DataNode"},
        {"Client"},
        "the reader's patience must cover the server's pacing"}},
      {"ipc.client.rpc-timeout.ms",
       {ReconfigCategory::kHeartbeatLike,
        {"NameNode", "DataNode", "ResourceManager"},
        {"Client"},
        "the client timeout must cover the server's progress pacing"}},
      {"dfs.client.block.write.replace-datanode-on-failure.enable",
       {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
      {"dfs.namenode.snapshotdiff.allow.snap-root-descendant",
       {ReconfigCategory::kWireFormatLike, {}, {}, ""}},
  };
  return *kGuidance;
}

namespace {

bool NumericDecrease(const std::string& old_value, const std::string& new_value,
                     bool* is_numeric) {
  int64_t old_number = 0;
  int64_t new_number = 0;
  *is_numeric = ParseInt64(old_value, &old_number) && ParseInt64(new_value, &new_number);
  return *is_numeric && new_number < old_number;
}

void AppendByTypes(const std::vector<NodeRef>& nodes,
                   const std::vector<std::string>& types, ReconfigPlan* plan) {
  for (const NodeRef& node : nodes) {
    if (std::find(types.begin(), types.end(), node.type) != types.end()) {
      plan->steps.push_back(ReconfigStep{node.name, node.type});
    }
  }
}

void AppendRemaining(const std::vector<NodeRef>& nodes, ReconfigPlan* plan) {
  for (const NodeRef& node : nodes) {
    bool already = false;
    for (const ReconfigStep& step : plan->steps) {
      already |= step.node_name == node.name;
    }
    if (!already) {
      plan->steps.push_back(ReconfigStep{node.name, node.type});
    }
  }
}

}  // namespace

ReconfigPlan PlanReconfiguration(const std::string& param, const std::string& old_value,
                                 const std::string& new_value,
                                 const std::vector<NodeRef>& nodes) {
  ReconfigPlan plan;
  auto it = ReconfigGuidance().find(param);
  ParamGuidance guidance = it != ReconfigGuidance().end() ? it->second : ParamGuidance{};
  plan.category = guidance.category;

  switch (guidance.category) {
    case ReconfigCategory::kSafe:
    case ReconfigCategory::kConsistencyLike: {
      plan.feasible = true;
      AppendRemaining(nodes, &plan);
      plan.rationale =
          guidance.category == ReconfigCategory::kSafe
              ? "parameter is heterogeneous-safe; any order works"
              : "any order works; clients may observe transient inconsistency" +
                    (guidance.note.empty() ? std::string() : " (" + guidance.note + ")");
      return plan;
    }

    case ReconfigCategory::kHeartbeatLike: {
      bool is_numeric = false;
      bool decrease = NumericDecrease(old_value, new_value, &is_numeric);
      if (!is_numeric) {
        plan.feasible = false;
        plan.rationale = "heartbeat-like parameter with non-numeric values; "
                         "cannot derive a safe order";
        return plan;
      }
      plan.feasible = true;
      if (decrease) {
        AppendByTypes(nodes, guidance.sender_types, &plan);
        AppendRemaining(nodes, &plan);
        plan.rationale = "decreasing: update senders first so the sender interval "
                         "never exceeds the receiver's tolerance (§7.1)";
      } else {
        AppendByTypes(nodes, guidance.receiver_types, &plan);
        AppendRemaining(nodes, &plan);
        plan.rationale = "increasing: update receivers first so the receiver "
                         "tolerance always covers the sender interval (§7.1)";
      }
      return plan;
    }

    case ReconfigCategory::kMaxLimitLike: {
      bool is_numeric = false;
      bool decrease = NumericDecrease(old_value, new_value, &is_numeric);
      if (decrease) {
        plan.feasible = false;
        plan.rationale = "max-limit decrease refused: live state may already exceed "
                         "the smaller limit (§7.1: do not decrease max limits)";
        return plan;
      }
      plan.feasible = true;
      AppendRemaining(nodes, &plan);
      plan.rationale = "increasing a max limit is safe in any order";
      return plan;
    }

    case ReconfigCategory::kWireFormatLike:
    case ReconfigCategory::kCountLike: {
      plan.feasible = false;
      plan.rationale =
          std::string("no safe node-by-node order exists for this parameter; ") +
          (guidance.note.empty()
               ? "use a stop-the-world restart or embed the value in the "
                 "communication/file format (§7.3)"
               : guidance.note);
      return plan;
    }
  }
  return plan;
}

}  // namespace zebra
