// TestRunner (paper §5): decides whether one generated instance demonstrates
// a heterogeneous-unsafe parameter.
//
// Definition 3.1 operationally: the instance is a *candidate* if its
// heterogeneous configuration fails while every corresponding homogeneous
// configuration passes (first trial). Candidates then go through multi-trial
// hypothesis testing — a one-sided Fisher exact test at the configured
// significance level (the paper's 0.0001) — to filter nondeterministic
// failures. Extra trials run only for candidates, exactly as in §5.

#ifndef SRC_CORE_TEST_RUNNER_H_
#define SRC_CORE_TEST_RUNNER_H_

#include <cstdint>
#include <string>

#include "src/core/test_generator.h"

namespace zebra {

struct Verdict {
  enum class Kind {
    kNotCandidate,     // hetero passed, or some homogeneous control failed
    kFilteredFlaky,    // candidate, but hypothesis testing rejected it
    kConfirmedUnsafe,  // candidate, statistically significant
  };

  Kind kind = Verdict::Kind::kNotCandidate;
  double p_value = 1.0;
  int hetero_failures = 0;
  int hetero_trials = 0;
  int homo_failures = 0;
  int homo_trials = 0;
  std::string witness_failure;  // first hetero failure message
};

class TestRunner {
 public:
  // `first_trials` is the §5 false-negative mitigation: "to reduce false
  // negatives, a developer would need to run the test instances multiple
  // times". The heterogeneous configuration is tried up to `first_trials`
  // times before being dismissed as passing (default 1, as in the paper's
  // time-saving mode).
  explicit TestRunner(double significance = 1e-4, int first_trials = 1);

  // Verifies one instance. Every unit-test execution increments *executions.
  Verdict Verify(const GeneratedInstance& instance, int64_t* executions) const;

 private:
  TestPlan HeteroPlan(const GeneratedInstance& instance) const;
  TestPlan HomoPlan(const GeneratedInstance& instance, const std::string& value) const;

  double significance_;
  int first_trials_;
  int max_rounds_;
};

}  // namespace zebra

#endif  // SRC_CORE_TEST_RUNNER_H_
