file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_unsafe_params.dir/bench_table3_unsafe_params.cc.o"
  "CMakeFiles/bench_table3_unsafe_params.dir/bench_table3_unsafe_params.cc.o.d"
  "bench_table3_unsafe_params"
  "bench_table3_unsafe_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_unsafe_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
