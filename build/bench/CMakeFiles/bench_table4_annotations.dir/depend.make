# Empty dependencies file for bench_table4_annotations.
# This may be replaced when dependencies are built.
