file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_annotations.dir/bench_table4_annotations.cc.o"
  "CMakeFiles/bench_table4_annotations.dir/bench_table4_annotations.cc.o.d"
  "bench_table4_annotations"
  "bench_table4_annotations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_annotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
