file(REMOVE_RECURSE
  "CMakeFiles/bench_wire_micro.dir/bench_wire_micro.cc.o"
  "CMakeFiles/bench_wire_micro.dir/bench_wire_micro.cc.o.d"
  "bench_wire_micro"
  "bench_wire_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wire_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
