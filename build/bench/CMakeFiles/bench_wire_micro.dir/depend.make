# Empty dependencies file for bench_wire_micro.
# This may be replaced when dependencies are built.
