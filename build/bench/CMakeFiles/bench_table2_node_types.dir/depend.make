# Empty dependencies file for bench_table2_node_types.
# This may be replaced when dependencies are built.
