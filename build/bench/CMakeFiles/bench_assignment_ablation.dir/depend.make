# Empty dependencies file for bench_assignment_ablation.
# This may be replaced when dependencies are built.
