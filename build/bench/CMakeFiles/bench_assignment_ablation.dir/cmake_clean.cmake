file(REMOVE_RECURSE
  "CMakeFiles/bench_assignment_ablation.dir/bench_assignment_ablation.cc.o"
  "CMakeFiles/bench_assignment_ablation.dir/bench_assignment_ablation.cc.o.d"
  "bench_assignment_ablation"
  "bench_assignment_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_assignment_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
