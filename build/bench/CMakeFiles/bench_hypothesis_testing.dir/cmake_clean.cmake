file(REMOVE_RECURSE
  "CMakeFiles/bench_hypothesis_testing.dir/bench_hypothesis_testing.cc.o"
  "CMakeFiles/bench_hypothesis_testing.dir/bench_hypothesis_testing.cc.o.d"
  "bench_hypothesis_testing"
  "bench_hypothesis_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hypothesis_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
