# Empty dependencies file for bench_hypothesis_testing.
# This may be replaced when dependencies are built.
