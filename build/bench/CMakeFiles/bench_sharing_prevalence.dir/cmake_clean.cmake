file(REMOVE_RECURSE
  "CMakeFiles/bench_sharing_prevalence.dir/bench_sharing_prevalence.cc.o"
  "CMakeFiles/bench_sharing_prevalence.dir/bench_sharing_prevalence.cc.o.d"
  "bench_sharing_prevalence"
  "bench_sharing_prevalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharing_prevalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
