# Empty dependencies file for bench_sharing_prevalence.
# This may be replaced when dependencies are built.
