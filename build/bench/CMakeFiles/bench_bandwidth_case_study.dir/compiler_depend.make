# Empty compiler generated dependencies file for bench_bandwidth_case_study.
# This may be replaced when dependencies are built.
