# Empty compiler generated dependencies file for bench_false_negatives.
# This may be replaced when dependencies are built.
