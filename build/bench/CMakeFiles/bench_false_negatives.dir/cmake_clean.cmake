file(REMOVE_RECURSE
  "CMakeFiles/bench_false_negatives.dir/bench_false_negatives.cc.o"
  "CMakeFiles/bench_false_negatives.dir/bench_false_negatives.cc.o.d"
  "bench_false_negatives"
  "bench_false_negatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_false_negatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
