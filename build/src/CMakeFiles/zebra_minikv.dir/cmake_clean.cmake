file(REMOVE_RECURSE
  "CMakeFiles/zebra_minikv.dir/apps/minikv/kv_schema.cc.o"
  "CMakeFiles/zebra_minikv.dir/apps/minikv/kv_schema.cc.o.d"
  "CMakeFiles/zebra_minikv.dir/apps/minikv/kv_store.cc.o"
  "CMakeFiles/zebra_minikv.dir/apps/minikv/kv_store.cc.o.d"
  "CMakeFiles/zebra_minikv.dir/apps/minikv/thrift_server.cc.o"
  "CMakeFiles/zebra_minikv.dir/apps/minikv/thrift_server.cc.o.d"
  "libzebra_minikv.a"
  "libzebra_minikv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebra_minikv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
