# Empty dependencies file for zebra_minikv.
# This may be replaced when dependencies are built.
