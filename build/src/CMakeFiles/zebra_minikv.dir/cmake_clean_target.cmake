file(REMOVE_RECURSE
  "libzebra_minikv.a"
)
