# Empty dependencies file for zebra_minimr.
# This may be replaced when dependencies are built.
