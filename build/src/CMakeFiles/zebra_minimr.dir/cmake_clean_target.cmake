file(REMOVE_RECURSE
  "libzebra_minimr.a"
)
