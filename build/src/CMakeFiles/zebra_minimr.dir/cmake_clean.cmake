file(REMOVE_RECURSE
  "CMakeFiles/zebra_minimr.dir/apps/minimr/job_history_server.cc.o"
  "CMakeFiles/zebra_minimr.dir/apps/minimr/job_history_server.cc.o.d"
  "CMakeFiles/zebra_minimr.dir/apps/minimr/map_task.cc.o"
  "CMakeFiles/zebra_minimr.dir/apps/minimr/map_task.cc.o.d"
  "CMakeFiles/zebra_minimr.dir/apps/minimr/mr_job.cc.o"
  "CMakeFiles/zebra_minimr.dir/apps/minimr/mr_job.cc.o.d"
  "CMakeFiles/zebra_minimr.dir/apps/minimr/mr_schema.cc.o"
  "CMakeFiles/zebra_minimr.dir/apps/minimr/mr_schema.cc.o.d"
  "CMakeFiles/zebra_minimr.dir/apps/minimr/reduce_task.cc.o"
  "CMakeFiles/zebra_minimr.dir/apps/minimr/reduce_task.cc.o.d"
  "libzebra_minimr.a"
  "libzebra_minimr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebra_minimr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
