file(REMOVE_RECURSE
  "CMakeFiles/zebra_appcommon.dir/apps/appcommon/common_schema.cc.o"
  "CMakeFiles/zebra_appcommon.dir/apps/appcommon/common_schema.cc.o.d"
  "CMakeFiles/zebra_appcommon.dir/apps/appcommon/ipc_component.cc.o"
  "CMakeFiles/zebra_appcommon.dir/apps/appcommon/ipc_component.cc.o.d"
  "CMakeFiles/zebra_appcommon.dir/apps/appcommon/rpc_gate.cc.o"
  "CMakeFiles/zebra_appcommon.dir/apps/appcommon/rpc_gate.cc.o.d"
  "libzebra_appcommon.a"
  "libzebra_appcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebra_appcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
