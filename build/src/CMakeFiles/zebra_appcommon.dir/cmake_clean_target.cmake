file(REMOVE_RECURSE
  "libzebra_appcommon.a"
)
