# Empty dependencies file for zebra_appcommon.
# This may be replaced when dependencies are built.
