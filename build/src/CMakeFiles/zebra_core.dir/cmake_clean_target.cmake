file(REMOVE_RECURSE
  "libzebra_core.a"
)
