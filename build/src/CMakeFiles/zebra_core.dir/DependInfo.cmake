
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cc" "src/CMakeFiles/zebra_core.dir/core/campaign.cc.o" "gcc" "src/CMakeFiles/zebra_core.dir/core/campaign.cc.o.d"
  "/root/repo/src/core/dependency_miner.cc" "src/CMakeFiles/zebra_core.dir/core/dependency_miner.cc.o" "gcc" "src/CMakeFiles/zebra_core.dir/core/dependency_miner.cc.o.d"
  "/root/repo/src/core/deployment_checker.cc" "src/CMakeFiles/zebra_core.dir/core/deployment_checker.cc.o" "gcc" "src/CMakeFiles/zebra_core.dir/core/deployment_checker.cc.o.d"
  "/root/repo/src/core/fleet_model.cc" "src/CMakeFiles/zebra_core.dir/core/fleet_model.cc.o" "gcc" "src/CMakeFiles/zebra_core.dir/core/fleet_model.cc.o.d"
  "/root/repo/src/core/reconfig_planner.cc" "src/CMakeFiles/zebra_core.dir/core/reconfig_planner.cc.o" "gcc" "src/CMakeFiles/zebra_core.dir/core/reconfig_planner.cc.o.d"
  "/root/repo/src/core/report_io.cc" "src/CMakeFiles/zebra_core.dir/core/report_io.cc.o" "gcc" "src/CMakeFiles/zebra_core.dir/core/report_io.cc.o.d"
  "/root/repo/src/core/report_writer.cc" "src/CMakeFiles/zebra_core.dir/core/report_writer.cc.o" "gcc" "src/CMakeFiles/zebra_core.dir/core/report_writer.cc.o.d"
  "/root/repo/src/core/sharded_campaign.cc" "src/CMakeFiles/zebra_core.dir/core/sharded_campaign.cc.o" "gcc" "src/CMakeFiles/zebra_core.dir/core/sharded_campaign.cc.o.d"
  "/root/repo/src/core/test_generator.cc" "src/CMakeFiles/zebra_core.dir/core/test_generator.cc.o" "gcc" "src/CMakeFiles/zebra_core.dir/core/test_generator.cc.o.d"
  "/root/repo/src/core/test_runner.cc" "src/CMakeFiles/zebra_core.dir/core/test_runner.cc.o" "gcc" "src/CMakeFiles/zebra_core.dir/core/test_runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/zebra_testkit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_apptools.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_minidfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_minimr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_miniyarn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_ministream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_minikv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_appcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_conf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
