file(REMOVE_RECURSE
  "CMakeFiles/zebra_core.dir/core/campaign.cc.o"
  "CMakeFiles/zebra_core.dir/core/campaign.cc.o.d"
  "CMakeFiles/zebra_core.dir/core/dependency_miner.cc.o"
  "CMakeFiles/zebra_core.dir/core/dependency_miner.cc.o.d"
  "CMakeFiles/zebra_core.dir/core/deployment_checker.cc.o"
  "CMakeFiles/zebra_core.dir/core/deployment_checker.cc.o.d"
  "CMakeFiles/zebra_core.dir/core/fleet_model.cc.o"
  "CMakeFiles/zebra_core.dir/core/fleet_model.cc.o.d"
  "CMakeFiles/zebra_core.dir/core/reconfig_planner.cc.o"
  "CMakeFiles/zebra_core.dir/core/reconfig_planner.cc.o.d"
  "CMakeFiles/zebra_core.dir/core/report_io.cc.o"
  "CMakeFiles/zebra_core.dir/core/report_io.cc.o.d"
  "CMakeFiles/zebra_core.dir/core/report_writer.cc.o"
  "CMakeFiles/zebra_core.dir/core/report_writer.cc.o.d"
  "CMakeFiles/zebra_core.dir/core/sharded_campaign.cc.o"
  "CMakeFiles/zebra_core.dir/core/sharded_campaign.cc.o.d"
  "CMakeFiles/zebra_core.dir/core/test_generator.cc.o"
  "CMakeFiles/zebra_core.dir/core/test_generator.cc.o.d"
  "CMakeFiles/zebra_core.dir/core/test_runner.cc.o"
  "CMakeFiles/zebra_core.dir/core/test_runner.cc.o.d"
  "libzebra_core.a"
  "libzebra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
