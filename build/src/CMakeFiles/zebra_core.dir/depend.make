# Empty dependencies file for zebra_core.
# This may be replaced when dependencies are built.
