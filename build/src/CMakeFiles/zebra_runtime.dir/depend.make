# Empty dependencies file for zebra_runtime.
# This may be replaced when dependencies are built.
