file(REMOVE_RECURSE
  "libzebra_runtime.a"
)
