file(REMOVE_RECURSE
  "CMakeFiles/zebra_runtime.dir/runtime/node_types.cc.o"
  "CMakeFiles/zebra_runtime.dir/runtime/node_types.cc.o.d"
  "libzebra_runtime.a"
  "libzebra_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebra_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
