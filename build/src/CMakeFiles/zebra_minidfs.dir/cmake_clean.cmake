file(REMOVE_RECURSE
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/balancer.cc.o"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/balancer.cc.o.d"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/data_node.cc.o"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/data_node.cc.o.d"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/dfs_client.cc.o"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/dfs_client.cc.o.d"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/dfs_schema.cc.o"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/dfs_schema.cc.o.d"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/journal_node.cc.o"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/journal_node.cc.o.d"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/mover.cc.o"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/mover.cc.o.d"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/name_node.cc.o"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/name_node.cc.o.d"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/secondary_name_node.cc.o"
  "CMakeFiles/zebra_minidfs.dir/apps/minidfs/secondary_name_node.cc.o.d"
  "libzebra_minidfs.a"
  "libzebra_minidfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebra_minidfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
