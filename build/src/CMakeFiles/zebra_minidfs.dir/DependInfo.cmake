
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/minidfs/balancer.cc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/balancer.cc.o" "gcc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/balancer.cc.o.d"
  "/root/repo/src/apps/minidfs/data_node.cc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/data_node.cc.o" "gcc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/data_node.cc.o.d"
  "/root/repo/src/apps/minidfs/dfs_client.cc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/dfs_client.cc.o" "gcc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/dfs_client.cc.o.d"
  "/root/repo/src/apps/minidfs/dfs_schema.cc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/dfs_schema.cc.o" "gcc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/dfs_schema.cc.o.d"
  "/root/repo/src/apps/minidfs/journal_node.cc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/journal_node.cc.o" "gcc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/journal_node.cc.o.d"
  "/root/repo/src/apps/minidfs/mover.cc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/mover.cc.o" "gcc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/mover.cc.o.d"
  "/root/repo/src/apps/minidfs/name_node.cc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/name_node.cc.o" "gcc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/name_node.cc.o.d"
  "/root/repo/src/apps/minidfs/secondary_name_node.cc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/secondary_name_node.cc.o" "gcc" "src/CMakeFiles/zebra_minidfs.dir/apps/minidfs/secondary_name_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/zebra_appcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_conf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
