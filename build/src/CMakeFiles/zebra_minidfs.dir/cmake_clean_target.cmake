file(REMOVE_RECURSE
  "libzebra_minidfs.a"
)
