# Empty dependencies file for zebra_minidfs.
# This may be replaced when dependencies are built.
