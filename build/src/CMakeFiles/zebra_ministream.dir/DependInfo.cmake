
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/ministream/job_manager.cc" "src/CMakeFiles/zebra_ministream.dir/apps/ministream/job_manager.cc.o" "gcc" "src/CMakeFiles/zebra_ministream.dir/apps/ministream/job_manager.cc.o.d"
  "/root/repo/src/apps/ministream/stream_schema.cc" "src/CMakeFiles/zebra_ministream.dir/apps/ministream/stream_schema.cc.o" "gcc" "src/CMakeFiles/zebra_ministream.dir/apps/ministream/stream_schema.cc.o.d"
  "/root/repo/src/apps/ministream/task_manager.cc" "src/CMakeFiles/zebra_ministream.dir/apps/ministream/task_manager.cc.o" "gcc" "src/CMakeFiles/zebra_ministream.dir/apps/ministream/task_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/zebra_appcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_conf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
