file(REMOVE_RECURSE
  "libzebra_ministream.a"
)
