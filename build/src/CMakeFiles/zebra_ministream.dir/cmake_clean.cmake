file(REMOVE_RECURSE
  "CMakeFiles/zebra_ministream.dir/apps/ministream/job_manager.cc.o"
  "CMakeFiles/zebra_ministream.dir/apps/ministream/job_manager.cc.o.d"
  "CMakeFiles/zebra_ministream.dir/apps/ministream/stream_schema.cc.o"
  "CMakeFiles/zebra_ministream.dir/apps/ministream/stream_schema.cc.o.d"
  "CMakeFiles/zebra_ministream.dir/apps/ministream/task_manager.cc.o"
  "CMakeFiles/zebra_ministream.dir/apps/ministream/task_manager.cc.o.d"
  "libzebra_ministream.a"
  "libzebra_ministream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebra_ministream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
