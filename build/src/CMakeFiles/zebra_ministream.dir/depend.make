# Empty dependencies file for zebra_ministream.
# This may be replaced when dependencies are built.
