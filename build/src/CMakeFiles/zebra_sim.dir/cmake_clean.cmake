file(REMOVE_RECURSE
  "CMakeFiles/zebra_sim.dir/sim/sim_clock.cc.o"
  "CMakeFiles/zebra_sim.dir/sim/sim_clock.cc.o.d"
  "CMakeFiles/zebra_sim.dir/sim/sim_network.cc.o"
  "CMakeFiles/zebra_sim.dir/sim/sim_network.cc.o.d"
  "CMakeFiles/zebra_sim.dir/sim/wire.cc.o"
  "CMakeFiles/zebra_sim.dir/sim/wire.cc.o.d"
  "libzebra_sim.a"
  "libzebra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
