
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/sim_clock.cc" "src/CMakeFiles/zebra_sim.dir/sim/sim_clock.cc.o" "gcc" "src/CMakeFiles/zebra_sim.dir/sim/sim_clock.cc.o.d"
  "/root/repo/src/sim/sim_network.cc" "src/CMakeFiles/zebra_sim.dir/sim/sim_network.cc.o" "gcc" "src/CMakeFiles/zebra_sim.dir/sim/sim_network.cc.o.d"
  "/root/repo/src/sim/wire.cc" "src/CMakeFiles/zebra_sim.dir/sim/wire.cc.o" "gcc" "src/CMakeFiles/zebra_sim.dir/sim/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/zebra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
