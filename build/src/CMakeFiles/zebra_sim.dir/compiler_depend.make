# Empty compiler generated dependencies file for zebra_sim.
# This may be replaced when dependencies are built.
