file(REMOVE_RECURSE
  "libzebra_sim.a"
)
