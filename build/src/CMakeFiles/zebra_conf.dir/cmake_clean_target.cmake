file(REMOVE_RECURSE
  "libzebra_conf.a"
)
