
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/conf/annotations.cc" "src/CMakeFiles/zebra_conf.dir/conf/annotations.cc.o" "gcc" "src/CMakeFiles/zebra_conf.dir/conf/annotations.cc.o.d"
  "/root/repo/src/conf/conf_agent.cc" "src/CMakeFiles/zebra_conf.dir/conf/conf_agent.cc.o" "gcc" "src/CMakeFiles/zebra_conf.dir/conf/conf_agent.cc.o.d"
  "/root/repo/src/conf/conf_file.cc" "src/CMakeFiles/zebra_conf.dir/conf/conf_file.cc.o" "gcc" "src/CMakeFiles/zebra_conf.dir/conf/conf_file.cc.o.d"
  "/root/repo/src/conf/conf_schema.cc" "src/CMakeFiles/zebra_conf.dir/conf/conf_schema.cc.o" "gcc" "src/CMakeFiles/zebra_conf.dir/conf/conf_schema.cc.o.d"
  "/root/repo/src/conf/configuration.cc" "src/CMakeFiles/zebra_conf.dir/conf/configuration.cc.o" "gcc" "src/CMakeFiles/zebra_conf.dir/conf/configuration.cc.o.d"
  "/root/repo/src/conf/test_plan.cc" "src/CMakeFiles/zebra_conf.dir/conf/test_plan.cc.o" "gcc" "src/CMakeFiles/zebra_conf.dir/conf/test_plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/zebra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
