file(REMOVE_RECURSE
  "CMakeFiles/zebra_conf.dir/conf/annotations.cc.o"
  "CMakeFiles/zebra_conf.dir/conf/annotations.cc.o.d"
  "CMakeFiles/zebra_conf.dir/conf/conf_agent.cc.o"
  "CMakeFiles/zebra_conf.dir/conf/conf_agent.cc.o.d"
  "CMakeFiles/zebra_conf.dir/conf/conf_file.cc.o"
  "CMakeFiles/zebra_conf.dir/conf/conf_file.cc.o.d"
  "CMakeFiles/zebra_conf.dir/conf/conf_schema.cc.o"
  "CMakeFiles/zebra_conf.dir/conf/conf_schema.cc.o.d"
  "CMakeFiles/zebra_conf.dir/conf/configuration.cc.o"
  "CMakeFiles/zebra_conf.dir/conf/configuration.cc.o.d"
  "CMakeFiles/zebra_conf.dir/conf/test_plan.cc.o"
  "CMakeFiles/zebra_conf.dir/conf/test_plan.cc.o.d"
  "libzebra_conf.a"
  "libzebra_conf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebra_conf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
