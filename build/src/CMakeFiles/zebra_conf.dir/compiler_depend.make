# Empty compiler generated dependencies file for zebra_conf.
# This may be replaced when dependencies are built.
