# Empty compiler generated dependencies file for zebra_apptools.
# This may be replaced when dependencies are built.
