file(REMOVE_RECURSE
  "libzebra_apptools.a"
)
