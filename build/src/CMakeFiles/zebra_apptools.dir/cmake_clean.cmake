file(REMOVE_RECURSE
  "CMakeFiles/zebra_apptools.dir/apps/apptools/dfs_tools.cc.o"
  "CMakeFiles/zebra_apptools.dir/apps/apptools/dfs_tools.cc.o.d"
  "libzebra_apptools.a"
  "libzebra_apptools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebra_apptools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
