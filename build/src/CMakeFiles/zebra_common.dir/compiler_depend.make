# Empty compiler generated dependencies file for zebra_common.
# This may be replaced when dependencies are built.
