file(REMOVE_RECURSE
  "libzebra_common.a"
)
