file(REMOVE_RECURSE
  "CMakeFiles/zebra_common.dir/common/logging.cc.o"
  "CMakeFiles/zebra_common.dir/common/logging.cc.o.d"
  "CMakeFiles/zebra_common.dir/common/stats.cc.o"
  "CMakeFiles/zebra_common.dir/common/stats.cc.o.d"
  "CMakeFiles/zebra_common.dir/common/strings.cc.o"
  "CMakeFiles/zebra_common.dir/common/strings.cc.o.d"
  "libzebra_common.a"
  "libzebra_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebra_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
