file(REMOVE_RECURSE
  "CMakeFiles/zebra_miniyarn.dir/apps/miniyarn/app_history_server.cc.o"
  "CMakeFiles/zebra_miniyarn.dir/apps/miniyarn/app_history_server.cc.o.d"
  "CMakeFiles/zebra_miniyarn.dir/apps/miniyarn/application.cc.o"
  "CMakeFiles/zebra_miniyarn.dir/apps/miniyarn/application.cc.o.d"
  "CMakeFiles/zebra_miniyarn.dir/apps/miniyarn/node_manager.cc.o"
  "CMakeFiles/zebra_miniyarn.dir/apps/miniyarn/node_manager.cc.o.d"
  "CMakeFiles/zebra_miniyarn.dir/apps/miniyarn/resource_manager.cc.o"
  "CMakeFiles/zebra_miniyarn.dir/apps/miniyarn/resource_manager.cc.o.d"
  "CMakeFiles/zebra_miniyarn.dir/apps/miniyarn/yarn_client.cc.o"
  "CMakeFiles/zebra_miniyarn.dir/apps/miniyarn/yarn_client.cc.o.d"
  "CMakeFiles/zebra_miniyarn.dir/apps/miniyarn/yarn_schema.cc.o"
  "CMakeFiles/zebra_miniyarn.dir/apps/miniyarn/yarn_schema.cc.o.d"
  "libzebra_miniyarn.a"
  "libzebra_miniyarn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebra_miniyarn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
