file(REMOVE_RECURSE
  "libzebra_miniyarn.a"
)
