# Empty compiler generated dependencies file for zebra_miniyarn.
# This may be replaced when dependencies are built.
