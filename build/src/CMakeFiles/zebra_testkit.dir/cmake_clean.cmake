file(REMOVE_RECURSE
  "CMakeFiles/zebra_testkit.dir/testkit/corpus/apptools_corpus.cc.o"
  "CMakeFiles/zebra_testkit.dir/testkit/corpus/apptools_corpus.cc.o.d"
  "CMakeFiles/zebra_testkit.dir/testkit/corpus/minidfs_corpus.cc.o"
  "CMakeFiles/zebra_testkit.dir/testkit/corpus/minidfs_corpus.cc.o.d"
  "CMakeFiles/zebra_testkit.dir/testkit/corpus/minikv_corpus.cc.o"
  "CMakeFiles/zebra_testkit.dir/testkit/corpus/minikv_corpus.cc.o.d"
  "CMakeFiles/zebra_testkit.dir/testkit/corpus/minimr_corpus.cc.o"
  "CMakeFiles/zebra_testkit.dir/testkit/corpus/minimr_corpus.cc.o.d"
  "CMakeFiles/zebra_testkit.dir/testkit/corpus/ministream_corpus.cc.o"
  "CMakeFiles/zebra_testkit.dir/testkit/corpus/ministream_corpus.cc.o.d"
  "CMakeFiles/zebra_testkit.dir/testkit/corpus/miniyarn_corpus.cc.o"
  "CMakeFiles/zebra_testkit.dir/testkit/corpus/miniyarn_corpus.cc.o.d"
  "CMakeFiles/zebra_testkit.dir/testkit/full_schema.cc.o"
  "CMakeFiles/zebra_testkit.dir/testkit/full_schema.cc.o.d"
  "CMakeFiles/zebra_testkit.dir/testkit/ground_truth.cc.o"
  "CMakeFiles/zebra_testkit.dir/testkit/ground_truth.cc.o.d"
  "CMakeFiles/zebra_testkit.dir/testkit/test_execution.cc.o"
  "CMakeFiles/zebra_testkit.dir/testkit/test_execution.cc.o.d"
  "CMakeFiles/zebra_testkit.dir/testkit/unit_test_registry.cc.o"
  "CMakeFiles/zebra_testkit.dir/testkit/unit_test_registry.cc.o.d"
  "libzebra_testkit.a"
  "libzebra_testkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zebra_testkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
