file(REMOVE_RECURSE
  "libzebra_testkit.a"
)
