# Empty compiler generated dependencies file for zebra_testkit.
# This may be replaced when dependencies are built.
