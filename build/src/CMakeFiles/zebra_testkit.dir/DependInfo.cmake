
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testkit/corpus/apptools_corpus.cc" "src/CMakeFiles/zebra_testkit.dir/testkit/corpus/apptools_corpus.cc.o" "gcc" "src/CMakeFiles/zebra_testkit.dir/testkit/corpus/apptools_corpus.cc.o.d"
  "/root/repo/src/testkit/corpus/minidfs_corpus.cc" "src/CMakeFiles/zebra_testkit.dir/testkit/corpus/minidfs_corpus.cc.o" "gcc" "src/CMakeFiles/zebra_testkit.dir/testkit/corpus/minidfs_corpus.cc.o.d"
  "/root/repo/src/testkit/corpus/minikv_corpus.cc" "src/CMakeFiles/zebra_testkit.dir/testkit/corpus/minikv_corpus.cc.o" "gcc" "src/CMakeFiles/zebra_testkit.dir/testkit/corpus/minikv_corpus.cc.o.d"
  "/root/repo/src/testkit/corpus/minimr_corpus.cc" "src/CMakeFiles/zebra_testkit.dir/testkit/corpus/minimr_corpus.cc.o" "gcc" "src/CMakeFiles/zebra_testkit.dir/testkit/corpus/minimr_corpus.cc.o.d"
  "/root/repo/src/testkit/corpus/ministream_corpus.cc" "src/CMakeFiles/zebra_testkit.dir/testkit/corpus/ministream_corpus.cc.o" "gcc" "src/CMakeFiles/zebra_testkit.dir/testkit/corpus/ministream_corpus.cc.o.d"
  "/root/repo/src/testkit/corpus/miniyarn_corpus.cc" "src/CMakeFiles/zebra_testkit.dir/testkit/corpus/miniyarn_corpus.cc.o" "gcc" "src/CMakeFiles/zebra_testkit.dir/testkit/corpus/miniyarn_corpus.cc.o.d"
  "/root/repo/src/testkit/full_schema.cc" "src/CMakeFiles/zebra_testkit.dir/testkit/full_schema.cc.o" "gcc" "src/CMakeFiles/zebra_testkit.dir/testkit/full_schema.cc.o.d"
  "/root/repo/src/testkit/ground_truth.cc" "src/CMakeFiles/zebra_testkit.dir/testkit/ground_truth.cc.o" "gcc" "src/CMakeFiles/zebra_testkit.dir/testkit/ground_truth.cc.o.d"
  "/root/repo/src/testkit/test_execution.cc" "src/CMakeFiles/zebra_testkit.dir/testkit/test_execution.cc.o" "gcc" "src/CMakeFiles/zebra_testkit.dir/testkit/test_execution.cc.o.d"
  "/root/repo/src/testkit/unit_test_registry.cc" "src/CMakeFiles/zebra_testkit.dir/testkit/unit_test_registry.cc.o" "gcc" "src/CMakeFiles/zebra_testkit.dir/testkit/unit_test_registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/zebra_apptools.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_minidfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_minimr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_miniyarn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_ministream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_minikv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_appcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_conf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
