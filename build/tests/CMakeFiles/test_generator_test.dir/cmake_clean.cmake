file(REMOVE_RECURSE
  "CMakeFiles/test_generator_test.dir/test_generator_test.cc.o"
  "CMakeFiles/test_generator_test.dir/test_generator_test.cc.o.d"
  "test_generator_test"
  "test_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
