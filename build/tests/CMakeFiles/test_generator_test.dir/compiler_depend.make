# Empty compiler generated dependencies file for test_generator_test.
# This may be replaced when dependencies are built.
