file(REMOVE_RECURSE
  "CMakeFiles/minimr_test.dir/minimr_test.cc.o"
  "CMakeFiles/minimr_test.dir/minimr_test.cc.o.d"
  "minimr_test"
  "minimr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
