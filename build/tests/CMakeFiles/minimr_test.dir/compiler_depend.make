# Empty compiler generated dependencies file for minimr_test.
# This may be replaced when dependencies are built.
