file(REMOVE_RECURSE
  "CMakeFiles/sharded_campaign_test.dir/sharded_campaign_test.cc.o"
  "CMakeFiles/sharded_campaign_test.dir/sharded_campaign_test.cc.o.d"
  "sharded_campaign_test"
  "sharded_campaign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
