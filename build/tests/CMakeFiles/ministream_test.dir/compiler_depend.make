# Empty compiler generated dependencies file for ministream_test.
# This may be replaced when dependencies are built.
