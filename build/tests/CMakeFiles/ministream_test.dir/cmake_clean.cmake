file(REMOVE_RECURSE
  "CMakeFiles/ministream_test.dir/ministream_test.cc.o"
  "CMakeFiles/ministream_test.dir/ministream_test.cc.o.d"
  "ministream_test"
  "ministream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ministream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
