file(REMOVE_RECURSE
  "CMakeFiles/fleet_model_test.dir/fleet_model_test.cc.o"
  "CMakeFiles/fleet_model_test.dir/fleet_model_test.cc.o.d"
  "fleet_model_test"
  "fleet_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
