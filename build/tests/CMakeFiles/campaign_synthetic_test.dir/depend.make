# Empty dependencies file for campaign_synthetic_test.
# This may be replaced when dependencies are built.
