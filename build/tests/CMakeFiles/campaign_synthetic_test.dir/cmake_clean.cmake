file(REMOVE_RECURSE
  "CMakeFiles/campaign_synthetic_test.dir/campaign_synthetic_test.cc.o"
  "CMakeFiles/campaign_synthetic_test.dir/campaign_synthetic_test.cc.o.d"
  "campaign_synthetic_test"
  "campaign_synthetic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
