# Empty dependencies file for test_runner_test.
# This may be replaced when dependencies are built.
