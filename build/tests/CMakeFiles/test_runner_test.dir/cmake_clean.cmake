file(REMOVE_RECURSE
  "CMakeFiles/test_runner_test.dir/test_runner_test.cc.o"
  "CMakeFiles/test_runner_test.dir/test_runner_test.cc.o.d"
  "test_runner_test"
  "test_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
