file(REMOVE_RECURSE
  "CMakeFiles/mover_test.dir/mover_test.cc.o"
  "CMakeFiles/mover_test.dir/mover_test.cc.o.d"
  "mover_test"
  "mover_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
