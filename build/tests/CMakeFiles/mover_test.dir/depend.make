# Empty dependencies file for mover_test.
# This may be replaced when dependencies are built.
