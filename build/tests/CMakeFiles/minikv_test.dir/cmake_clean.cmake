file(REMOVE_RECURSE
  "CMakeFiles/minikv_test.dir/minikv_test.cc.o"
  "CMakeFiles/minikv_test.dir/minikv_test.cc.o.d"
  "minikv_test"
  "minikv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minikv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
