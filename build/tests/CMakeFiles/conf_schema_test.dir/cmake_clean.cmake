file(REMOVE_RECURSE
  "CMakeFiles/conf_schema_test.dir/conf_schema_test.cc.o"
  "CMakeFiles/conf_schema_test.dir/conf_schema_test.cc.o.d"
  "conf_schema_test"
  "conf_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conf_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
