# Empty compiler generated dependencies file for conf_schema_test.
# This may be replaced when dependencies are built.
