file(REMOVE_RECURSE
  "CMakeFiles/reconfig_planner_test.dir/reconfig_planner_test.cc.o"
  "CMakeFiles/reconfig_planner_test.dir/reconfig_planner_test.cc.o.d"
  "reconfig_planner_test"
  "reconfig_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
