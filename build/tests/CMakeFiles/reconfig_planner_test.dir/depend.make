# Empty dependencies file for reconfig_planner_test.
# This may be replaced when dependencies are built.
