# Empty compiler generated dependencies file for minidfs_test.
# This may be replaced when dependencies are built.
