file(REMOVE_RECURSE
  "CMakeFiles/minidfs_test.dir/minidfs_test.cc.o"
  "CMakeFiles/minidfs_test.dir/minidfs_test.cc.o.d"
  "minidfs_test"
  "minidfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
