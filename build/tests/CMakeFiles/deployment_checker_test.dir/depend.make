# Empty dependencies file for deployment_checker_test.
# This may be replaced when dependencies are built.
