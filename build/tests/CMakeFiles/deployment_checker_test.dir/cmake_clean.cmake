file(REMOVE_RECURSE
  "CMakeFiles/deployment_checker_test.dir/deployment_checker_test.cc.o"
  "CMakeFiles/deployment_checker_test.dir/deployment_checker_test.cc.o.d"
  "deployment_checker_test"
  "deployment_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
