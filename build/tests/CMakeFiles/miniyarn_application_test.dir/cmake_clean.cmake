file(REMOVE_RECURSE
  "CMakeFiles/miniyarn_application_test.dir/miniyarn_application_test.cc.o"
  "CMakeFiles/miniyarn_application_test.dir/miniyarn_application_test.cc.o.d"
  "miniyarn_application_test"
  "miniyarn_application_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniyarn_application_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
