# Empty dependencies file for miniyarn_application_test.
# This may be replaced when dependencies are built.
