file(REMOVE_RECURSE
  "CMakeFiles/pipeline_e2e_test.dir/pipeline_e2e_test.cc.o"
  "CMakeFiles/pipeline_e2e_test.dir/pipeline_e2e_test.cc.o.d"
  "pipeline_e2e_test"
  "pipeline_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
