# Empty dependencies file for pipeline_e2e_test.
# This may be replaced when dependencies are built.
