file(REMOVE_RECURSE
  "CMakeFiles/report_writer_test.dir/report_writer_test.cc.o"
  "CMakeFiles/report_writer_test.dir/report_writer_test.cc.o.d"
  "report_writer_test"
  "report_writer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
