file(REMOVE_RECURSE
  "CMakeFiles/conf_file_test.dir/conf_file_test.cc.o"
  "CMakeFiles/conf_file_test.dir/conf_file_test.cc.o.d"
  "conf_file_test"
  "conf_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conf_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
