
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/miniyarn_test.cc" "tests/CMakeFiles/miniyarn_test.dir/miniyarn_test.cc.o" "gcc" "tests/CMakeFiles/miniyarn_test.dir/miniyarn_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/zebra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_testkit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_apptools.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_minidfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_minimr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_miniyarn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_ministream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_minikv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_appcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_conf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/zebra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
