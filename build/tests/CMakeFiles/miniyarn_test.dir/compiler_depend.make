# Empty compiler generated dependencies file for miniyarn_test.
# This may be replaced when dependencies are built.
