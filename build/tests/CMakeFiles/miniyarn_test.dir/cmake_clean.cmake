file(REMOVE_RECURSE
  "CMakeFiles/miniyarn_test.dir/miniyarn_test.cc.o"
  "CMakeFiles/miniyarn_test.dir/miniyarn_test.cc.o.d"
  "miniyarn_test"
  "miniyarn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniyarn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
