file(REMOVE_RECURSE
  "CMakeFiles/conf_agent_rules_test.dir/conf_agent_rules_test.cc.o"
  "CMakeFiles/conf_agent_rules_test.dir/conf_agent_rules_test.cc.o.d"
  "conf_agent_rules_test"
  "conf_agent_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conf_agent_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
