# Empty compiler generated dependencies file for conf_agent_rules_test.
# This may be replaced when dependencies are built.
