file(REMOVE_RECURSE
  "CMakeFiles/apptools_test.dir/apptools_test.cc.o"
  "CMakeFiles/apptools_test.dir/apptools_test.cc.o.d"
  "apptools_test"
  "apptools_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apptools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
