# Empty compiler generated dependencies file for apptools_test.
# This may be replaced when dependencies are built.
