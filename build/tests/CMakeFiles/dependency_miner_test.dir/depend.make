# Empty dependencies file for dependency_miner_test.
# This may be replaced when dependencies are built.
