file(REMOVE_RECURSE
  "CMakeFiles/dependency_miner_test.dir/dependency_miner_test.cc.o"
  "CMakeFiles/dependency_miner_test.dir/dependency_miner_test.cc.o.d"
  "dependency_miner_test"
  "dependency_miner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependency_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
