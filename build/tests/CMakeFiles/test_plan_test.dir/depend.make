# Empty dependencies file for test_plan_test.
# This may be replaced when dependencies are built.
