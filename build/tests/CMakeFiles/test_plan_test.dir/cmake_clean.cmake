file(REMOVE_RECURSE
  "CMakeFiles/test_plan_test.dir/test_plan_test.cc.o"
  "CMakeFiles/test_plan_test.dir/test_plan_test.cc.o.d"
  "test_plan_test"
  "test_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
