# Empty dependencies file for ipc_component_test.
# This may be replaced when dependencies are built.
