file(REMOVE_RECURSE
  "CMakeFiles/ipc_component_test.dir/ipc_component_test.cc.o"
  "CMakeFiles/ipc_component_test.dir/ipc_component_test.cc.o.d"
  "ipc_component_test"
  "ipc_component_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc_component_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
