file(REMOVE_RECURSE
  "CMakeFiles/minidfs_balancer_test.dir/minidfs_balancer_test.cc.o"
  "CMakeFiles/minidfs_balancer_test.dir/minidfs_balancer_test.cc.o.d"
  "minidfs_balancer_test"
  "minidfs_balancer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidfs_balancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
