# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for minidfs_balancer_test.
