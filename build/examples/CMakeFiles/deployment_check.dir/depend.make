# Empty dependencies file for deployment_check.
# This may be replaced when dependencies are built.
