file(REMOVE_RECURSE
  "CMakeFiles/deployment_check.dir/deployment_check.cpp.o"
  "CMakeFiles/deployment_check.dir/deployment_check.cpp.o.d"
  "deployment_check"
  "deployment_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
