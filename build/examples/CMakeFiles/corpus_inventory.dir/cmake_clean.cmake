file(REMOVE_RECURSE
  "CMakeFiles/corpus_inventory.dir/corpus_inventory.cpp.o"
  "CMakeFiles/corpus_inventory.dir/corpus_inventory.cpp.o.d"
  "corpus_inventory"
  "corpus_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
