# Empty compiler generated dependencies file for corpus_inventory.
# This may be replaced when dependencies are built.
