file(REMOVE_RECURSE
  "CMakeFiles/balancer_case_study.dir/balancer_case_study.cpp.o"
  "CMakeFiles/balancer_case_study.dir/balancer_case_study.cpp.o.d"
  "balancer_case_study"
  "balancer_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balancer_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
