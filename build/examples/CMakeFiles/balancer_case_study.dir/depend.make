# Empty dependencies file for balancer_case_study.
# This may be replaced when dependencies are built.
