# Empty dependencies file for minidfs_demo.
# This may be replaced when dependencies are built.
