file(REMOVE_RECURSE
  "CMakeFiles/minidfs_demo.dir/minidfs_demo.cpp.o"
  "CMakeFiles/minidfs_demo.dir/minidfs_demo.cpp.o.d"
  "minidfs_demo"
  "minidfs_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidfs_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
