# Empty dependencies file for full_campaign.
# This may be replaced when dependencies are built.
