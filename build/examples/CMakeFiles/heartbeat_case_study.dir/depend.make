# Empty dependencies file for heartbeat_case_study.
# This may be replaced when dependencies are built.
