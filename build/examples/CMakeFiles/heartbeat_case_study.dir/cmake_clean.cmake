file(REMOVE_RECURSE
  "CMakeFiles/heartbeat_case_study.dir/heartbeat_case_study.cpp.o"
  "CMakeFiles/heartbeat_case_study.dir/heartbeat_case_study.cpp.o.d"
  "heartbeat_case_study"
  "heartbeat_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heartbeat_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
