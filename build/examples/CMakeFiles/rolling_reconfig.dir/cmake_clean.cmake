file(REMOVE_RECURSE
  "CMakeFiles/rolling_reconfig.dir/rolling_reconfig.cpp.o"
  "CMakeFiles/rolling_reconfig.dir/rolling_reconfig.cpp.o.d"
  "rolling_reconfig"
  "rolling_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rolling_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
