# Empty dependencies file for rolling_reconfig.
# This may be replaced when dependencies are built.
