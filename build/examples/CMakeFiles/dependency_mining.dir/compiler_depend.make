# Empty compiler generated dependencies file for dependency_mining.
# This may be replaced when dependencies are built.
