file(REMOVE_RECURSE
  "CMakeFiles/dependency_mining.dir/dependency_mining.cpp.o"
  "CMakeFiles/dependency_mining.dir/dependency_mining.cpp.o.d"
  "dependency_mining"
  "dependency_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependency_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
