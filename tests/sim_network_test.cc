// Tests for the rate-limited inbound queue.

#include "src/sim/sim_network.h"

#include <gtest/gtest.h>

#include "src/common/error.h"

namespace zebra {
namespace {

TEST(InboundQueueTest, EmptyQueueDeliversAtLineRate) {
  InboundQueue queue(1000);  // 1000 B/s
  uint64_t id = queue.Enqueue(500, 0);
  EXPECT_EQ(queue.DeliveryTimeMs(id), 500);
  EXPECT_EQ(queue.DeliveryDelayMs(id), 500);
}

TEST(InboundQueueTest, FifoOrderingDelaysLaterMessages) {
  InboundQueue queue(1000);
  uint64_t first = queue.Enqueue(1000, 0);   // drains at 1000 ms
  uint64_t second = queue.Enqueue(100, 0);   // behind it
  EXPECT_EQ(queue.DeliveryTimeMs(first), 1000);
  EXPECT_EQ(queue.DeliveryTimeMs(second), 1100);
}

TEST(InboundQueueTest, SmallControlMessageStuckBehindBacklog) {
  InboundQueue queue(1000);
  queue.Enqueue(10000, 0);  // 10 s of backlog
  uint64_t report = queue.Enqueue(1, 0);
  EXPECT_GE(queue.DeliveryDelayMs(report), 10000);
}

TEST(InboundQueueTest, IdleGapsDoNotAccumulateCredit) {
  InboundQueue queue(1000);
  uint64_t first = queue.Enqueue(1000, 0);
  EXPECT_EQ(queue.DeliveryTimeMs(first), 1000);
  // Enqueued long after the queue drained: starts fresh at `now`.
  uint64_t second = queue.Enqueue(1000, 5000);
  EXPECT_EQ(queue.DeliveryTimeMs(second), 6000);
}

TEST(InboundQueueTest, BacklogTracksUndrainedBytes) {
  InboundQueue queue(1000);
  queue.Enqueue(3000, 0);
  EXPECT_EQ(queue.BacklogBytes(0), 3000);
  EXPECT_EQ(queue.BacklogBytes(1000), 2000);
  EXPECT_EQ(queue.BacklogBytes(3000), 0);
  EXPECT_EQ(queue.BacklogBytes(9999), 0);
}

TEST(InboundQueueTest, SteadyOverloadGrowsDelayLinearly) {
  InboundQueue queue(1000);
  int64_t previous_delay = -1;
  for (int64_t second = 0; second < 5; ++second) {
    uint64_t report = queue.Enqueue(1, second * 1000);
    queue.Enqueue(2000, second * 1000);  // 2x the drain rate
    int64_t delay = queue.DeliveryDelayMs(report);
    EXPECT_GT(delay, previous_delay);
    previous_delay = delay;
  }
  EXPECT_GE(previous_delay, 4000) << "~1 s of extra backlog per second";
}

TEST(InboundQueueTest, MatchedRateKeepsDelayBounded) {
  InboundQueue queue(1000);
  for (int64_t second = 0; second < 10; ++second) {
    uint64_t report = queue.Enqueue(1, second * 1000);
    queue.Enqueue(1000, second * 1000);  // exactly the drain rate
    EXPECT_LE(queue.DeliveryDelayMs(report), 1001);
  }
}

TEST(InboundQueueTest, ForgetDeliveredDropsOnlyDeliveredMessages) {
  InboundQueue queue(1000);
  uint64_t early = queue.Enqueue(100, 0);    // delivered at 100
  uint64_t late = queue.Enqueue(10000, 0);   // delivered at 10100
  queue.ForgetDelivered(5000);
  EXPECT_THROW(queue.DeliveryTimeMs(early), InternalError);
  EXPECT_EQ(queue.DeliveryTimeMs(late), 10100);
}

TEST(InboundQueueTest, InvalidConstruction) {
  EXPECT_THROW(InboundQueue(0), InternalError);
  EXPECT_THROW(InboundQueue(-5), InternalError);
}

TEST(InboundQueueTest, ZeroByteMessageDeliversImmediatelyWhenIdle) {
  InboundQueue queue(1000);
  uint64_t id = queue.Enqueue(0, 42);
  EXPECT_EQ(queue.DeliveryTimeMs(id), 42);
}

}  // namespace
}  // namespace zebra
