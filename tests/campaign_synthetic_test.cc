// White-box pipeline tests on a *synthetic* application: a tiny schema and
// corpus crafted so that exactly which parameters are unsafe — and how tests
// fail — is fully controlled. This pins down pooled bisection, the
// frequent-failure rule, and candidate attribution independent of the
// mini-application substrate.

#include <gtest/gtest.h>

#include "src/core/campaign.h"
#include "src/runtime/node_init.h"

namespace zebra {
namespace {

constexpr char kApp[] = "synthapp";

// A pair of nodes that fail loudly when their views of selected parameters
// diverge (the synthetic "communication").
class SynthNode {
 public:
  SynthNode(const Configuration& conf)
      : init_scope_(kApp, this, "SynthNode", __FILE__, __LINE__),
        conf_(AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__)) {
    init_scope_.Finish();
  }

  std::string Read(const std::string& param) const { return conf_.Get(param, "d"); }

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
};

void RequireAgreement(TestContext& ctx, const SynthNode& a, const SynthNode& b,
                      const std::string& param) {
  ctx.CheckEq(a.Read(param), b.Read(param), "nodes agree on " + param);
}

ConfSchema BuildSynthSchema() {
  ConfSchema schema;
  for (const char* name : {"synth.unsafe.everywhere", "synth.unsafe.one-test",
                           "synth.safe.alpha", "synth.safe.beta", "synth.safe.gamma"}) {
    schema.AddParam({name, kApp, ParamType::kBool, "false", {"true", "false"},
                     "synthetic parameter"});
  }
  return schema;
}

UnitTestRegistry BuildSynthCorpus() {
  UnitTestRegistry registry;
  // Four tests all sensitive to synth.unsafe.everywhere (so the
  // frequent-failure rule fires at threshold 3); only TestTwo is also
  // sensitive to synth.unsafe.one-test. Safe params are read but harmless.
  auto body = [](bool check_one_test) {
    return [check_one_test](TestContext& ctx) {
      Configuration conf;
      SynthNode a(conf);
      SynthNode b(conf);
      a.Read("synth.safe.alpha");
      b.Read("synth.safe.beta");
      conf.Get("synth.safe.gamma", "d");
      RequireAgreement(ctx, a, b, "synth.unsafe.everywhere");
      if (check_one_test) {
        RequireAgreement(ctx, a, b, "synth.unsafe.one-test");
      } else {
        a.Read("synth.unsafe.one-test");
        b.Read("synth.unsafe.one-test");
      }
    };
  };
  registry.Add(kApp, "TestOne", body(false));
  registry.Add(kApp, "TestTwo", body(true));
  registry.Add(kApp, "TestThree", body(false));
  registry.Add(kApp, "TestFour", body(false));
  return registry;
}

class SyntheticCampaignTest : public ::testing::Test {
 protected:
  SyntheticCampaignTest() : schema_(BuildSynthSchema()), corpus_(BuildSynthCorpus()) {}

  CampaignReport Run(CampaignOptions options = {}) {
    options.apps = {kApp};
    Campaign campaign(schema_, corpus_, options);
    return campaign.Run();
  }

  ConfSchema schema_;
  UnitTestRegistry corpus_;
};

TEST_F(SyntheticCampaignTest, IsolatesExactlyTheUnsafeParams) {
  CampaignReport report = Run();
  ASSERT_EQ(report.findings.size(), 2u);
  EXPECT_TRUE(report.findings.count("synth.unsafe.everywhere") > 0);
  EXPECT_TRUE(report.findings.count("synth.unsafe.one-test") > 0);
}

TEST_F(SyntheticCampaignTest, WitnessAttributionIsPrecise) {
  CampaignReport report = Run();
  const ParamFinding& narrow = report.findings.at("synth.unsafe.one-test");
  ASSERT_EQ(narrow.witness_tests.size(), 1u);
  EXPECT_EQ(*narrow.witness_tests.begin(), "synthapp.TestTwo")
      << "only the test that actually checks the parameter may witness it";
}

TEST_F(SyntheticCampaignTest, FrequentFailureRuleCapsWitnesses) {
  CampaignOptions options;
  options.frequent_failure_threshold = 3;
  CampaignReport report = Run(options);
  const ParamFinding& broad = report.findings.at("synth.unsafe.everywhere");
  EXPECT_EQ(broad.witness_tests.size(), 3u)
      << "after three confirmed tests the parameter is marked unsafe globally "
         "and skipped in further pools";
}

TEST_F(SyntheticCampaignTest, SafeParamsAreNeverReported) {
  CampaignReport report = Run();
  EXPECT_EQ(report.findings.count("synth.safe.alpha"), 0u);
  EXPECT_EQ(report.findings.count("synth.safe.beta"), 0u);
  EXPECT_EQ(report.findings.count("synth.safe.gamma"), 0u);
}

TEST_F(SyntheticCampaignTest, PoolingAndIndividualAgree) {
  CampaignOptions pooled;
  CampaignOptions individual;
  individual.enable_pooling = false;
  CampaignReport a = Run(pooled);
  CampaignReport b = Run(individual);
  EXPECT_EQ(a.findings.size(), b.findings.size());
  for (const auto& [param, finding] : a.findings) {
    EXPECT_TRUE(b.findings.count(param) > 0) << param;
  }
}

TEST_F(SyntheticCampaignTest, DeterministicAcrossRuns) {
  CampaignReport a = Run();
  CampaignReport b = Run();
  EXPECT_EQ(a.TotalExecuted(), b.TotalExecuted());
  EXPECT_EQ(a.findings.size(), b.findings.size());
  EXPECT_EQ(a.first_trial_candidates, b.first_trial_candidates);
}

}  // namespace
}  // namespace zebra
