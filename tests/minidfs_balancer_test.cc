// Tests for the Balancer: the concurrent-moves congestion collapse, the
// upgrade-domain stall, and the bandwidth/progress-report starvation — the
// three §7.1 case studies.

#include "src/apps/minidfs/balancer.h"

#include <gtest/gtest.h>

#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_client.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"
#include "src/runtime/cluster.h"

namespace zebra {
namespace {

class BalancerTest : public ::testing::Test {
 protected:
  Cluster cluster_;
};

// The in-text numbers: (DataNode:50, Balancer:50) ~14 s, (1,1) ~16.7 s,
// (1,50) ~154 s. We check the *shape*: the two matched configurations are
// within 2x of each other; the mismatched one is ~10x slower.
TEST_F(BalancerTest, CongestionCollapseShape) {
  auto run = [&](int64_t dn_moves, int64_t bal_moves) {
    Cluster cluster;
    Configuration nn_conf;
    NameNode nn(&cluster, nn_conf);
    Configuration dn_conf;
    dn_conf.SetInt(kDfsBalanceMaxMoves, dn_moves);
    DataNode dn(&cluster, &nn, dn_conf);
    Configuration bal_conf;
    bal_conf.SetInt(kDfsBalanceMaxMoves, bal_moves);
    Balancer balancer(&cluster, &nn, bal_conf);
    BalanceResult result = balancer.RunMoves(&dn, 150, 1000000);
    EXPECT_EQ(result.completed_moves, 150);
    return result.elapsed_ms;
  };

  int64_t matched_high = run(50, 50);
  int64_t matched_low = run(1, 1);
  int64_t mismatched = run(1, 50);

  EXPECT_LT(matched_high, 2 * matched_low);
  EXPECT_LT(matched_low, 2 * matched_high);
  EXPECT_GT(mismatched, 5 * matched_low) << "the paper reports ~10x";
  EXPECT_GT(mismatched, 100000) << "exceeds the unit test's 100 s timeout";
}

TEST_F(BalancerTest, MismatchedMovesTimeOutAtTestThreshold) {
  Configuration nn_conf;
  NameNode nn(&cluster_, nn_conf);
  Configuration dn_conf;
  dn_conf.SetInt(kDfsBalanceMaxMoves, 1);
  DataNode dn(&cluster_, &nn, dn_conf);
  Configuration bal_conf;
  bal_conf.SetInt(kDfsBalanceMaxMoves, 50);
  Balancer balancer(&cluster_, &nn, bal_conf);

  EXPECT_THROW(balancer.RunMoves(&dn, 150, 100000), TimeoutError);
}

TEST_F(BalancerTest, DeclinesAreCountedUnderMismatch) {
  Configuration nn_conf;
  NameNode nn(&cluster_, nn_conf);
  Configuration dn_conf;
  dn_conf.SetInt(kDfsBalanceMaxMoves, 1);
  DataNode dn(&cluster_, &nn, dn_conf);
  Configuration bal_conf;
  bal_conf.SetInt(kDfsBalanceMaxMoves, 10);
  Balancer balancer(&cluster_, &nn, bal_conf);

  BalanceResult result = balancer.RunMoves(&dn, 10, 1000000);
  EXPECT_EQ(result.completed_moves, 10);
  EXPECT_GT(result.declined_dispatches, 0);
}

TEST_F(BalancerTest, MatchedMovesNeverDecline) {
  Configuration conf;
  NameNode nn(&cluster_, conf);
  DataNode dn(&cluster_, &nn, conf);
  Balancer balancer(&cluster_, &nn, conf);

  BalanceResult result = balancer.RunMoves(&dn, 100, 1000000);
  EXPECT_EQ(result.completed_moves, 100);
  EXPECT_EQ(result.declined_dispatches, 0);
}

TEST_F(BalancerTest, DomainFactorMismatchStallsRebalance) {
  Configuration nn_conf;
  nn_conf.SetInt(kDfsUpgradeDomainFactor, 2);
  nn_conf.SetInt(kDfsReplication, 2);
  NameNode nn(&cluster_, nn_conf);
  DataNode dn0(&cluster_, &nn, nn_conf);
  DataNode dn1(&cluster_, &nn, nn_conf);
  DataNode dn2(&cluster_, &nn, nn_conf);
  DfsClient client(&cluster_, &nn, {&dn0, &dn1, &dn2}, nn_conf);
  Configuration bal_conf;
  bal_conf.SetInt(kDfsUpgradeDomainFactor, 3);
  Balancer balancer(&cluster_, &nn, bal_conf);

  client.WriteFile("/d", "abcd");  // replicas on dn0 and dn1
  uint64_t block = nn.BlocksOf("/d").front();
  // Balancer (factor 3) believes dn1 -> dn2 is valid; the NameNode (factor 2)
  // sees dn2 in dn0's domain and declines forever.
  EXPECT_THROW(balancer.RunDomainMoves({block}, &dn1, &dn2, 30000), TimeoutError);
}

TEST_F(BalancerTest, MatchedDomainFactorMoves) {
  Configuration conf;
  conf.SetInt(kDfsUpgradeDomainFactor, 3);
  conf.SetInt(kDfsReplication, 2);
  NameNode nn(&cluster_, conf);
  DataNode dn0(&cluster_, &nn, conf);
  DataNode dn1(&cluster_, &nn, conf);
  DataNode dn2(&cluster_, &nn, conf);
  DfsClient client(&cluster_, &nn, {&dn0, &dn1, &dn2}, conf);
  Balancer balancer(&cluster_, &nn, conf);

  client.WriteFile("/d", "abcd");
  uint64_t block = nn.BlocksOf("/d").front();
  BalanceResult result = balancer.RunDomainMoves({block}, &dn1, &dn2, 30000);
  EXPECT_EQ(result.completed_moves, 1);
  EXPECT_TRUE(dn2.HasBlock(block));
}

TEST_F(BalancerTest, ConservativeBalancerSkipsInvalidMoves) {
  Configuration conf;
  conf.SetInt(kDfsUpgradeDomainFactor, 2);
  conf.SetInt(kDfsReplication, 2);
  NameNode nn(&cluster_, conf);
  DataNode dn0(&cluster_, &nn, conf);
  DataNode dn1(&cluster_, &nn, conf);
  DataNode dn2(&cluster_, &nn, conf);
  DfsClient client(&cluster_, &nn, {&dn0, &dn1, &dn2}, conf);
  Balancer balancer(&cluster_, &nn, conf);

  client.WriteFile("/d", "abcd");
  uint64_t block = nn.BlocksOf("/d").front();
  // With factor 2 everywhere, dn1 -> dn2 would collide with dn0's domain; the
  // balancer itself skips it, finishing without moves and without errors.
  BalanceResult result = balancer.RunDomainMoves({block}, &dn1, &dn2, 30000);
  EXPECT_EQ(result.completed_moves, 0);
  EXPECT_EQ(result.declined_dispatches, 0);
}

TEST_F(BalancerTest, ThrottledTransferStarvesProgressReports) {
  Configuration nn_conf;
  NameNode nn(&cluster_, nn_conf);
  Configuration fast_conf;
  fast_conf.SetInt(kDfsBalanceBandwidth, 10485760);  // 10 MiB/s sender
  DataNode fast(&cluster_, &nn, fast_conf);
  Configuration slow_conf;
  slow_conf.SetInt(kDfsBalanceBandwidth, 1048576);  // 1 MiB/s receiver
  DataNode slow(&cluster_, &nn, slow_conf);
  Balancer balancer(&cluster_, &nn, nn_conf);

  EXPECT_THROW(
      balancer.RunThrottledTransfer(&fast, &slow, fast.BalanceBandwidthPerSec() * 5),
      TimeoutError);
}

class ThrottledHomogeneousTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(ThrottledHomogeneousTest, MatchedBandwidthDeliversReportsPromptly) {
  Cluster cluster;
  Configuration conf;
  conf.SetInt(kDfsBalanceBandwidth, GetParam());
  NameNode nn(&cluster, conf);
  DataNode a(&cluster, &nn, conf);
  DataNode b(&cluster, &nn, conf);
  Balancer balancer(&cluster, &nn, conf);

  int64_t delay =
      balancer.RunThrottledTransfer(&a, &b, a.BalanceBandwidthPerSec() * 5);
  EXPECT_LE(delay, 1000);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, ThrottledHomogeneousTest,
                         ::testing::Values(1048576, 10485760));

TEST_F(BalancerTest, SlowSenderToFastReceiverIsHarmless) {
  Configuration nn_conf;
  NameNode nn(&cluster_, nn_conf);
  Configuration slow_conf;
  slow_conf.SetInt(kDfsBalanceBandwidth, 1048576);
  DataNode slow(&cluster_, &nn, slow_conf);
  Configuration fast_conf;
  fast_conf.SetInt(kDfsBalanceBandwidth, 10485760);
  DataNode fast(&cluster_, &nn, fast_conf);
  Balancer balancer(&cluster_, &nn, nn_conf);

  int64_t delay =
      balancer.RunThrottledTransfer(&slow, &fast, slow.BalanceBandwidthPerSec() * 5);
  EXPECT_LE(delay, 1000);
}

}  // namespace
}  // namespace zebra
