// Tests for the MiniStream substrate: control-plane SSL, data-plane SSL,
// slot accounting — Flink's three Table 3 parameters.

#include <memory>

#include <gtest/gtest.h>

#include "src/apps/ministream/job_manager.h"
#include "src/apps/ministream/stream_params.h"
#include "src/apps/ministream/task_manager.h"
#include "src/common/error.h"
#include "src/runtime/cluster.h"

namespace zebra {
namespace {

class MiniStreamTest : public ::testing::Test {
 protected:
  std::unique_ptr<TaskManager> MakeTm(const Configuration& conf) {
    return std::make_unique<TaskManager>(&cluster_, conf);
  }
  Cluster cluster_;
};

TEST_F(MiniStreamTest, RegistrationWorksWithMatchedSsl) {
  Configuration conf;
  conf.SetBool(kStreamAkkaSsl, true);
  JobManager jm(&cluster_, conf);
  auto tm = MakeTm(conf);
  jm.RegisterTaskManager(tm.get());
  EXPECT_EQ(jm.NumTaskManagers(), 1);
}

TEST_F(MiniStreamTest, AkkaSslMismatchFailsRegistration) {
  Configuration jm_conf;
  jm_conf.SetBool(kStreamAkkaSsl, true);
  JobManager jm(&cluster_, jm_conf);
  Configuration tm_conf;  // SSL off
  auto tm = MakeTm(tm_conf);
  EXPECT_THROW(jm.RegisterTaskManager(tm.get()), HandshakeError);
}

TEST_F(MiniStreamTest, DataExchangeRoundTrips) {
  Configuration conf;
  auto sender = MakeTm(conf);
  auto receiver = MakeTm(conf);
  sender->SendRecords(receiver.get(), {"a", "b", "c"});
  EXPECT_EQ(receiver->received_records(),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(MiniStreamTest, DataSslMismatchBreaksDecode) {
  Configuration sender_conf;
  sender_conf.SetBool(kStreamDataSsl, true);
  auto sender = MakeTm(sender_conf);
  Configuration receiver_conf;  // SSL off
  auto receiver = MakeTm(receiver_conf);
  EXPECT_THROW(sender->SendRecords(receiver.get(), {"x"}), Error);
}

TEST_F(MiniStreamTest, MatchedDataSslRoundTrips) {
  Configuration conf;
  conf.SetBool(kStreamDataSsl, true);
  auto sender = MakeTm(conf);
  auto receiver = MakeTm(conf);
  sender->SendRecords(receiver.get(), {"secure"});
  EXPECT_EQ(receiver->received_records().front(), "secure");
}

TEST_F(MiniStreamTest, SlotMismatchBreaksScheduling) {
  Configuration jm_conf;
  jm_conf.SetInt(kStreamTaskSlots, 4);  // JM believes 4 slots per TM
  JobManager jm(&cluster_, jm_conf);
  Configuration tm_conf;
  tm_conf.SetInt(kStreamTaskSlots, 1);  // TM offers 1
  auto tm = MakeTm(tm_conf);
  jm.RegisterTaskManager(tm.get());
  EXPECT_THROW(jm.SubmitJob(2), RpcError);
}

class SlotSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SlotSweepTest, MatchedSlotsSchedule) {
  const int slots = GetParam();
  Cluster cluster;
  Configuration conf;
  conf.SetInt(kStreamTaskSlots, slots);
  JobManager jm(&cluster, conf);
  TaskManager tm1(&cluster, conf);
  TaskManager tm2(&cluster, conf);
  jm.RegisterTaskManager(&tm1);
  jm.RegisterTaskManager(&tm2);

  jm.SubmitJob(2 * slots);  // exactly saturates the cluster
  EXPECT_EQ(tm1.DeployedTasks(), slots);
  EXPECT_EQ(tm2.DeployedTasks(), slots);
}

INSTANTIATE_TEST_SUITE_P(SlotCounts, SlotSweepTest, ::testing::Values(1, 2, 4));

TEST_F(MiniStreamTest, OversubmissionRejectedEvenWhenMatched) {
  Configuration conf;
  JobManager jm(&cluster_, conf);
  auto tm = MakeTm(conf);
  jm.RegisterTaskManager(tm.get());
  EXPECT_THROW(jm.SubmitJob(5), RpcError);
}

TEST_F(MiniStreamTest, SubmitWithoutTaskManagersFails) {
  Configuration conf;
  JobManager jm(&cluster_, conf);
  EXPECT_THROW(jm.SubmitJob(1), RpcError);
}

TEST_F(MiniStreamTest, JmWithFewerAssumedSlotsIsMerelyConservative) {
  Configuration jm_conf;
  jm_conf.SetInt(kStreamTaskSlots, 1);
  JobManager jm(&cluster_, jm_conf);
  Configuration tm_conf;
  tm_conf.SetInt(kStreamTaskSlots, 4);
  auto tm1 = MakeTm(tm_conf);
  auto tm2 = MakeTm(tm_conf);
  jm.RegisterTaskManager(tm1.get());
  jm.RegisterTaskManager(tm2.get());
  jm.SubmitJob(2);  // 1 per TM under the JM's assumption; TMs have room
  EXPECT_EQ(tm1->DeployedTasks() + tm2->DeployedTasks(), 2);
}

}  // namespace
}  // namespace zebra
