// Tests for the Hadoop-Tools analogs (DistCp, HadoopArchive).

#include "src/apps/apptools/dfs_tools.h"

#include <gtest/gtest.h>

#include "src/apps/appcommon/common_params.h"
#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"
#include "src/runtime/cluster.h"

namespace zebra {
namespace {

class AppToolsTest : public ::testing::Test {
 protected:
  AppToolsTest()
      : nn_(&cluster_, conf_),
        dn1_(&cluster_, &nn_, conf_),
        dn2_(&cluster_, &nn_, conf_),
        client_(&cluster_, &nn_, {&dn1_, &dn2_}, conf_) {}

  Cluster cluster_;
  Configuration conf_;
  NameNode nn_;
  DataNode dn1_;
  DataNode dn2_;
  DfsClient client_;
};

TEST_F(AppToolsTest, DistCpCopiesContents) {
  client_.WriteFile("/src/a", "contents-a");
  client_.WriteFile("/src/b", "contents-b");

  DistCpTool distcp(&cluster_, &nn_, {&dn1_, &dn2_}, conf_);
  EXPECT_EQ(distcp.Copy({"/src/a", "/src/b"}, "/dst/"), 2);
  EXPECT_EQ(client_.ReadFile("/dst/a"), "contents-a");
  EXPECT_EQ(client_.ReadFile("/dst/b"), "contents-b");
}

TEST_F(AppToolsTest, DistCpFailsOnMissingSource) {
  DistCpTool distcp(&cluster_, &nn_, {&dn1_, &dn2_}, conf_);
  EXPECT_THROW(distcp.Copy({"/nope"}, "/dst/"), RpcError);
}

TEST_F(AppToolsTest, ArchivePacksAndLists) {
  client_.WriteFile("/ar/x", "xx");
  client_.WriteFile("/ar/y", "yyyy");

  HadoopArchiveTool har(&cluster_, &nn_, {&dn1_, &dn2_}, conf_);
  size_t bytes = har.Archive({"/ar/x", "/ar/y"}, "/out/pack.har");
  EXPECT_EQ(bytes, 6u);
  EXPECT_EQ(har.ListMembers("/out/pack.har"),
            (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(client_.ReadFile("/out/pack.har"), "xxyyyy");
}

TEST_F(AppToolsTest, ArchiveScanObeysRpcTimeouts) {
  // Tool with a tight RPC timeout against a NameNode pacing from a long one:
  // the long scan aborts (the apptools Table 3 witness).
  Configuration tool_conf;
  tool_conf.SetInt(kRpcTimeoutMs, 1000);
  Configuration nn_conf;
  nn_conf.SetInt(kRpcTimeoutMs, 300000);
  Cluster cluster;
  NameNode nn(&cluster, nn_conf);
  DataNode dn(&cluster, &nn, nn_conf);
  DfsClient seed(&cluster, &nn, {&dn}, nn_conf);
  for (int i = 0; i < 5; ++i) {
    seed.WriteFile("/big/f" + std::to_string(i), "x");
  }

  HadoopArchiveTool har(&cluster, &nn, {&dn}, tool_conf);
  EXPECT_THROW(har.Archive({"/big/f0", "/big/f1", "/big/f2", "/big/f3", "/big/f4"},
                           "/out/big.har"),
               TimeoutError);
}

TEST_F(AppToolsTest, ArchiveOfMissingMemberFails) {
  HadoopArchiveTool har(&cluster_, &nn_, {&dn1_, &dn2_}, conf_);
  EXPECT_THROW(har.Archive({"/ghost"}, "/out/g.har"), RpcError);
}

}  // namespace
}  // namespace zebra
