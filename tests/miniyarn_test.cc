// Tests for the MiniYARN substrate: scheduler maximums, delegation tokens,
// the timeline service, and the safe-by-design parameters.

#include <gtest/gtest.h>

#include "src/apps/miniyarn/app_history_server.h"
#include "src/apps/miniyarn/node_manager.h"
#include "src/apps/miniyarn/resource_manager.h"
#include "src/apps/miniyarn/yarn_client.h"
#include "src/apps/miniyarn/yarn_params.h"
#include "src/common/error.h"
#include "src/runtime/cluster.h"

namespace zebra {
namespace {

class MiniYarnTest : public ::testing::Test {
 protected:
  Cluster cluster_;
};

TEST_F(MiniYarnTest, RegistrationAndHeartbeatsWork) {
  Configuration conf;
  ResourceManager rm(&cluster_, conf);
  NodeManager nm1(&cluster_, &rm, conf);
  NodeManager nm2(&cluster_, &rm, conf);
  EXPECT_EQ(rm.NumRegisteredNodeManagers(), 2);
  cluster_.AdvanceTime(10000);  // heartbeats run without error
}

TEST_F(MiniYarnTest, HeartbeatIntervalComesFromTheRegistrationResponse) {
  Configuration rm_conf;
  rm_conf.SetInt(kYarnNmHeartbeatMs, 250);
  ResourceManager rm(&cluster_, rm_conf);
  Configuration nm_conf;
  nm_conf.SetInt(kYarnNmHeartbeatMs, 99999);  // ignored: RM's value wins
  NodeManager nm(&cluster_, &rm, nm_conf);
  EXPECT_EQ(nm.effective_heartbeat_interval_ms(), 250)
      << "the §7.3 embed-in-communication pattern keeps this parameter safe";
}

TEST_F(MiniYarnTest, AllocationAtRmMaximumSucceeds) {
  Configuration conf;
  ResourceManager rm(&cluster_, conf);
  NodeManager nm(&cluster_, &rm, conf);
  YarnClient client(&cluster_, &rm, conf);
  EXPECT_GT(client.RequestMaxContainer(), 0u);
}

TEST_F(MiniYarnTest, OversizedMemoryRequestRejected) {
  Configuration rm_conf;
  rm_conf.SetInt(kYarnMaxAllocMb, 1024);
  ResourceManager rm(&cluster_, rm_conf);
  NodeManager nm(&cluster_, &rm, rm_conf);
  Configuration client_conf;
  client_conf.SetInt(kYarnMaxAllocMb, 8192);  // client believes 8 GiB is fine
  YarnClient client(&cluster_, &rm, client_conf);
  EXPECT_THROW(client.RequestMaxContainer(), LimitError);
}

TEST_F(MiniYarnTest, OversizedVcoreRequestRejected) {
  Configuration rm_conf;
  rm_conf.SetInt(kYarnMaxAllocVcores, 1);
  ResourceManager rm(&cluster_, rm_conf);
  NodeManager nm(&cluster_, &rm, rm_conf);
  Configuration client_conf;
  client_conf.SetInt(kYarnMaxAllocVcores, 4);
  YarnClient client(&cluster_, &rm, client_conf);
  EXPECT_THROW(client.RequestMaxContainer(), LimitError);
}

TEST_F(MiniYarnTest, AllocationExhaustsNodeCapacity) {
  Configuration conf;
  conf.SetInt(kYarnNmMemoryMb, 2048);
  conf.SetInt(kYarnMaxAllocMb, 2048);
  ResourceManager rm(&cluster_, conf);
  NodeManager nm(&cluster_, &rm, conf);
  YarnClient client(&cluster_, &rm, conf);

  EXPECT_GT(client.RequestContainer(2048, 1), 0u);
  EXPECT_THROW(client.RequestContainer(2048, 1), RpcError) << "capacity exhausted";
}

TEST_F(MiniYarnTest, HeterogeneousNodeCapacitiesAreFine) {
  Configuration rm_conf;
  ResourceManager rm(&cluster_, rm_conf);
  Configuration small_conf;
  small_conf.SetInt(kYarnNmMemoryMb, 2048);
  NodeManager small(&cluster_, &rm, small_conf);
  Configuration large_conf;
  large_conf.SetInt(kYarnNmMemoryMb, 16384);
  NodeManager large(&cluster_, &rm, large_conf);
  YarnClient client(&cluster_, &rm, rm_conf);

  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(client.RequestContainer(4096, 1), 0u);
  }
}

TEST_F(MiniYarnTest, TokenExpiryFollowsIssuingRmInterval) {
  Configuration rm1_conf;
  rm1_conf.SetInt(kYarnTokenRenewInterval, 86400000);
  ResourceManager rm1(&cluster_, rm1_conf);
  Configuration rm2_conf;
  rm2_conf.SetInt(kYarnTokenRenewInterval, 3600000);
  ResourceManager rm2(&cluster_, rm2_conf);
  Configuration client_conf;
  YarnClient client(&cluster_, &rm1, client_conf);

  DelegationToken first = client.GetDelegationTokenFrom(&rm1);
  cluster_.AdvanceTime(50);
  DelegationToken second = client.GetDelegationTokenFrom(&rm2);
  EXPECT_LT(second.expiry_ms, first.expiry_ms)
      << "the newer token expires earlier — the Table 3 anomaly";
}

TEST_F(MiniYarnTest, HomogeneousTokenExpiryIsMonotonic) {
  Configuration conf;
  ResourceManager rm1(&cluster_, conf);
  ResourceManager rm2(&cluster_, conf);
  YarnClient client(&cluster_, &rm1, conf);

  DelegationToken first = client.GetDelegationTokenFrom(&rm1);
  cluster_.AdvanceTime(50);
  DelegationToken second = client.GetDelegationTokenFrom(&rm2);
  EXPECT_GE(second.expiry_ms, first.expiry_ms);
}

TEST_F(MiniYarnTest, TimelinePublishFailsWhenServerDisabled) {
  Configuration server_conf;  // timeline disabled
  AppHistoryServer ahs(&cluster_, server_conf);
  Configuration client_conf;
  client_conf.SetBool(kYarnTimelineEnabled, true);
  ResourceManager rm(&cluster_, server_conf);
  YarnClient client(&cluster_, &rm, client_conf);

  EXPECT_THROW(client.PublishTimelineEvent(&ahs, "e"), RpcError);
}

TEST_F(MiniYarnTest, TimelinePublishNoOpWhenClientDisabled) {
  Configuration server_conf;
  server_conf.SetBool(kYarnTimelineEnabled, true);
  AppHistoryServer ahs(&cluster_, server_conf);
  Configuration client_conf;  // client disabled
  ResourceManager rm(&cluster_, server_conf);
  YarnClient client(&cluster_, &rm, client_conf);

  EXPECT_FALSE(client.PublishTimelineEvent(&ahs, "e"));
  EXPECT_EQ(ahs.NumTimelineEvents(), 0);
}

TEST_F(MiniYarnTest, TimelinePublishWorksWhenBothEnabled) {
  Configuration conf;
  conf.SetBool(kYarnTimelineEnabled, true);
  AppHistoryServer ahs(&cluster_, conf);
  ResourceManager rm(&cluster_, conf);
  YarnClient client(&cluster_, &rm, conf);

  EXPECT_TRUE(client.PublishTimelineEvent(&ahs, "e"));
  EXPECT_EQ(ahs.NumTimelineEvents(), 1);
}

TEST_F(MiniYarnTest, HttpPolicyMismatchBreaksTimelineWeb) {
  Configuration server_conf;
  server_conf.SetBool(kYarnTimelineEnabled, true);
  server_conf.Set(kYarnHttpPolicy, "HTTPS_ONLY");
  AppHistoryServer ahs(&cluster_, server_conf);
  Configuration client_conf;  // HTTP_ONLY
  ResourceManager rm(&cluster_, server_conf);
  YarnClient client(&cluster_, &rm, client_conf);

  EXPECT_THROW(client.QueryTimelineWeb(&ahs), HandshakeError);
}

TEST_F(MiniYarnTest, MatchedHttpPolicyServesTimelineWeb) {
  Configuration conf;
  conf.SetBool(kYarnTimelineEnabled, true);
  conf.Set(kYarnHttpPolicy, "HTTPS_ONLY");
  AppHistoryServer ahs(&cluster_, conf);
  ResourceManager rm(&cluster_, conf);
  YarnClient client(&cluster_, &rm, conf);

  EXPECT_EQ(client.QueryTimelineWeb(&ahs), "timeline-events=0");
}

TEST_F(MiniYarnTest, StoppedNodeManagerStopsHeartbeating) {
  Configuration conf;
  ResourceManager rm(&cluster_, conf);
  NodeManager nm(&cluster_, &rm, conf);
  nm.Stop();
  cluster_.AdvanceTime(10000);  // no exception: heartbeats silenced
  EXPECT_EQ(rm.NumRegisteredNodeManagers(), 1);
}

}  // namespace
}  // namespace zebra
