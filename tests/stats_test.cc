// Tests for the statistics primitives behind TestRunner's hypothesis testing.

#include "src/common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace zebra {
namespace {

TEST(LogFactorialTest, SmallValues) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(2), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-9);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-6);
}

TEST(LogChooseTest, MatchesDirectComputation) {
  EXPECT_NEAR(std::exp(LogChoose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogChoose(10, 5)), 252.0, 1e-6);
  EXPECT_NEAR(std::exp(LogChoose(20, 10)), 184756.0, 1e-3);
}

TEST(LogChooseTest, OutOfRangeIsZeroProbability) {
  EXPECT_LT(LogChoose(5, 6), -1e200);
  EXPECT_LT(LogChoose(5, -1), -1e200);
}

TEST(HypergeometricTest, PmfSumsToOne) {
  const int64_t total = 20, successes = 8, draws = 6;
  double sum = 0.0;
  for (int64_t k = 0; k <= draws; ++k) {
    sum += HypergeometricPmf(total, successes, draws, k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(HypergeometricTest, ImpossibleOutcomesAreZero) {
  EXPECT_DOUBLE_EQ(HypergeometricPmf(10, 3, 5, 4), 0.0);  // only 3 successes exist
  EXPECT_DOUBLE_EQ(HypergeometricPmf(10, 3, 5, -1), 0.0);
  // 5 draws, 7 non-successes: k=0 would need 5 failures, fine; but with only
  // 2 non-successes, k=1 (4 failures needed) is impossible:
  EXPECT_DOUBLE_EQ(HypergeometricPmf(10, 8, 5, 1), 0.0);
}

TEST(FisherExactTest, NoFailuresMeansNoEvidence) {
  EXPECT_DOUBLE_EQ(FisherExactOneSided(0, 5, 0, 10), 1.0);
}

TEST(FisherExactTest, PerfectSplitIsSignificant) {
  // Hetero 9/9 failed, homo 0/18 passed: p = 1 / C(27, 9).
  double p = FisherExactOneSided(9, 9, 0, 18);
  EXPECT_LT(p, 1e-4);
  EXPECT_GT(p, 0.0);
}

TEST(FisherExactTest, SmallSamplesAreNotSignificant) {
  // Hetero 1/1 failed, homo 0/2 passed: p = 1/3.
  EXPECT_NEAR(FisherExactOneSided(1, 1, 0, 2), 1.0 / 3.0, 1e-9);
}

TEST(FisherExactTest, BalancedFailuresAreNotSignificant) {
  // Failures split evenly between rows: no evidence heterogeneity matters.
  double p = FisherExactOneSided(5, 10, 5, 10);
  EXPECT_GT(p, 0.05);
}

TEST(FisherExactTest, MonotonicInHeteroFailures) {
  double p_weak = FisherExactOneSided(3, 10, 0, 10);
  double p_strong = FisherExactOneSided(8, 10, 0, 10);
  EXPECT_LT(p_strong, p_weak);
}

TEST(SignificantlyWorseTest, ThresholdBehaviour) {
  EXPECT_TRUE(SignificantlyWorse(9, 9, 0, 18, 1e-4));
  EXPECT_FALSE(SignificantlyWorse(1, 1, 0, 1, 1e-4));
}

TEST(MinTrialsTest, MatchesClosedForm) {
  // 1/C(2n,n) < 1e-4 first holds at n = 8 (C(16,8) = 12870).
  EXPECT_EQ(MinTrialsForSignificance(1e-4), 8);
  // Stricter significance needs more trials.
  EXPECT_GT(MinTrialsForSignificance(1e-8), MinTrialsForSignificance(1e-4));
}

// Property sweep: the one-sided p-value is always within (0, 1] and decreases
// as hetero failures concentrate.
class FisherSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(FisherSweepTest, PValueInRangeAndMonotonic) {
  const int n = GetParam();
  double previous = 1.1;
  for (int k = 0; k <= n; ++k) {
    double p = FisherExactOneSided(k, n, 0, n);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
    if (k > 0) {
      EXPECT_LE(p, previous);
    }
    previous = p;
  }
}

INSTANTIATE_TEST_SUITE_P(TrialCounts, FisherSweepTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace zebra
