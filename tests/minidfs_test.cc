// Tests for the MiniDFS substrate: every Table 3 HDFS failure mechanism is
// exercised here directly (without the ZebraConf pipeline), by configuring
// nodes with explicitly different Configuration objects — the ground truth
// the pipeline is later expected to rediscover.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_client.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/journal_node.h"
#include "src/apps/minidfs/name_node.h"
#include "src/apps/minidfs/secondary_name_node.h"
#include "src/common/error.h"
#include "src/runtime/cluster.h"

namespace zebra {
namespace {

std::string LongData() {
  std::string data;
  for (int i = 0; i < 40; ++i) {
    data += "payload block contents segment " + std::to_string(i) + " ";
  }
  return data;
}

class MiniDfsTest : public ::testing::Test {
 protected:
  Cluster cluster_;
};

TEST_F(MiniDfsTest, WriteReadRoundTrip) {
  Configuration conf;
  NameNode nn(&cluster_, conf);
  DataNode dn1(&cluster_, &nn, conf);
  DataNode dn2(&cluster_, &nn, conf);
  DfsClient client(&cluster_, &nn, {&dn1, &dn2}, conf);

  client.WriteFile("/a", LongData());
  EXPECT_EQ(client.ReadFile("/a"), LongData());
  EXPECT_GT(nn.TotalBlocks(), 1) << "multi-block file expected";
}

TEST_F(MiniDfsTest, EncryptionMismatchBreaksDataTransfer) {
  Configuration conf;
  NameNode nn(&cluster_, conf);
  Configuration dn_conf;
  dn_conf.SetBool(kDfsEncryptDataTransfer, true);
  DataNode dn(&cluster_, &nn, dn_conf);
  DfsClient client(&cluster_, &nn, {&dn}, conf);  // client does not encrypt

  EXPECT_THROW(client.WriteFile("/enc", LongData()), Error);
}

TEST_F(MiniDfsTest, ChecksumTypeMismatchBreaksDataTransfer) {
  Configuration conf;
  conf.Set(kDfsChecksumType, "CRC32C");
  NameNode nn(&cluster_, conf);
  Configuration dn_conf;
  dn_conf.Set(kDfsChecksumType, "CRC32");
  DataNode dn(&cluster_, &nn, dn_conf);
  DfsClient client(&cluster_, &nn, {&dn}, conf);

  EXPECT_THROW(client.WriteFile("/cs", LongData()), ChecksumError);
}

TEST_F(MiniDfsTest, BytesPerChecksumMismatchBreaksDataTransfer) {
  Configuration conf;
  conf.SetInt(kDfsBytesPerChecksum, 128);
  NameNode nn(&cluster_, conf);
  Configuration dn_conf;
  dn_conf.SetInt(kDfsBytesPerChecksum, 4096);
  DataNode dn(&cluster_, &nn, dn_conf);
  DfsClient client(&cluster_, &nn, {&dn}, conf);

  EXPECT_THROW(client.WriteFile("/bpc", LongData()), ChecksumError);
}

TEST_F(MiniDfsTest, DataTransferProtectionMismatchFailsHandshake) {
  Configuration conf;
  conf.Set(kDfsDataTransferProtection, "privacy");
  NameNode nn(&cluster_, conf);
  Configuration dn_conf;
  DataNode dn(&cluster_, &nn, dn_conf);  // protection "none"
  DfsClient client(&cluster_, &nn, {&dn}, conf);

  EXPECT_THROW(client.WriteFile("/sasl", "x"), HandshakeError);
}

TEST_F(MiniDfsTest, AccessTokenMismatchBlocksRegistration) {
  Configuration nn_conf;
  nn_conf.SetBool(kDfsBlockAccessToken, true);
  NameNode nn(&cluster_, nn_conf);
  Configuration dn_conf;  // tokens disabled on the DataNode
  EXPECT_THROW(DataNode(&cluster_, &nn, dn_conf), HandshakeError);
}

TEST_F(MiniDfsTest, MatchedAccessTokensRegister) {
  Configuration conf;
  conf.SetBool(kDfsBlockAccessToken, true);
  NameNode nn(&cluster_, conf);
  DataNode dn(&cluster_, &nn, conf);
  EXPECT_EQ(nn.NumRegisteredDataNodes(), 1);
}

TEST_F(MiniDfsTest, HeartbeatIntervalMismatchDeclaresNodeDead) {
  Configuration nn_conf;
  nn_conf.SetInt(kDfsHeartbeatRecheck, 10000);
  nn_conf.SetInt(kDfsHeartbeatInterval, 1);  // NN expects 1 s beats
  NameNode nn(&cluster_, nn_conf);
  Configuration dn_conf;
  dn_conf.SetInt(kDfsHeartbeatInterval, 100);  // DN beats every 100 s
  DataNode dn(&cluster_, &nn, dn_conf);

  // Dead window = 2*10s + 10*1s = 30 s; the DataNode's first beat at 100 s is
  // rejected because the NameNode already declared it dead.
  EXPECT_THROW(cluster_.AdvanceTime(130000), RpcError);
}

TEST_F(MiniDfsTest, MatchedHeartbeatsStayAlive) {
  Configuration conf;
  conf.SetInt(kDfsHeartbeatRecheck, 10000);
  NameNode nn(&cluster_, conf);
  DataNode dn(&cluster_, &nn, conf);
  cluster_.AdvanceTime(130000);
  EXPECT_EQ(nn.NumLiveDataNodes(), 1);
}

TEST_F(MiniDfsTest, StoppedNodeEventuallyDeclaredDead) {
  Configuration conf;
  conf.SetInt(kDfsHeartbeatRecheck, 5000);
  NameNode nn(&cluster_, conf);
  DataNode dn1(&cluster_, &nn, conf);
  DataNode dn2(&cluster_, &nn, conf);
  dn2.Stop();
  cluster_.AdvanceTime(2 * 5000 + 10 * 3000 + 5000 + 1000);
  EXPECT_EQ(nn.NumDeadDataNodes(), 1);
  EXPECT_EQ(nn.NumLiveDataNodes(), 1);
}

TEST_F(MiniDfsTest, StaleWindowUsesNameNodeConfig) {
  Configuration conf;
  NameNode nn(&cluster_, conf);
  DataNode dn1(&cluster_, &nn, conf);
  DataNode dn2(&cluster_, &nn, conf);
  dn2.Stop();
  cluster_.AdvanceTime(kDfsStaleIntervalDefault + 3000);
  EXPECT_EQ(nn.NumStaleDataNodes(), 1);
}

TEST_F(MiniDfsTest, FsLimitsComponentLengthEnforcedByNameNode) {
  Configuration nn_conf;
  nn_conf.SetInt(kDfsMaxComponentLength, 16);
  NameNode nn(&cluster_, nn_conf);
  Configuration client_conf;
  client_conf.SetInt(kDfsMaxComponentLength, 1024);
  DataNode dn(&cluster_, &nn, nn_conf);
  DfsClient client(&cluster_, &nn, {&dn}, client_conf);

  std::string long_name(100, 'a');
  EXPECT_THROW(client.WriteFile("/" + long_name, "x"), LimitError);
  EXPECT_NO_THROW(client.WriteFile("/shortname", "x"));
}

TEST_F(MiniDfsTest, FsLimitsDirectoryItemsEnforcedByNameNode) {
  Configuration nn_conf;
  nn_conf.SetInt(kDfsMaxDirectoryItems, 4);
  NameNode nn(&cluster_, nn_conf);
  DataNode dn(&cluster_, &nn, nn_conf);
  Configuration client_conf;
  DfsClient client(&cluster_, &nn, {&dn}, client_conf);

  for (int i = 0; i < 4; ++i) {
    client.WriteFile("/d/f" + std::to_string(i), "x");
  }
  EXPECT_THROW(client.WriteFile("/d/f4", "x"), LimitError);
}

TEST_F(MiniDfsTest, IncrementalReportDelaysDeletionVisibility) {
  Configuration conf;
  conf.SetInt(kDfsReplication, 1);
  NameNode nn(&cluster_, conf);
  Configuration dn_conf;
  dn_conf.SetInt(kDfsIncrementalBrInterval, 10000);
  DataNode dn(&cluster_, &nn, dn_conf);
  DfsClient client(&cluster_, &nn, {&dn}, conf);

  client.WriteFile("/v", "x");
  client.DeleteFile("/v");
  EXPECT_EQ(nn.TotalBlocks(), 1) << "deletion not yet reported";
  cluster_.AdvanceTime(10100);
  EXPECT_EQ(nn.TotalBlocks(), 0) << "deletion visible after the interval";
}

TEST_F(MiniDfsTest, ImmediateReportMakesDeletionVisibleAtOnce) {
  Configuration conf;
  conf.SetInt(kDfsReplication, 1);
  NameNode nn(&cluster_, conf);
  DataNode dn(&cluster_, &nn, conf);  // interval 0 by default
  DfsClient client(&cluster_, &nn, {&dn}, conf);

  client.WriteFile("/v", "x");
  client.DeleteFile("/v");
  EXPECT_EQ(nn.TotalBlocks(), 0);
}

TEST_F(MiniDfsTest, HttpPolicyMismatchBreaksFsck) {
  Configuration nn_conf;
  nn_conf.Set(kDfsHttpPolicy, "HTTPS_ONLY");
  NameNode nn(&cluster_, nn_conf);
  Configuration client_conf;  // HTTP_ONLY by default
  DataNode dn(&cluster_, &nn, nn_conf);
  DfsClient client(&cluster_, &nn, {&dn}, client_conf);

  EXPECT_THROW(client.Fsck(), HandshakeError);
}

TEST_F(MiniDfsTest, SocketTimeoutMismatchAbortsSlowRead) {
  Configuration client_conf;
  client_conf.SetInt(kDfsClientSocketTimeout, 1000);
  Configuration dn_conf;
  dn_conf.SetInt(kDfsClientSocketTimeout, 300000);
  NameNode nn(&cluster_, client_conf);
  DataNode dn(&cluster_, &nn, dn_conf);
  DfsClient client(&cluster_, &nn, {&dn}, client_conf);

  client.WriteFile("/s", "x");
  EXPECT_THROW(client.ReadFileSlow("/s", 5000), TimeoutError);
}

TEST_F(MiniDfsTest, SnapshotDescendantPolicyEnforcedByNameNode) {
  Configuration nn_conf;
  nn_conf.SetBool(kDfsSnapshotDescendant, false);
  NameNode nn(&cluster_, nn_conf);
  DataNode dn(&cluster_, &nn, nn_conf);
  Configuration client_conf;
  client_conf.SetBool(kDfsSnapshotDescendant, true);
  DfsClient client(&cluster_, &nn, {&dn}, client_conf);

  nn.AllowSnapshot("/snap");
  client.WriteFile("/snap/sub/f", "x");
  EXPECT_THROW(client.SnapshotDiff("/snap", "/snap/sub"), RpcError);
}

TEST_F(MiniDfsTest, ReplaceDatanodePolicyEnforcedByNameNode) {
  Configuration nn_conf;
  nn_conf.SetBool(kDfsReplaceDnOnFailure, false);
  NameNode nn(&cluster_, nn_conf);
  DataNode dn1(&cluster_, &nn, nn_conf);
  DataNode dn2(&cluster_, &nn, nn_conf);
  Configuration client_conf;
  client_conf.SetBool(kDfsReplaceDnOnFailure, true);
  DfsClient client(&cluster_, &nn, {&dn1, &dn2}, client_conf);

  EXPECT_THROW(client.WriteFileWithPipelineFailure("/p", "x"), RpcError);
}

TEST_F(MiniDfsTest, CorruptBlockListTruncatedByNameNodeLimit) {
  Configuration nn_conf;
  nn_conf.SetInt(kDfsMaxCorruptFileBlocks, 5);
  nn_conf.SetInt(kDfsReplication, 1);
  NameNode nn(&cluster_, nn_conf);
  DataNode dn(&cluster_, &nn, nn_conf);
  DfsClient client(&cluster_, &nn, {&dn}, nn_conf);

  for (int i = 0; i < 12; ++i) {
    std::string path = "/c/f" + std::to_string(i);
    client.WriteFile(path, "x");
    client.ReportBadBlock(nn.BlocksOf(path).front());
  }
  EXPECT_EQ(client.ListCorruptBlocks().size(), 5u);
}

TEST_F(MiniDfsTest, TailEditsDeclinedByJournalNode) {
  Configuration nn_conf;
  nn_conf.SetBool(kDfsHaTailEditsInProgress, true);
  NameNode nn(&cluster_, nn_conf);
  Configuration jn_conf;  // serving disabled
  JournalNode jn(&cluster_, jn_conf);
  jn.AppendEdits(3);
  EXPECT_THROW(nn.TailEdits(&jn), RpcError);
}

TEST_F(MiniDfsTest, TailEditsServedWhenBothAgree) {
  Configuration conf;
  conf.SetBool(kDfsHaTailEditsInProgress, true);
  NameNode nn(&cluster_, conf);
  JournalNode jn(&cluster_, conf);
  jn.AppendEdits(3);
  EXPECT_EQ(nn.TailEdits(&jn), 3);
}

TEST_F(MiniDfsTest, CheckpointImagesDivergeInLengthUnderMixedCompression) {
  Configuration nn_conf;
  nn_conf.SetBool(kDfsImageCompress, true);
  NameNode nn(&cluster_, nn_conf);
  DataNode dn(&cluster_, &nn, nn_conf);
  Configuration snn_conf;  // compression off
  SecondaryNameNode snn(&cluster_, &nn, snn_conf);
  DfsClient client(&cluster_, &nn, {&dn}, nn_conf);

  client.WriteFile("/i/a", "aaaaaaaaaaaaaaaa");
  snn.DoCheckpoint();
  EXPECT_NE(nn.SaveImage().size(), snn.ImageBytes().size())
      << "lengths differ (the overly strict assertion would fire)";
  EXPECT_EQ(nn.CanonicalImage(), snn.CanonicalImage())
      << "yet the semantic contents are identical — a false positive";
}

TEST_F(MiniDfsTest, ScannerInternalPokeFailsAcrossConfigs) {
  Configuration nn_conf;
  NameNode nn(&cluster_, nn_conf);
  Configuration dn_conf;
  dn_conf.SetInt(kDfsScanPeriodHours, 1);
  DataNode dn(&cluster_, &nn, dn_conf);

  Configuration external;
  external.SetInt(kDfsScanPeriodHours, 504);
  EXPECT_THROW(dn.TriggerScanForTest(external), Error);
  EXPECT_NO_THROW(dn.TriggerScanForTest(dn_conf));
}

TEST_F(MiniDfsTest, ReservedBytesComeFromEachDataNode) {
  Configuration conf;
  NameNode nn(&cluster_, conf);
  Configuration dn1_conf;
  dn1_conf.SetInt(kDfsDuReserved, 1000);
  Configuration dn2_conf;
  dn2_conf.SetInt(kDfsDuReserved, 2000);
  DataNode dn1(&cluster_, &nn, dn1_conf);
  DataNode dn2(&cluster_, &nn, dn2_conf);
  DfsClient client(&cluster_, &nn, {&dn1, &dn2}, conf);

  EXPECT_EQ(client.TotalReservedBytes(), 3000);
}

TEST_F(MiniDfsTest, UpgradeDomainComputedFromNameNodeFactor) {
  Configuration conf;
  conf.SetInt(kDfsUpgradeDomainFactor, 2);
  NameNode nn(&cluster_, conf);
  DataNode dn0(&cluster_, &nn, conf);
  DataNode dn1(&cluster_, &nn, conf);
  DataNode dn2(&cluster_, &nn, conf);
  EXPECT_EQ(nn.UpgradeDomainOf(dn0.id()), 0);
  EXPECT_EQ(nn.UpgradeDomainOf(dn1.id()), 1);
  EXPECT_EQ(nn.UpgradeDomainOf(dn2.id()), 0);
}

TEST_F(MiniDfsTest, PipelineReplicationReachesAllTargets) {
  Configuration conf;
  conf.SetInt(kDfsReplication, 3);
  NameNode nn(&cluster_, conf);
  DataNode dn1(&cluster_, &nn, conf);
  DataNode dn2(&cluster_, &nn, conf);
  DataNode dn3(&cluster_, &nn, conf);
  DfsClient client(&cluster_, &nn, {&dn1, &dn2, &dn3}, conf);

  client.WriteFile("/r3", "abc");
  EXPECT_EQ(dn1.BlockCount() + dn2.BlockCount() + dn3.BlockCount(), 3);
}

TEST_F(MiniDfsTest, SafeModeBlocksMutationsUntilReportsArrive) {
  Configuration conf;
  conf.SetInt(kDfsReplication, 1);
  NameNode nn(&cluster_, conf);
  DataNode dn(&cluster_, &nn, conf);
  DfsClient client(&cluster_, &nn, {&dn}, conf);
  for (int i = 0; i < 4; ++i) {
    client.WriteFile("/sm/f" + std::to_string(i), "x");
  }

  // A "restarted" NameNode: same namespace, no replica locations yet.
  Configuration nn2_conf(conf);
  NameNode nn2(&cluster_, nn2_conf);
  DataNode dn2(&cluster_, &nn2, nn2_conf);
  nn2.EnterSafeMode(/*expected_blocks=*/4);
  EXPECT_TRUE(nn2.InSafeMode());
  DfsClient client2(&cluster_, &nn2, {&dn2}, nn2_conf);
  EXPECT_THROW(client2.WriteFile("/sm/new", "x"), RpcError);

  // The old DataNode re-registers with the new NameNode and reports.
  dn.ReRegister(&nn2);
  dn.SendFullBlockReport(&nn2);
  EXPECT_FALSE(nn2.InSafeMode()) << "threshold reached; safe mode exits";
  EXPECT_NO_THROW(client2.WriteFile("/sm/new", "x"));
}

TEST_F(MiniDfsTest, SafeModeThresholdComesFromTheNameNode) {
  Configuration nn_conf;
  nn_conf.SetDouble(kDfsSafemodeThreshold, 0.5);
  NameNode nn(&cluster_, nn_conf);
  DataNode dn(&cluster_, &nn, nn_conf);
  nn.EnterSafeMode(/*expected_blocks=*/4);
  EXPECT_TRUE(nn.InSafeMode());
  // Report half the expected blocks: threshold 0.5 is satisfied.
  nn.ProcessBlockReport(dn.id(), {101, 102});
  EXPECT_FALSE(nn.InSafeMode());
}

TEST_F(MiniDfsTest, BlockReportFromStrangerRejected) {
  Configuration conf;
  NameNode nn(&cluster_, conf);
  EXPECT_THROW(nn.ProcessBlockReport(12345, {1}), RpcError);
}

TEST_F(MiniDfsTest, SecondaryCheckpointsPeriodically) {
  Configuration conf;
  conf.SetInt(kDfsCheckpointPeriod, 60);  // every virtual minute
  NameNode nn(&cluster_, conf);
  DataNode dn(&cluster_, &nn, conf);
  SecondaryNameNode snn(&cluster_, &nn, conf);
  DfsClient client(&cluster_, &nn, {&dn}, conf);

  client.WriteFile("/ckpt/a", "alpha");
  cluster_.AdvanceTime(3 * 60000 + 1000);
  EXPECT_GE(snn.checkpoints_taken(), 3);
  EXPECT_EQ(snn.CanonicalImage(), nn.CanonicalImage())
      << "the periodic checkpoint tracks the live namespace";
}

TEST_F(MiniDfsTest, ReadFromNonexistentFileFails) {
  Configuration conf;
  NameNode nn(&cluster_, conf);
  DataNode dn(&cluster_, &nn, conf);
  DfsClient client(&cluster_, &nn, {&dn}, conf);
  EXPECT_THROW(client.ReadFile("/missing"), RpcError);
}

TEST_F(MiniDfsTest, WriteWithoutDataNodesFails) {
  Configuration conf;
  NameNode nn(&cluster_, conf);
  DfsClient client(&cluster_, &nn, {}, conf);
  EXPECT_THROW(client.WriteFile("/nodn", "x"), RpcError);
}

}  // namespace
}  // namespace zebra
