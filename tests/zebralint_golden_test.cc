// Byte-stability of StaticPriorReport serialization.
//
// Two guarantees, both load-bearing for `zebralint --diff` (which parses our
// own artifact) and for the summary cache (whose warm results must be
// indistinguishable from cold ones):
//
//  * golden file — a fixed fixture tree serializes to exactly the bytes in
//    tests/golden/static_prior_fixture.json. Regenerate deliberately with
//    ZEBRA_UPDATE_GOLDEN=1 after an intentional format change;
//  * self-scan determinism — analyzing the live source tree twice (fresh
//    analyzer each time) yields byte-identical JSON and text reports.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/analysis/static_prior.h"
#include "src/testkit/full_schema.h"

namespace zebra {
namespace analysis {
namespace {

constexpr char kGoldenRelPath[] = "/tests/golden/static_prior_fixture.json";

constexpr char kParamsHeader[] = R"(
inline constexpr char kGoldHeartbeat[] = "gold.heartbeat.interval";
inline constexpr char kGoldHandlers[] = "gold.handler.count";
inline constexpr char kGoldEncrypt[] = "gold.encrypt.transfer";
)";

constexpr char kNodeSource[] = R"(
#include "gold_params.h"
namespace zebra {

GoldNode::GoldNode(Cluster* cluster, const Configuration& conf)
    : init_scope_(kGoldApp, this, "GoldNode", __FILE__, __LINE__) {
  handlers_ = conf.GetInt(kGoldHandlers, 10);
}

void GoldNode::SendHeartbeat(GoldMaster* master) {
  int interval = conf().GetInt(kGoldHeartbeat, 3);
  master->OnHeartbeat(interval);
}

Bytes GoldNode::Encode(const Bytes& payload) {
  bool encrypt = conf().GetBool(kGoldEncrypt, false);
  return EncodeFrame(MakeWire(encrypt), payload);
}

GoldMaster::GoldMaster(Cluster* cluster)
    : init_scope_(kGoldApp, this, "GoldMaster", __FILE__, __LINE__) {}

}  // namespace zebra
)";

ConfSchema GoldenSchema() {
  ConfSchema schema;
  auto add = [&](const std::string& name) {
    ParamSpec spec;
    spec.name = name;
    spec.app = "gold";
    spec.type = ParamType::kString;
    spec.default_value = "d";
    spec.test_values = {"d", "e"};
    schema.AddParam(std::move(spec));
  };
  add("gold.heartbeat.interval");
  add("gold.handler.count");
  add("gold.encrypt.transfer");
  add("gold.never.read");
  return schema;
}

StaticPriorReport AnalyzeGoldenFixture() {
  StaticAnalyzer analyzer;
  analyzer.AddSource("src/apps/gold/gold_params.h", kParamsHeader);
  analyzer.AddSource("src/apps/gold/gold_node.cc", kNodeSource);
  ConfSchema schema = GoldenSchema();
  return analyzer.Analyze(&schema);
}

TEST(ZebralintGolden, FixtureReportMatchesGoldenFile) {
  const std::string golden_path =
      std::string(ZEBRALINT_SOURCE_ROOT) + kGoldenRelPath;
  const std::string actual = ReportToJson(AnalyzeGoldenFixture());

  if (std::getenv("ZEBRA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
    out << actual;
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    GTEST_SKIP() << "golden file regenerated";
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing " << golden_path
      << " — regenerate with ZEBRA_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(actual, golden.str())
      << "StaticPriorReport serialization changed. If the format change is "
         "intentional, regenerate with ZEBRA_UPDATE_GOLDEN=1 and review the "
         "golden diff.";
}

TEST(ZebralintGolden, FixtureSerializationIsDeterministic) {
  const std::string first = ReportToJson(AnalyzeGoldenFixture());
  const std::string second = ReportToJson(AnalyzeGoldenFixture());
  EXPECT_EQ(first, second);
  EXPECT_EQ(ReportToText(AnalyzeGoldenFixture()),
            ReportToText(AnalyzeGoldenFixture()));
}

TEST(ZebralintGolden, SelfScanSerializationIsDeterministic) {
  auto analyze = [] {
    StaticAnalyzer analyzer;
    EXPECT_GT(analyzer.AddTree(ZEBRALINT_SOURCE_ROOT), 0);
    return analyzer.Analyze(&FullSchema());
  };
  StaticPriorReport first = analyze();
  StaticPriorReport second = analyze();
  EXPECT_EQ(ReportToJson(first), ReportToJson(second));
  EXPECT_EQ(ReportToText(first), ReportToText(second));
}

}  // namespace
}  // namespace analysis
}  // namespace zebra
