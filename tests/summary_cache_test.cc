// Incremental-analysis summary cache: warm runs are byte-identical to cold
// ones, touching one file re-parses only that TU, table changes invalidate
// wholesale, and a corrupt or truncated cache file degrades to a cold
// analysis (with the load-failure counter ticking) — never to a wrong prior.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/analysis/static_prior.h"
#include "src/analysis/summary_cache.h"

namespace zebra {
namespace analysis {
namespace {

constexpr char kParamsHeader[] = R"(
inline constexpr char kCacheHeartbeat[] = "cache.heartbeat.interval";
inline constexpr char kCacheHandlers[] = "cache.handler.count";
)";

constexpr char kAlphaNode[] = R"(
#include "cache_params.h"
namespace zebra {

AlphaNode::AlphaNode(Cluster* cluster, const Configuration& conf)
    : init_scope_(kCacheApp, this, "AlphaNode", __FILE__, __LINE__) {}

void AlphaNode::SendHeartbeat(AlphaMaster* master) {
  int interval = conf().GetInt(kCacheHeartbeat, 3);
  master->OnHeartbeat(interval);
}

}  // namespace zebra
)";

constexpr char kBetaNode[] = R"(
#include "cache_params.h"
namespace zebra {

void BetaNode::Tune() {
  handlers_ = conf().GetInt(kCacheHandlers, 10);
}

}  // namespace zebra
)";

// Same tables as kBetaNode (no new constants, classes, or types) but a
// different body — the "touch one file without changing the tables" case.
constexpr char kBetaNodeTouched[] = R"(
#include "cache_params.h"
namespace zebra {

void BetaNode::Tune() {
  handlers_ = conf().GetInt(kCacheHandlers, 16);
  if (handlers_ < 1) {
    handlers_ = 1;
  }
}

}  // namespace zebra
)";

// Declares an extra param constant: the merged table hash must change.
constexpr char kParamsHeaderGrown[] = R"(
inline constexpr char kCacheHeartbeat[] = "cache.heartbeat.interval";
inline constexpr char kCacheHandlers[] = "cache.handler.count";
inline constexpr char kCacheTimeout[] = "cache.timeout.ms";
)";

void AddFixture(StaticAnalyzer* analyzer,
                const char* header = kParamsHeader,
                const char* beta = kBetaNode) {
  analyzer->AddSource("src/apps/fixcache/cache_params.h", header);
  analyzer->AddSource("src/apps/fixcache/alpha_node.cc", kAlphaNode);
  analyzer->AddSource("src/apps/fixcache/beta_node.cc", beta);
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

TEST(SummaryCache, WarmAnalysisMatchesColdByteForByte) {
  SummaryCache cache;

  StaticAnalyzer cold;
  AddFixture(&cold);
  cold.UseSummaryCache(&cache);
  StaticPriorReport cold_report = cold.Analyze(nullptr);
  EXPECT_EQ(cold.stats().tus_parsed, 3);
  EXPECT_EQ(cold.stats().tus_from_cache, 0);
  EXPECT_EQ(cache.size(), 3u);

  StaticAnalyzer warm;
  AddFixture(&warm);
  warm.UseSummaryCache(&cache);
  StaticPriorReport warm_report = warm.Analyze(nullptr);
  EXPECT_EQ(warm.stats().tus_parsed, 0);
  EXPECT_EQ(warm.stats().tus_from_cache, 3);
  EXPECT_EQ(warm.stats().facts_computed, 0);
  EXPECT_FALSE(warm.stats().table_hash_invalidated);

  EXPECT_EQ(ReportToJson(cold_report), ReportToJson(warm_report));
  EXPECT_EQ(ReportToText(cold_report), ReportToText(warm_report));
}

TEST(SummaryCache, TouchingOneFileReparsesOnlyThatTu) {
  SummaryCache cache;

  StaticAnalyzer first;
  AddFixture(&first);
  first.UseSummaryCache(&cache);
  first.Analyze(nullptr);

  StaticAnalyzer second;
  AddFixture(&second, kParamsHeader, kBetaNodeTouched);
  second.UseSummaryCache(&cache);
  StaticPriorReport warm_report = second.Analyze(nullptr);
  EXPECT_EQ(second.stats().tus_parsed, 1);
  EXPECT_EQ(second.stats().tus_from_cache, 2);
  EXPECT_FALSE(second.stats().table_hash_invalidated);

  // The warm result equals a cold analysis of the touched tree.
  StaticAnalyzer cold;
  AddFixture(&cold, kParamsHeader, kBetaNodeTouched);
  StaticPriorReport cold_report = cold.Analyze(nullptr);
  EXPECT_EQ(ReportToJson(cold_report), ReportToJson(warm_report));
}

TEST(SummaryCache, TableChangeInvalidatesWholesale) {
  SummaryCache cache;

  StaticAnalyzer first;
  AddFixture(&first);
  first.UseSummaryCache(&cache);
  first.Analyze(nullptr);

  // A new param constant changes the merged tables: statement facts computed
  // under the old tables may be stale, so everything re-parses.
  StaticAnalyzer second;
  AddFixture(&second, kParamsHeaderGrown);
  second.UseSummaryCache(&cache);
  StaticPriorReport warm_report = second.Analyze(nullptr);
  EXPECT_TRUE(second.stats().table_hash_invalidated);
  EXPECT_EQ(second.stats().tus_parsed, 3);

  StaticAnalyzer cold;
  AddFixture(&cold, kParamsHeaderGrown);
  StaticPriorReport cold_report = cold.Analyze(nullptr);
  EXPECT_EQ(ReportToJson(cold_report), ReportToJson(warm_report));
}

TEST(SummaryCache, PersistedCacheRoundTrips) {
  const std::string path = TempPath("summary_roundtrip.zsc");
  std::remove(path.c_str());

  StaticAnalyzer first;
  AddFixture(&first);
  // Missing file: a normal cold start, not a load failure.
  EXPECT_FALSE(first.EnableSummaryCache(path));
  StaticPriorReport cold_report = first.Analyze(nullptr);
  EXPECT_EQ(first.stats().summary_load_failures, 0);
  EXPECT_EQ(first.stats().tus_parsed, 3);

  StaticAnalyzer second;
  AddFixture(&second);
  EXPECT_TRUE(second.EnableSummaryCache(path));
  StaticPriorReport warm_report = second.Analyze(nullptr);
  EXPECT_EQ(second.stats().tus_parsed, 0);
  EXPECT_EQ(second.stats().tus_from_cache, 3);
  EXPECT_EQ(ReportToJson(cold_report), ReportToJson(warm_report));
  std::remove(path.c_str());
}

TEST(SummaryCache, CorruptFileDegradesToColdAndCounts) {
  const std::string path = TempPath("summary_corrupt.zsc");
  std::remove(path.c_str());

  StaticAnalyzer first;
  AddFixture(&first);
  first.EnableSummaryCache(path);
  StaticPriorReport cold_report = first.Analyze(nullptr);

  // Flip one byte in the middle: the whole-file checksum must reject it.
  std::string content = ReadFile(path);
  ASSERT_GT(content.size(), 40u);
  content[content.size() / 2] ^= 0x01;
  WriteFile(path, content);

  StaticAnalyzer second;
  AddFixture(&second);
  EXPECT_FALSE(second.EnableSummaryCache(path));
  StaticPriorReport report = second.Analyze(nullptr);
  EXPECT_EQ(second.stats().summary_load_failures, 1);
  EXPECT_EQ(second.stats().tus_parsed, 3) << "corrupt cache must run cold";
  EXPECT_EQ(second.stats().tus_from_cache, 0);
  EXPECT_EQ(ReportToJson(cold_report), ReportToJson(report));
  std::remove(path.c_str());
}

TEST(SummaryCache, TruncatedFileDegradesToColdAndCounts) {
  const std::string path = TempPath("summary_truncated.zsc");
  std::remove(path.c_str());

  StaticAnalyzer first;
  AddFixture(&first);
  first.EnableSummaryCache(path);
  StaticPriorReport cold_report = first.Analyze(nullptr);

  // Torn write: keep the first half only (the trailing checksum is gone).
  std::string content = ReadFile(path);
  ASSERT_GT(content.size(), 40u);
  WriteFile(path, content.substr(0, content.size() / 2));

  StaticAnalyzer second;
  AddFixture(&second);
  EXPECT_FALSE(second.EnableSummaryCache(path));
  StaticPriorReport report = second.Analyze(nullptr);
  EXPECT_EQ(second.stats().summary_load_failures, 1);
  EXPECT_EQ(second.stats().tus_parsed, 3);
  EXPECT_EQ(ReportToJson(cold_report), ReportToJson(report));
  std::remove(path.c_str());
}

TEST(SummaryCache, GarbageMagicRejectedWholesale) {
  const std::string path = TempPath("summary_garbage.zsc");
  WriteFile(path, "not a summary cache at all\nrandom bytes\n");

  SummaryCache cache;
  EXPECT_FALSE(cache.LoadFromFile(path));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().load_failures, 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace analysis
}  // namespace zebra
