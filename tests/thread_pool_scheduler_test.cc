// Tests for the in-process thread-pool scheduler and the CampaignExecutor
// interface. The determinism contract is the same one the forked schedulers
// carry — findings, Table-5 stage counts, and runs_to_first_detection
// bitwise-identical to the sequential campaign at every thread count — plus
// the thread-specific surfaces: the shared cross-worker run cache, the
// thread mapping of injected faults, and journal/resume without forks.

#include "src/core/thread_pool_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/error.h"
#include "src/core/campaign_executor.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/run_cache.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

// Full structural equality against the sequential reference. Durations and
// wall-clock are timing, not results; cache counters are scheduling-dependent
// accounting — neither is compared.
void ExpectIdenticalResults(const CampaignReport& actual,
                            const CampaignReport& expected,
                            const std::string& label) {
  SCOPED_TRACE(label);

  ASSERT_EQ(actual.per_app.size(), expected.per_app.size());
  for (const auto& [app, counts] : expected.per_app) {
    ASSERT_TRUE(actual.per_app.count(app) > 0) << app;
    const AppStageCounts& got = actual.per_app.at(app);
    EXPECT_EQ(got.original, counts.original) << app;
    EXPECT_EQ(got.after_static, counts.after_static) << app;
    EXPECT_EQ(got.after_prerun, counts.after_prerun) << app;
    EXPECT_EQ(got.after_uncertainty, counts.after_uncertainty) << app;
    EXPECT_EQ(got.executed_runs, counts.executed_runs) << app;
    EXPECT_EQ(got.tests_total, counts.tests_total) << app;
    EXPECT_EQ(got.tests_with_nodes, counts.tests_with_nodes) << app;
  }

  ASSERT_EQ(actual.sharing.size(), expected.sharing.size());
  for (const auto& [app, sharing] : expected.sharing) {
    ASSERT_TRUE(actual.sharing.count(app) > 0) << app;
    EXPECT_EQ(actual.sharing.at(app).tests_with_conf_usage,
              sharing.tests_with_conf_usage)
        << app;
    EXPECT_EQ(actual.sharing.at(app).tests_with_sharing, sharing.tests_with_sharing)
        << app;
  }

  ASSERT_EQ(actual.findings.size(), expected.findings.size());
  for (const auto& [param, finding] : expected.findings) {
    ASSERT_TRUE(actual.findings.count(param) > 0) << param;
    const ParamFinding& got = actual.findings.at(param);
    EXPECT_EQ(got.owning_app, finding.owning_app) << param;
    EXPECT_EQ(got.witness_tests, finding.witness_tests) << param;
    EXPECT_EQ(got.example_failure, finding.example_failure) << param;
    EXPECT_EQ(got.best_p_value, finding.best_p_value) << param;
  }

  EXPECT_EQ(actual.first_trial_candidates, expected.first_trial_candidates);
  EXPECT_EQ(actual.filtered_by_hypothesis, expected.filtered_by_hypothesis);
  EXPECT_EQ(actual.total_unit_test_runs, expected.total_unit_test_runs);
  EXPECT_EQ(actual.runs_to_first_detection, expected.runs_to_first_detection);
  EXPECT_EQ(actual.first_detection_param, expected.first_detection_param);
}

TEST(ThreadPoolSchedulerTest, BitwiseIdenticalToSequentialAtEveryThreadCount) {
  CampaignOptions options;  // all apps: exercises cross-unit frequent-failure
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();
  ASSERT_GT(expected.findings.size(), 0u);
  ASSERT_GT(expected.runs_to_first_detection, 0);

  for (int workers : {1, 2, 4, 6}) {
    CampaignReport pooled =
        RunThreadPoolCampaign(FullSchema(), FullCorpus(), options, workers);
    ExpectIdenticalResults(pooled, expected,
                           "workers=" + std::to_string(workers));
  }
}

TEST(ThreadPoolSchedulerTest, SharedRunCacheDoesNotChangeResultsAndRecordsHits) {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();
  ASSERT_EQ(expected.cache_hits, 0);

  CampaignOptions cached_options = options;
  cached_options.enable_run_cache = true;
  CampaignReport cached = RunThreadPoolCampaign(FullSchema(), FullCorpus(),
                                                cached_options, /*workers=*/4);
  ExpectIdenticalResults(cached, expected, "shared cache enabled");
  EXPECT_GT(cached.cache_hits, 0);
  EXPECT_GT(cached.cache_misses, 0);
}

TEST(ThreadPoolSchedulerTest, PerWorkerCachesAlsoPreserveResults) {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();

  CampaignOptions cached_options = options;
  cached_options.enable_run_cache = true;
  ThreadPoolCampaignOptions pool;
  pool.workers = 4;
  pool.share_run_cache = false;  // forked-scheduler-style per-engine caches
  CampaignReport cached =
      RunThreadPoolCampaign(FullSchema(), FullCorpus(), cached_options, pool);
  ExpectIdenticalResults(cached, expected, "per-worker caches");
  EXPECT_GT(cached.cache_hits, 0);
}

TEST(ThreadPoolSchedulerTest, EquivCacheBitwiseIdenticalAtEveryThreadCount) {
  // The strongest cache contract: equivalence-layer serves across different
  // plans, shared across workers, and the no-cache sequential reference must
  // still match bitwise at every thread count.
  CampaignOptions options;  // all apps
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();
  ASSERT_GT(expected.findings.size(), 0u);

  CampaignOptions equiv_options = options;
  equiv_options.enable_run_cache = true;
  equiv_options.enable_equiv_cache = true;

  for (int workers : {1, 2, 4, 6}) {
    CampaignReport pooled = RunThreadPoolCampaign(FullSchema(), FullCorpus(),
                                                  equiv_options, workers);
    ExpectIdenticalResults(pooled, expected,
                           "equiv workers=" + std::to_string(workers));
  }
}

TEST(ThreadPoolSchedulerTest, SurvivesInjectedWorkerCrash) {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();

  // Worker 0 dies on its first attempt at the unit; worker 1 absorbs the
  // queue. The report must be identical and record the requeue.
  ThreadPoolCampaignOptions pool;
  pool.workers = 2;
  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  crash.test_id = "minikv.TestPutGet";
  crash.worker = 0;
  crash.attempt = -1;
  pool.faults.specs.push_back(crash);

  CampaignReport report =
      RunThreadPoolCampaign(FullSchema(), FullCorpus(), options, pool);
  ExpectIdenticalResults(report, expected, "one worker thread died");
  EXPECT_GE(report.requeued_units, 1);
}

TEST(ThreadPoolSchedulerTest, AllWorkersDeadThrows) {
  CampaignOptions options;
  options.apps = {"minikv"};
  ThreadPoolCampaignOptions pool;
  pool.workers = 1;
  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  crash.test_id = "minikv.TestPutGet";
  crash.worker = 0;
  crash.attempt = -1;
  pool.faults.specs.push_back(crash);
  EXPECT_THROW(
      RunThreadPoolCampaign(FullSchema(), FullCorpus(), options, pool), Error);
}

TEST(ThreadPoolSchedulerTest, PoisonedUnitIsQuarantinedNotLoopedForever) {
  CampaignOptions options;
  options.apps = {"minikv"};
  options.unit_attempt_limit = 2;
  options.requeue_backoff_seconds = 0.0;  // keep the test fast

  // Every attempt at this unit fails (hang injection, any worker, any
  // attempt): after unit_attempt_limit attempts it must fold as a stub and
  // land in poisoned_units instead of spinning.
  ThreadPoolCampaignOptions pool;
  pool.workers = 2;
  FaultSpec hang;
  hang.kind = FaultKind::kHang;
  hang.test_id = "minikv.TestPutGet";
  hang.worker = -1;
  hang.attempt = -1;
  pool.faults.specs.push_back(hang);

  CampaignReport report =
      RunThreadPoolCampaign(FullSchema(), FullCorpus(), options, pool);
  ASSERT_EQ(report.poisoned_units.size(), 1u);
  EXPECT_EQ(report.poisoned_units[0], "minikv.TestPutGet");
  EXPECT_GT(report.hung_workers, 0);
}

TEST(ThreadPoolSchedulerTest, JournalResumeIsBitwiseIdentical) {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();

  const std::string path = ::testing::TempDir() + "/threadpool_resume.zj";

  // First invocation "crashes" (abort hook) after three folds; the journal
  // retains exactly that prefix.
  ThreadPoolCampaignOptions first;
  first.workers = 2;
  first.journal_path = path;
  first.abort_after_folds = 3;
  RunThreadPoolCampaign(FullSchema(), FullCorpus(), options, first);

  // The resumed campaign replays the prefix and runs only the rest.
  ThreadPoolCampaignOptions second;
  second.workers = 2;
  second.journal_path = path;
  second.resume = true;
  CampaignReport resumed =
      RunThreadPoolCampaign(FullSchema(), FullCorpus(), options, second);
  ExpectIdenticalResults(resumed, expected, "journal resume");
  EXPECT_EQ(resumed.resumed_units, 3);
}

TEST(ThreadPoolSchedulerTest, ZeroWorkersRejected) {
  CampaignOptions options;
  options.apps = {"minikv"};
  EXPECT_THROW(RunThreadPoolCampaign(FullSchema(), FullCorpus(), options, 0),
               Error);
}

TEST(ThreadPoolSchedulerTest, MoreWorkersThanUnitsIsClamped) {
  CampaignOptions options;
  options.apps = {"apptools"};  // smallest corpus
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();
  CampaignReport pooled = RunThreadPoolCampaign(FullSchema(), FullCorpus(),
                                                options, /*workers=*/64);
  ExpectIdenticalResults(pooled, expected, "clamped workers");
}

TEST(ThreadPoolSchedulerTest, CancelFlagStopsAtUnitBoundary) {
  CampaignOptions options;
  options.apps = {"minikv"};
  static volatile std::sig_atomic_t cancel = 1;  // pre-cancelled: nothing folds
  options.cancel_flag = &cancel;
  CampaignReport report =
      RunThreadPoolCampaign(FullSchema(), FullCorpus(), options, 2);
  EXPECT_EQ(report.findings.size(), 0u);
}

// ---------------------------------------------------------------------------
// CampaignExecutor interface
// ---------------------------------------------------------------------------

TEST(CampaignExecutorTest, EveryBackendProducesIdenticalResults) {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};
  Campaign sequential_ref(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential_ref.Run();
  ASSERT_GT(expected.findings.size(), 0u);

  for (ExecutorKind kind :
       {ExecutorKind::kSequential, ExecutorKind::kSharded,
        ExecutorKind::kStealing, ExecutorKind::kThreadPool}) {
    auto executor = MakeExecutor(kind);
    ExecutorOptions exec;
    exec.workers = kind == ExecutorKind::kSequential ? 1 : 2;
    CampaignReport report =
        executor->Run(FullSchema(), FullCorpus(), options, exec);
    ExpectIdenticalResults(report, expected, executor->name());
  }
}

TEST(CampaignExecutorTest, ParseAndNameRoundTrip) {
  for (ExecutorKind kind :
       {ExecutorKind::kSequential, ExecutorKind::kSharded,
        ExecutorKind::kStealing, ExecutorKind::kThreadPool}) {
    auto parsed = ParseExecutorKind(ExecutorKindName(kind));
    ASSERT_TRUE(parsed.has_value()) << ExecutorKindName(kind);
    EXPECT_EQ(*parsed, kind);
    EXPECT_STREQ(MakeExecutor(kind)->name(), ExecutorKindName(kind));
  }
  EXPECT_FALSE(ParseExecutorKind("fork-bomb").has_value());
}

TEST(CampaignExecutorTest, UnhonorableOptionsAreRejectedNotDropped) {
  CampaignOptions options;
  options.apps = {"minikv"};

  ExecutorOptions with_journal;
  with_journal.journal_path = ::testing::TempDir() + "/exec_reject.zj";
  EXPECT_THROW(MakeExecutor(ExecutorKind::kSequential)
                   ->Run(FullSchema(), FullCorpus(), options, with_journal),
               Error);
  EXPECT_THROW(MakeExecutor(ExecutorKind::kSharded)
                   ->Run(FullSchema(), FullCorpus(), options, with_journal),
               Error);

  ExecutorOptions with_faults;
  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  with_faults.faults.specs.push_back(crash);
  EXPECT_THROW(MakeExecutor(ExecutorKind::kSequential)
                   ->Run(FullSchema(), FullCorpus(), options, with_faults),
               Error);
}

TEST(CampaignExecutorTest, CapabilityFlagsMatchBackends) {
  EXPECT_FALSE(MakeExecutor(ExecutorKind::kSequential)->supports_journal());
  EXPECT_FALSE(
      MakeExecutor(ExecutorKind::kSequential)->supports_fault_injection());
  EXPECT_TRUE(MakeExecutor(ExecutorKind::kSharded)->supports_process_faults());
  EXPECT_FALSE(MakeExecutor(ExecutorKind::kSharded)->supports_journal());
  EXPECT_TRUE(MakeExecutor(ExecutorKind::kStealing)->supports_journal());
  EXPECT_TRUE(
      MakeExecutor(ExecutorKind::kStealing)->supports_process_faults());
  EXPECT_TRUE(MakeExecutor(ExecutorKind::kThreadPool)->supports_journal());
  EXPECT_FALSE(
      MakeExecutor(ExecutorKind::kThreadPool)->supports_process_faults());
  EXPECT_TRUE(
      MakeExecutor(ExecutorKind::kThreadPool)->supports_fault_injection());
}

// ---------------------------------------------------------------------------
// Concurrent RunCache
// ---------------------------------------------------------------------------

TEST(ConcurrentRunCacheTest, HammerWithLruEvictionStaysConsistent) {
  // N threads share one bounded cache, each inserting its own keyspace and
  // looking up everyone's, with LRU eviction constantly rotating entries out.
  // The copy-out Lookup must never tear a result (a hit is always a value
  // some thread inserted for exactly that key) and the final stats must
  // balance. Run under TSan in CI, this is the data-race gate for the
  // shared-cache design.
  RunCache cache(RunCache::Limits{/*max_entries=*/64, /*max_bytes=*/0});
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 40;
  constexpr int kRounds = 50;
  std::atomic<int> torn_results{0};

  auto worker = [&](int thread_index) {
    for (int round = 0; round < kRounds; ++round) {
      for (int key = 0; key < kKeysPerThread; ++key) {
        // Each (thread, key) pair owns a distinct plan text; the expected
        // payload is derivable from the key, so tearing is detectable.
        int owner = (thread_index + round + key) % kThreads;
        std::string test_id = "hammer.T" + std::to_string(owner);
        std::string plan = "plan-" + std::to_string(key);
        std::string expected_failure =
            "failure-" + std::to_string(owner) + "-" + std::to_string(key);

        TestResult out;
        if (cache.Lookup(test_id, plan, /*trial=*/0, nullptr, &out)) {
          if (out.failure != expected_failure || out.passed) {
            ++torn_results;
          }
        } else {
          TestResult result;
          result.passed = false;
          result.failure = expected_failure;
          cache.Insert(test_id, plan, /*trial=*/0, /*trial_insensitive=*/true,
                       result);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(worker, i);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(torn_results.load(), 0);
  RunCache::Stats stats = cache.stats();
  EXPECT_LE(stats.entries, 64);
  EXPECT_GT(stats.misses, 0);
  EXPECT_GT(stats.evictions, 0);
  // Every recorded entry was inserted by somebody; entries + evictions can
  // exceed insert *calls* only if accounting tore somewhere.
  EXPECT_GE(stats.misses * 2, stats.entries + stats.evictions);

  // Whether any *concurrent* hit occurred depends on thread interleaving
  // (single-core boxes can serialize the rotating keyspace past the LRU
  // window), so hit accounting is asserted serially: insert, then look up.
  TestResult final_result;
  final_result.passed = true;
  cache.Insert("hammer.final", "p", 0, /*trial_insensitive=*/true, final_result);
  TestResult out;
  ASSERT_TRUE(cache.Lookup("hammer.final", "p", 7, nullptr, &out));
  EXPECT_TRUE(out.passed);
  EXPECT_GT(cache.stats().hits, stats.hits);
}

TEST(ConcurrentRunCacheTest, SharedStatsSnapshotIsConsistent) {
  // stats() returns a snapshot by value; concurrent readers must never see
  // negative derived quantities.
  RunCache cache;
  std::atomic<bool> stop{false};
  std::atomic<int> inconsistencies{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      RunCache::Stats stats = cache.stats();
      if (stats.entries < 0 || stats.bytes < 0 ||
          stats.HitRate() < 0.0 || stats.HitRate() > 1.0) {
        ++inconsistencies;
      }
    }
  });

  for (int i = 0; i < 500; ++i) {
    TestResult result;
    result.passed = true;
    cache.Insert("t", "p" + std::to_string(i), 0, true, result);
    TestResult out;
    cache.Lookup("t", "p" + std::to_string(i / 2), 0, nullptr, &out);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(inconsistencies.load(), 0);
}

}  // namespace
}  // namespace zebra
