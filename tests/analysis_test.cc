// Unit tests for the zebralint static analyzer: lexing, read-site
// extraction, wire-taint classification, and drift detection — all on
// in-memory fixture sources so every rule is exercised in isolation.

#include <gtest/gtest.h>

#include "src/analysis/read_site_extractor.h"
#include "src/analysis/source_lexer.h"
#include "src/analysis/static_prior.h"
#include "src/analysis/taint_pass.h"
#include "src/conf/conf_schema.h"

namespace zebra {
namespace analysis {
namespace {

// ---------------------------------------------------------------- lexer ---

TEST(SourceLexer, StripsCommentsAndPreprocessorKeepsLines) {
  auto tokens = LexCpp(
      "#include <map>\n"
      "// a comment with Get(kFake)\n"
      "int x = 3; /* block\n"
      "   comment */ int y;\n");
  ASSERT_EQ(tokens.size(), 8u);  // int x = 3 ; int y ;
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[0].line, 3);
  EXPECT_EQ(tokens[3].text, "3");
  EXPECT_EQ(tokens[5].text, "int");
  EXPECT_EQ(tokens[5].line, 4);  // after the block comment's newline
}

TEST(SourceLexer, StringLiteralsAndMultiCharPunct) {
  auto tokens = LexCpp("a->b(\"dfs.x\"); c::d == e;\n");
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[1].text, "->");
  EXPECT_EQ(tokens[3].text, "(");
  EXPECT_EQ(tokens[4].kind, TokenKind::kString);
  EXPECT_EQ(tokens[4].text, "dfs.x");
  bool saw_scope = false, saw_eq = false;
  for (const Token& t : tokens) {
    saw_scope |= t.Is("::");
    saw_eq |= t.Is("==");
  }
  EXPECT_TRUE(saw_scope);
  EXPECT_TRUE(saw_eq);
}

TEST(SourceLexer, CollectsLintMarkers) {
  auto markers = CollectLintMarkers(
      "int a;\n"
      "// zebralint(external-init): TaskManager bracketed at call sites\n");
  ASSERT_EQ(markers.size(), 1u);
  EXPECT_EQ(markers[0].tag, "external-init");
  EXPECT_EQ(markers[0].argument, "TaskManager bracketed at call sites");
  EXPECT_EQ(markers[0].line, 2);
}

TEST(SourceLexer, RawStringsLexAsOneLiteral) {
  // The ')' and '"' inside the raw body must not terminate the literal, and
  // the delimiter form must be honored.
  auto tokens = LexCpp(
      "auto a = R\"(quote \" and paren ) inside)\";\n"
      "auto b = R\"sep(body with )\" fake close)sep\";\n");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, "quote \" and paren ) inside");
  bool saw_delimited = false;
  for (const Token& t : tokens) {
    saw_delimited |= t.kind == TokenKind::kString &&
                     t.text == "body with )\" fake close";
  }
  EXPECT_TRUE(saw_delimited);
}

TEST(SourceLexer, PrefixedRawAndEncodedStrings) {
  // u8/u/U/L prefixes, with and without R. The prefix must not leak into an
  // identifier token, and the contents must come through unquoted.
  auto tokens = LexCpp(
      "auto a = u8R\"(alpha)\";\n"
      "auto b = LR\"(beta)\";\n"
      "auto c = L\"gamma\";\n"
      "auto d = u8\"delta\";\n");
  std::vector<std::string> strings;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kString) {
      strings.push_back(t.text);
    }
    // No residue identifiers from the prefixes.
    EXPECT_FALSE(t.IsIdent() && (t.text == "u8R" || t.text == "LR" ||
                                 t.text == "L" || t.text == "u8"))
        << t.text;
  }
  EXPECT_EQ(strings,
            (std::vector<std::string>{"alpha", "beta", "gamma", "delta"}));
}

TEST(SourceLexer, RawStringNewlinesCountLines) {
  auto tokens = LexCpp(
      "auto a = R\"(line one\n"
      "line two\n"
      "line three)\";\n"
      "int after = 1;\n");
  bool saw_after = false;
  for (const Token& t : tokens) {
    if (t.Is("after")) {
      saw_after = true;
      EXPECT_EQ(t.line, 4);
    }
  }
  EXPECT_TRUE(saw_after);
}

TEST(SourceLexer, BackslashContinuationSplicesTokens) {
  // A backslash-newline splice is invisible to the token stream: the halves
  // of an identifier join, and strings continue across it.
  auto tokens = LexCpp(
      "int hand\\\n"
      "lers = conf.GetInt(\"dfs.han\\\n"
      "dler.count\", 10);\n"
      "int next = 2;\n");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[1].text, "handlers");
  bool saw_param = false, saw_next = false;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "dfs.handler.count");
      saw_param = true;
    }
    if (t.Is("next")) {
      saw_next = true;
      EXPECT_EQ(t.line, 4);  // splices still advance the line counter
    }
  }
  EXPECT_TRUE(saw_param);
  EXPECT_TRUE(saw_next);
}

TEST(SourceLexer, ContinuedPreprocessorAndCommentLinesAreDropped) {
  // A continued #define swallows its continuation lines; a line comment
  // ending in a backslash swallows the next line too.
  auto tokens = LexCpp(
      "#define HELPER(x) \\\n"
      "  do_something(x)\n"
      "// trailing comment continues \\\n"
      "still commented out\n"
      "int real = 1;\n");
  ASSERT_EQ(tokens.size(), 5u);  // int real = 1 ;
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[1].text, "real");
  EXPECT_EQ(tokens[1].line, 5);
}

// ------------------------------------------------------------ extraction ---

constexpr char kParamsHeader[] = R"(
inline constexpr char kFixHeartbeat[] = "fix.heartbeat.interval";
inline constexpr char kFixHandlers[] = "fix.handler.count";
inline constexpr char kFixEncrypt[] = "fix.encrypt.transfer";
inline constexpr char kFixDataDir[] = "fix.data.dir";
)";

constexpr char kNodeSource[] = R"(
#include "fix_params.h"
namespace zebra {

FixNode::FixNode(Cluster* cluster, const Configuration& conf)
    : init_scope_(kFixApp, this, "FixNode", __FILE__, __LINE__),
      cluster_(cluster) {
  handlers_ = conf.GetInt(kFixHandlers, 10);
  data_dir_ = conf.Get(kFixDataDir, "/tmp");
}

void FixNode::SendHeartbeat(FixMaster* master) {
  int interval = conf().GetInt(kFixHeartbeat, 3);
  master->OnHeartbeat(interval);
}

Bytes FixNode::Encode(const Bytes& payload) {
  bool encrypt = conf().GetBool(kFixEncrypt, false);
  return EncodeFrame(MakeWire(encrypt), payload);
}

}  // namespace zebra
)";

TEST(ReadSiteExtractor, FindsConstantsReadSitesAndNodeClasses) {
  ProgramModel program;
  program.Merge(ExtractTu("src/apps/fix/fix_params.h", kParamsHeader));
  program.Merge(ExtractTu("src/apps/fix/fix_node.cc", kNodeSource));
  program.Resolve();

  EXPECT_EQ(program.param_constants.at("kFixHeartbeat"),
            "fix.heartbeat.interval");
  EXPECT_EQ(program.param_constants.size(), 4u);
  EXPECT_TRUE(program.node_classes.count("FixNode"));

  auto sites = program.AllReadSites();
  ASSERT_EQ(sites.size(), 4u);
  bool found_heartbeat = false;
  for (const ReadSite* site : sites) {
    if (site->param == "fix.heartbeat.interval") {
      found_heartbeat = true;
      EXPECT_EQ(site->enclosing_class, "FixNode");
      EXPECT_EQ(site->function, "FixNode::SendHeartbeat");
      EXPECT_EQ(site->method, "GetInt");
      EXPECT_GT(site->line, 0);
    }
  }
  EXPECT_TRUE(found_heartbeat);
}

TEST(ReadSiteExtractor, TracksConstructorBracketsAndStatements) {
  ProgramModel program;
  program.Merge(ExtractTu("src/apps/fix/fix_node.cc", kNodeSource));
  const FunctionModel* ctor = nullptr;
  for (const FunctionModel& fn : program.tus[0]->functions) {
    if (fn.is_constructor) ctor = &fn;
  }
  ASSERT_NE(ctor, nullptr);
  EXPECT_EQ(ctor->qualified, "FixNode::FixNode");
  EXPECT_TRUE(ctor->has_init_bracket);
  // Two init-list entries + two body statements.
  EXPECT_GE(ctor->statements.size(), 4u);
}

// ----------------------------------------------------------------- taint ---

TaintReport TaintOf(const char* extra_source) {
  ProgramModel program;
  program.Merge(ExtractTu("src/apps/fix/fix_params.h", kParamsHeader));
  program.Merge(ExtractTu("src/apps/fix/fix_node.cc", kNodeSource));
  if (extra_source != nullptr) {
    program.Merge(ExtractTu("src/apps/fix/fix_extra.cc", extra_source));
  }
  program.Resolve();
  return RunTaintPass(program);
}

TEST(TaintPass, WirePrimitiveCoOccurrenceTaints) {
  TaintReport report = TaintOf(nullptr);
  // R1a via local: encrypt flows into EncodeFrame in the same function.
  EXPECT_TRUE(report.IsWireTainted("fix.encrypt.transfer"));
}

TEST(TaintPass, CrossNodeCallTaints) {
  // `master` is declared FixMaster* in the parameter list; FixMaster must be
  // a node class for the call to count, so bracket it in the fixture.
  TaintReport report = TaintOf(R"(
FixMaster::FixMaster(Cluster* cluster)
    : init_scope_(kFixApp, this, "FixMaster", __FILE__, __LINE__) {}
)");
  EXPECT_TRUE(report.IsWireTainted("fix.heartbeat.interval"));
}

TEST(TaintPass, BareReadsStayNodeLocal) {
  TaintReport report = TaintOf(nullptr);
  EXPECT_FALSE(report.IsWireTainted("fix.handler.count"));
  EXPECT_FALSE(report.IsWireTainted("fix.data.dir"));
}

TEST(TaintPass, ProtocolThrowWithControlDependenceTaints) {
  TaintReport report = TaintOf(R"(
void FixNode::Create(const std::string& name) {
  const int limit = conf().GetInt(kFixHandlers, 10);
  if (static_cast<int>(name.size()) > limit) {
    throw LimitError("component too long");
  }
}
)");
  // The guard reads a local assigned from the parameter; the throw is inside
  // the same ';'-delimited statement as the if-header.
  EXPECT_TRUE(report.IsWireTainted("fix.handler.count"));
}

TEST(TaintPass, ReadInsideProtocolSurfaceTaints) {
  // FixNode::Encode is not name-matched, but once another node calls it
  // cross-node it becomes a protocol surface; reads inside it taint (R2).
  TaintReport report = TaintOf(R"(
FixMaster::FixMaster(Cluster* cluster)
    : init_scope_(kFixApp, this, "FixMaster", __FILE__, __LINE__) {}
void FixMaster::Pull(FixNode* source) {
  source->Encode(Bytes{});
}
)");
  ASSERT_TRUE(report.protocol_surfaces.count("FixNode::Encode"));
  EXPECT_TRUE(report.IsWireTainted("fix.encrypt.transfer"));
}

TEST(TaintPass, HelperReadPropagatesIntoSinkStatement) {
  TaintReport report = TaintOf(R"(
WireConfig FixWire(const Configuration& conf) {
  WireConfig wire;
  wire.compress = conf.Get(kFixDataDir, "none");
  return wire;
}
void FixNode::Push(const Bytes& payload) {
  auto frame = EncodeFrame(FixWire(conf()), payload);
}
)");
  // R3: the helper's direct read feeds a statement containing a wire
  // primitive.
  EXPECT_TRUE(report.IsWireTainted("fix.data.dir"));
}

// ----------------------------------------------------------------- drift ---

StaticPriorReport AnalyzeFixture(const ConfSchema* schema,
                                 const char* extra_source) {
  StaticAnalyzer analyzer;
  analyzer.AddSource("src/apps/fix/fix_params.h", kParamsHeader);
  analyzer.AddSource("src/apps/fix/fix_node.cc", kNodeSource);
  if (extra_source != nullptr) {
    analyzer.AddSource("src/apps/fix/fix_extra.cc", extra_source);
  }
  return analyzer.Analyze(schema);
}

ConfSchema FixtureSchema() {
  ConfSchema schema;
  auto add = [&](const std::string& name) {
    ParamSpec spec;
    spec.name = name;
    spec.app = "fix";
    spec.type = ParamType::kString;
    spec.default_value = "d";
    spec.test_values = {"d", "e"};
    schema.AddParam(std::move(spec));
  };
  add("fix.heartbeat.interval");
  add("fix.handler.count");
  add("fix.encrypt.transfer");
  add("fix.data.dir");
  return schema;
}

TEST(StaticPrior, CleanFixtureHasNoErrors) {
  ConfSchema schema = FixtureSchema();
  StaticPriorReport report = AnalyzeFixture(&schema, nullptr);
  EXPECT_FALSE(report.HasErrors()) << ReportToText(report);
  EXPECT_TRUE(report.never_read.empty());
}

TEST(StaticPrior, DeletedSchemaParamStillReadIsAnError) {
  // Simulate "schema param deleted but code still reads it": a schema
  // missing fix.encrypt.transfer while fix_node.cc reads it.
  ConfSchema schema;
  ParamSpec spec;
  spec.name = "fix.heartbeat.interval";
  spec.app = "fix";
  spec.test_values = {"1", "2"};
  schema.AddParam(spec);
  StaticPriorReport report = AnalyzeFixture(&schema, nullptr);
  ASSERT_TRUE(report.HasErrors());
  bool found = false;
  for (const DriftFinding& finding : report.errors) {
    if (finding.kind == DriftKind::kReadNotInSchema &&
        finding.subject == "fix.encrypt.transfer") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << ReportToText(report);
}

TEST(StaticPrior, NeverReadSchemaParamIsWarningNotError) {
  ConfSchema schema = FixtureSchema();
  ParamSpec spec;
  spec.name = "fix.ghost.param";
  spec.app = "fix";
  spec.test_values = {"1", "2"};
  schema.AddParam(spec);
  StaticPriorReport report = AnalyzeFixture(&schema, nullptr);
  EXPECT_FALSE(report.HasErrors());
  ASSERT_EQ(report.never_read.size(), 1u);
  EXPECT_EQ(report.never_read[0], "fix.ghost.param");
  EXPECT_TRUE(report.IsNeverRead("fix.ghost.param"));
  EXPECT_EQ(report.PriorityOf("fix.ghost.param"), kPriorityNeverRead);
}

TEST(StaticPrior, UnbracketedConfigReadingConstructorIsDrift) {
  ConfSchema schema = FixtureSchema();
  StaticPriorReport report = AnalyzeFixture(&schema, R"(
FixRogue::FixRogue(const Configuration& conf) {
  conf.GetInt(kFixHandlers, 1);
}
)");
  ASSERT_TRUE(report.HasErrors());
  EXPECT_EQ(report.errors.front().kind, DriftKind::kAnnotationDrift);
  EXPECT_EQ(report.errors.front().subject, "FixRogue::FixRogue");
}

TEST(StaticPrior, ExternalInitMarkerSuppressesDrift) {
  ConfSchema schema = FixtureSchema();
  StaticPriorReport report = AnalyzeFixture(&schema, R"(
// zebralint(external-init): FixRogue is bracketed by its factory
FixRogue::FixRogue(const Configuration& conf) {
  conf.GetInt(kFixHandlers, 1);
}
)");
  EXPECT_FALSE(report.HasErrors()) << ReportToText(report);
}

TEST(StaticPrior, PrioritiesAndSerializationRoundTrip) {
  ConfSchema schema = FixtureSchema();
  StaticPriorReport report = AnalyzeFixture(&schema, nullptr);
  // Wire band: the sink-type spectrum sits on top of the kPriorityWire
  // floor, strictly below the ceiling.
  EXPECT_GE(report.PriorityOf("fix.encrypt.transfer"), kPriorityWire);
  EXPECT_LT(report.PriorityOf("fix.encrypt.transfer"), kPriorityWireCeiling);
  EXPECT_GE(report.PriorityOf("fix.handler.count"), kPriorityLocal);
  EXPECT_LT(report.PriorityOf("fix.handler.count"), kPriorityWire);
  EXPECT_EQ(report.PriorityOf("param.nobody.knows"), kPriorityLocal);

  std::string json = ReportToJson(report);
  EXPECT_NE(json.find("\"fix.encrypt.transfer\""), std::string::npos);
  EXPECT_NE(json.find("\"wire_tainted\": true"), std::string::npos);
  std::string text = ReportToText(report);
  EXPECT_NE(text.find("WIRE-TAINTED"), std::string::npos);
  EXPECT_NE(text.find("fix.handler.count"), std::string::npos);
}

}  // namespace
}  // namespace analysis
}  // namespace zebra
