// Schema/ground-truth consistency: the campaign can only find what the
// schema lets it enumerate. Every seeded het-unsafe parameter must be
// registered with test values, names must be unique, and defaults must parse
// for their declared type.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "src/testkit/full_schema.h"
#include "src/testkit/ground_truth.h"

namespace zebra {
namespace {

bool ParsesAsInt(const std::string& text) {
  if (text.empty()) return false;
  char* end = nullptr;
  std::strtoll(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParsesAsDouble(const std::string& text) {
  if (text.empty()) return false;
  char* end = nullptr;
  std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

TEST(SchemaConsistency, EverySeededUnsafeParamIsRegisteredWithTestValues) {
  const ConfSchema& schema = FullSchema();
  for (const auto& [param, why] : ExpectedUnsafeParams()) {
    const ParamSpec* spec = schema.Find(param);
    ASSERT_NE(spec, nullptr) << param << " (" << why << ")";
    EXPECT_FALSE(spec->test_values.empty()) << param;
    EXPECT_GE(spec->test_values.size(), 2u)
        << param << ": needs at least two values to form a value pair";
  }
}

TEST(SchemaConsistency, ParamNamesAreUnique) {
  std::set<std::string> seen;
  for (const ParamSpec& spec : FullSchema().params()) {
    EXPECT_TRUE(seen.insert(spec.name).second)
        << "duplicate schema entry: " << spec.name;
  }
}

TEST(SchemaConsistency, DefaultsParseForDeclaredType) {
  for (const ParamSpec& spec : FullSchema().params()) {
    SCOPED_TRACE(spec.name);
    switch (spec.type) {
      case ParamType::kBool:
        EXPECT_TRUE(spec.default_value == "true" ||
                    spec.default_value == "false")
            << "bool default: " << spec.default_value;
        break;
      case ParamType::kInt:
        EXPECT_TRUE(ParsesAsInt(spec.default_value))
            << "int default: " << spec.default_value;
        break;
      case ParamType::kDouble:
        EXPECT_TRUE(ParsesAsDouble(spec.default_value))
            << "double default: " << spec.default_value;
        break;
      case ParamType::kEnum:
      case ParamType::kString:
        // Any literal is acceptable, but the default should be one of the
        // advertised test values when those exist for enums.
        if (spec.type == ParamType::kEnum && !spec.test_values.empty()) {
          bool listed = false;
          for (const std::string& value : spec.test_values) {
            listed |= value == spec.default_value;
          }
          EXPECT_TRUE(listed) << "enum default " << spec.default_value
                              << " not among test values";
        }
        break;
    }
  }
}

TEST(SchemaConsistency, EveryParamHasOwningAppAndDescription) {
  for (const ParamSpec& spec : FullSchema().params()) {
    EXPECT_FALSE(spec.app.empty()) << spec.name;
    EXPECT_FALSE(spec.name.empty());
  }
}

}  // namespace
}  // namespace zebra
