// Tests for the fleet cost model (machine-hours accounting).

#include "src/core/fleet_model.h"

#include <gtest/gtest.h>

#include "src/common/error.h"

namespace zebra {
namespace {

TEST(FleetModelTest, SingleSlotIsSequential) {
  FleetEstimate estimate = EstimateFleet({1.0, 2.0, 3.0}, 1, 1);
  EXPECT_DOUBLE_EQ(estimate.total_cpu_seconds, 6.0);
  EXPECT_DOUBLE_EQ(estimate.makespan_seconds, 6.0);
  EXPECT_DOUBLE_EQ(estimate.machine_seconds, 6.0);
  EXPECT_DOUBLE_EQ(estimate.utilization, 1.0);
}

TEST(FleetModelTest, PerfectlyParallelJobs) {
  // Four equal jobs on four slots: makespan = one job.
  FleetEstimate estimate = EstimateFleet({2.0, 2.0, 2.0, 2.0}, 2, 2);
  EXPECT_DOUBLE_EQ(estimate.makespan_seconds, 2.0);
  EXPECT_DOUBLE_EQ(estimate.machine_seconds, 4.0);
  EXPECT_DOUBLE_EQ(estimate.utilization, 1.0);
}

TEST(FleetModelTest, MakespanBoundedByLongestJob) {
  FleetEstimate estimate = EstimateFleet({10.0, 0.1, 0.1, 0.1}, 4, 1);
  EXPECT_DOUBLE_EQ(estimate.makespan_seconds, 10.0);
  EXPECT_LT(estimate.utilization, 0.5);
}

TEST(FleetModelTest, LptBalancesLoads) {
  // Jobs {5,4,3,3,3} on 2 slots: LPT gives {5,3,3}=11? No — LPT places 5, 4,
  // then 3 on the lighter (4->7), 3 on (5->8), 3 on (7->10): makespan 10;
  // optimal is 9 ({5,4} vs {3,3,3}); LPT is within 4/3.
  FleetEstimate estimate = EstimateFleet({5, 4, 3, 3, 3}, 2, 1);
  EXPECT_LE(estimate.makespan_seconds, 12.0);  // 4/3 x optimal(9)
  EXPECT_GE(estimate.makespan_seconds, 9.0);
}

TEST(FleetModelTest, EmptyRunsProduceZeroes) {
  FleetEstimate estimate = EstimateFleet({}, 100, 20);
  EXPECT_DOUBLE_EQ(estimate.makespan_seconds, 0.0);
  EXPECT_DOUBLE_EQ(estimate.total_cpu_seconds, 0.0);
  EXPECT_EQ(estimate.runs, 0);
}

TEST(FleetModelTest, InvalidFleetRejected) {
  EXPECT_THROW(EstimateFleet({1.0}, 0, 20), InternalError);
  EXPECT_THROW(EstimateFleet({1.0}, 100, 0), InternalError);
}

class FleetScalingTest : public ::testing::TestWithParam<int> {};

TEST_P(FleetScalingTest, MoreMachinesNeverIncreaseMakespan) {
  std::vector<double> jobs;
  for (int i = 0; i < 500; ++i) {
    jobs.push_back(0.01 * (1 + i % 7));
  }
  FleetEstimate narrow = EstimateFleet(jobs, 1, GetParam());
  FleetEstimate wide = EstimateFleet(jobs, 10, GetParam());
  EXPECT_LE(wide.makespan_seconds, narrow.makespan_seconds);
  EXPECT_NEAR(wide.total_cpu_seconds, narrow.total_cpu_seconds, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Containers, FleetScalingTest, ::testing::Values(1, 4, 20));

}  // namespace
}  // namespace zebra
