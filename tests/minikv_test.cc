// Tests for the MiniKV substrate: row storage, region location, and the
// thrift compact/framed protocol mechanisms.

#include <gtest/gtest.h>

#include "src/apps/minikv/kv_params.h"
#include "src/apps/minikv/kv_store.h"
#include "src/apps/minikv/thrift_server.h"
#include "src/common/error.h"
#include "src/runtime/cluster.h"

namespace zebra {
namespace {

class MiniKvTest : public ::testing::Test {
 protected:
  Cluster cluster_;
};

TEST_F(MiniKvTest, PutGetRoundTrip) {
  Configuration conf;
  HMaster master(&cluster_, conf);
  HRegionServer rs(&cluster_, &master, conf);
  KvClient client(&cluster_, &master, conf);

  client.CreateTable("t");
  client.Put("t", "r", "v");
  EXPECT_EQ(client.Get("t", "r"), "v");
}

TEST_F(MiniKvTest, MissingRowAndTableFail) {
  Configuration conf;
  HMaster master(&cluster_, conf);
  HRegionServer rs(&cluster_, &master, conf);
  KvClient client(&cluster_, &master, conf);

  client.CreateTable("t");
  EXPECT_THROW(client.Get("t", "missing"), RpcError);
  EXPECT_THROW(client.Get("absent", "r"), RpcError);
}

TEST_F(MiniKvTest, DuplicateTableRejected) {
  Configuration conf;
  HMaster master(&cluster_, conf);
  HRegionServer rs(&cluster_, &master, conf);
  KvClient client(&cluster_, &master, conf);
  client.CreateTable("t");
  EXPECT_THROW(client.CreateTable("t"), RpcError);
}

TEST_F(MiniKvTest, RowsSpreadAcrossRegionServers) {
  Configuration conf;
  HMaster master(&cluster_, conf);
  HRegionServer rs1(&cluster_, &master, conf);
  HRegionServer rs2(&cluster_, &master, conf);
  HRegionServer rs3(&cluster_, &master, conf);
  KvClient client(&cluster_, &master, conf);

  client.CreateTable("t");
  for (int i = 0; i < 30; ++i) {
    client.Put("t", "row" + std::to_string(i), "v");
  }
  EXPECT_EQ(rs1.NumRows() + rs2.NumRows() + rs3.NumRows(), 30);
  EXPECT_GT(rs1.NumRows(), 0);
  EXPECT_GT(rs2.NumRows(), 0);
  EXPECT_GT(rs3.NumRows(), 0);
}

// Thrift round-trips under every matched (compact, framed) combination.
class ThriftMatchedSweep
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(ThriftMatchedSweep, EncodeDecodeRoundTrips) {
  auto [compact, framed] = GetParam();
  std::string message = "createTable demo_table";
  Bytes encoded = ThriftEncode(message, compact, framed);
  EXPECT_EQ(ThriftDecode(encoded, compact, framed), message);
}

TEST_P(ThriftMatchedSweep, AdminTalksToServer) {
  auto [compact, framed] = GetParam();
  Cluster cluster;
  Configuration conf;
  conf.SetBool(kKvThriftCompact, compact);
  conf.SetBool(kKvThriftFramed, framed);
  HMaster master(&cluster, conf);
  HRegionServer rs(&cluster, &master, conf);
  ThriftServer thrift(&cluster, &master, conf);
  ThriftAdmin admin(&thrift, conf);

  admin.CreateTable("t1");
  admin.CreateTable("t2");
  EXPECT_EQ(admin.NumTables(), 2);
}

INSTANTIATE_TEST_SUITE_P(Protocols, ThriftMatchedSweep,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()));

TEST_F(MiniKvTest, CompactMismatchFailsDecode) {
  Bytes compact_msg = ThriftEncode("listTables", /*compact=*/true, /*framed=*/false);
  EXPECT_THROW(ThriftDecode(compact_msg, /*compact=*/false, /*framed=*/false),
               DecodeError);
  Bytes binary_msg = ThriftEncode("listTables", false, false);
  EXPECT_THROW(ThriftDecode(binary_msg, true, false), DecodeError);
}

TEST_F(MiniKvTest, FramedMismatchFailsDecode) {
  Bytes framed_msg = ThriftEncode("listTables", false, /*framed=*/true);
  EXPECT_THROW(ThriftDecode(framed_msg, false, /*framed=*/false), DecodeError);
  Bytes unframed_msg = ThriftEncode("listTables", false, false);
  EXPECT_THROW(ThriftDecode(unframed_msg, false, true), DecodeError);
}

TEST_F(MiniKvTest, AdminServerProtocolMismatchFails) {
  Configuration server_conf;
  server_conf.SetBool(kKvThriftCompact, true);
  HMaster master(&cluster_, server_conf);
  HRegionServer rs(&cluster_, &master, server_conf);
  ThriftServer thrift(&cluster_, &master, server_conf);
  Configuration admin_conf;  // binary protocol
  ThriftAdmin admin(&thrift, admin_conf);

  EXPECT_THROW(admin.CreateTable("t"), DecodeError);
}

TEST_F(MiniKvTest, AdminServerFramingMismatchFails) {
  Configuration server_conf;
  server_conf.SetBool(kKvThriftFramed, true);
  HMaster master(&cluster_, server_conf);
  HRegionServer rs(&cluster_, &master, server_conf);
  ThriftServer thrift(&cluster_, &master, server_conf);
  Configuration admin_conf;  // unframed
  ThriftAdmin admin(&thrift, admin_conf);

  EXPECT_THROW(admin.NumTables(), DecodeError);
}

TEST_F(MiniKvTest, ThriftLongMessagesUseVarintLengths) {
  std::string long_message = "createTable ";
  long_message += std::string(300, 'x');  // length needs 2 varint bytes
  Bytes encoded = ThriftEncode(long_message, /*compact=*/true, /*framed=*/true);
  EXPECT_EQ(ThriftDecode(encoded, true, true), long_message);
}

TEST_F(MiniKvTest, RegionsSplitUnderWriteLoad) {
  Configuration conf;
  conf.SetInt(kKvRegionMaxFilesize, 1073741824);  // 1 GiB -> splits every ~4 rows
  HMaster master(&cluster_, conf);
  HRegionServer rs(&cluster_, &master, conf);
  KvClient client(&cluster_, &master, conf);

  client.CreateTable("hot");
  for (int i = 0; i < 16; ++i) {
    client.Put("hot", "row" + std::to_string(i), "v");
  }
  EXPECT_GT(rs.TotalSplits(), 1);
  EXPECT_GT(rs.NumRegions("hot"), 2);
  EXPECT_EQ(rs.NumRows(), 16) << "splits never lose rows";
}

TEST_F(MiniKvTest, LargerMaxFilesizeSplitsLess) {
  auto splits_with = [this](int64_t max_filesize) {
    Cluster cluster;
    Configuration conf;
    conf.SetInt(kKvRegionMaxFilesize, max_filesize);
    HMaster master(&cluster, conf);
    HRegionServer rs(&cluster, &master, conf);
    KvClient client(&cluster, &master, conf);
    client.CreateTable("t");
    for (int i = 0; i < 30; ++i) {
      client.Put("t", "row" + std::to_string(i), "v");
    }
    return rs.TotalSplits();
  };
  EXPECT_GT(splits_with(1073741824), splits_with(10737418240));
}

TEST_F(MiniKvTest, SplitDecisionsAreServerLocal) {
  // Two RegionServers with *different* max.filesize settings split at
  // different rates — and nothing breaks: the parameter is legitimately
  // per-node (it never crosses the wire).
  Configuration master_conf;
  HMaster master(&cluster_, master_conf);
  Configuration small_conf;
  small_conf.SetInt(kKvRegionMaxFilesize, 1073741824);
  HRegionServer eager(&cluster_, &master, small_conf);
  Configuration large_conf;
  large_conf.SetInt(kKvRegionMaxFilesize, 10737418240);
  HRegionServer lazy(&cluster_, &master, large_conf);
  KvClient client(&cluster_, &master, master_conf);

  client.CreateTable("t");
  for (int i = 0; i < 40; ++i) {
    client.Put("t", "row" + std::to_string(i), "v");
  }
  EXPECT_EQ(eager.NumRows() + lazy.NumRows(), 40);
  EXPECT_GT(eager.NumRows(), 0);
  EXPECT_GT(lazy.NumRows(), 0);
  EXPECT_GT(eager.TotalSplits(), lazy.TotalSplits())
      << "the smaller threshold splits more, harmlessly";
}

TEST_F(MiniKvTest, RestStatusReportsTables) {
  Configuration conf;
  HMaster master(&cluster_, conf);
  HRegionServer rs(&cluster_, &master, conf);
  RESTServer rest(&cluster_, &master, conf);
  KvClient client(&cluster_, &master, conf);

  EXPECT_EQ(rest.Status(), "rest-ok tables=0");
  client.CreateTable("t");
  EXPECT_EQ(rest.Status(), "rest-ok tables=1");
}

TEST_F(MiniKvTest, CreateTableWithoutRegionServersFails) {
  Configuration conf;
  HMaster master(&cluster_, conf);
  KvClient client(&cluster_, &master, conf);
  EXPECT_THROW(client.CreateTable("t"), RpcError);
}

TEST_F(MiniKvTest, UnknownThriftCommandRejected) {
  Configuration conf;
  HMaster master(&cluster_, conf);
  HRegionServer rs(&cluster_, &master, conf);
  ThriftServer thrift(&cluster_, &master, conf);

  Bytes request = ThriftEncode("dropEverything now", false, false);
  EXPECT_THROW(thrift.Handle(request), RpcError);
}

}  // namespace
}  // namespace zebra
