// End-to-end regression: the full campaign over all six applications must
// rediscover the paper's 41 Table 3 parameters exactly, with every extra
// report attributable to a seeded false-positive source or the probabilistic
// extension parameter.

#include <gtest/gtest.h>

#include "src/core/campaign.h"
#include "src/core/fleet_model.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/ground_truth.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

class PipelineE2eTest : public ::testing::Test {
 protected:
  static const CampaignReport& Report() {
    static const CampaignReport* report = [] {
      CampaignOptions options;  // all apps
      Campaign campaign(FullSchema(), FullCorpus(), options);
      return new CampaignReport(campaign.Run());
    }();
    return *report;
  }
};

TEST_F(PipelineE2eTest, FindsAllFortyOneTableThreeParameters) {
  int found = 0;
  for (const auto& [param, why] : ExpectedUnsafeParams()) {
    EXPECT_TRUE(Report().findings.count(param) > 0) << "missed: " << param;
    found += Report().findings.count(param) > 0 ? 1 : 0;
  }
  EXPECT_EQ(found, 41);
}

TEST_F(PipelineE2eTest, EveryExtraReportIsAttributable) {
  for (const auto& [param, finding] : Report().findings) {
    bool expected = IsExpectedUnsafe(param);
    bool known_fp = KnownFalsePositiveSources().count(param) > 0;
    bool probabilistic = ProbabilisticUnsafeParams().count(param) > 0;
    EXPECT_TRUE(expected || known_fp || probabilistic)
        << param << " (witness failure: " << finding.example_failure << ")";
  }
}

TEST_F(PipelineE2eTest, AllSeededFalsePositiveSourcesAreReported) {
  // The FP sources were seeded precisely so the tool reports them (the paper
  // then rejects them by manual analysis); a silent FP source would mean the
  // corpus pattern stopped firing.
  for (const auto& [param, mechanism] : KnownFalsePositiveSources()) {
    EXPECT_TRUE(Report().findings.count(param) > 0)
        << "FP source " << param << " no longer triggers (" << mechanism << ")";
  }
}

TEST_F(PipelineE2eTest, StagedReductionHolsAcrossTheCorpus) {
  EXPECT_GT(Report().TotalOriginal(), 10 * Report().TotalAfterPrerun());
  EXPECT_GT(Report().TotalAfterPrerun(), Report().TotalAfterUncertainty());
  EXPECT_GT(Report().TotalAfterUncertainty(), Report().TotalExecuted());
}

TEST_F(PipelineE2eTest, HypothesisTestingFiltersSomething) {
  EXPECT_GT(Report().filtered_by_hypothesis, 0)
      << "the flaky corpus tests must produce filtered candidates";
  EXPECT_LT(Report().filtered_by_hypothesis, Report().first_trial_candidates);
}

TEST_F(PipelineE2eTest, EveryFindingHasAWitnessAndSignificance) {
  for (const auto& [param, finding] : Report().findings) {
    EXPECT_FALSE(finding.witness_tests.empty()) << param;
    EXPECT_FALSE(finding.example_failure.empty()) << param;
    EXPECT_LT(finding.best_p_value, 1e-4) << param;
    EXPECT_FALSE(finding.owning_app.empty()) << param;
  }
}

TEST_F(PipelineE2eTest, RunDurationsFeedTheFleetModel) {
  ASSERT_EQ(static_cast<int64_t>(Report().run_durations_seconds.size()),
            Report().total_unit_test_runs);
  FleetEstimate fleet = EstimateFleet(Report().run_durations_seconds, 100, 20);
  EXPECT_EQ(fleet.runs, Report().total_unit_test_runs);
  EXPECT_GT(fleet.total_cpu_seconds, 0.0);
  EXPECT_LE(fleet.makespan_seconds, fleet.total_cpu_seconds);
}

TEST_F(PipelineE2eTest, WitnessesPointAtTheRightSubsystems) {
  const auto& findings = Report().findings;
  ASSERT_TRUE(findings.count("dfs.datanode.balance.max.concurrent.moves") > 0);
  EXPECT_TRUE(findings.at("dfs.datanode.balance.max.concurrent.moves")
                  .witness_tests.count("minidfs.TestBalancerCongestion") > 0);
  ASSERT_TRUE(findings.count("mapreduce.shuffle.ssl.enabled") > 0);
  for (const std::string& witness :
       findings.at("mapreduce.shuffle.ssl.enabled").witness_tests) {
    EXPECT_EQ(witness.rfind("minimr.", 0), 0u) << witness;
  }
}

}  // namespace
}  // namespace zebra
