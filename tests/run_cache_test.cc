// Tests for the memoized run cache: keying (exact and trial-wildcard),
// counters, and the end-to-end guarantee that memoization never changes
// campaign results while actually getting hits.

#include "src/testkit/run_cache.h"

#include <gtest/gtest.h>

#include "src/core/campaign.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

TestResult MakeResult(bool passed, const std::string& failure) {
  TestResult result;
  result.passed = passed;
  result.failure = failure;
  return result;
}

TEST(RunCacheTest, ExactKeyRoundTrip) {
  RunCache cache;
  EXPECT_EQ(cache.Lookup("app.Test", "plan-a", 0), nullptr);
  cache.Insert("app.Test", "plan-a", 0, /*trial_insensitive=*/false,
               MakeResult(false, "boom"));

  const TestResult* hit = cache.Lookup("app.Test", "plan-a", 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_FALSE(hit->passed);
  EXPECT_EQ(hit->failure, "boom");

  // A trial-sensitive entry must NOT serve other trials.
  EXPECT_EQ(cache.Lookup("app.Test", "plan-a", 1), nullptr);
  // Nor other plans or tests.
  EXPECT_EQ(cache.Lookup("app.Test", "plan-b", 0), nullptr);
  EXPECT_EQ(cache.Lookup("app.Other", "plan-a", 0), nullptr);

  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 4);
}

TEST(RunCacheTest, TrialInsensitiveEntryServesEveryTrial) {
  RunCache cache;
  cache.Insert("app.Test", "plan", 7, /*trial_insensitive=*/true,
               MakeResult(true, ""));
  for (uint64_t trial : {0u, 1u, 7u, 42u}) {
    const TestResult* hit = cache.Lookup("app.Test", "plan", trial);
    ASSERT_NE(hit, nullptr) << trial;
    EXPECT_TRUE(hit->passed);
  }
  EXPECT_EQ(cache.stats().hits, 4);
}

TEST(RunCacheTest, KeysAreNotAmbiguous) {
  // The separator must prevent (id, plan) concatenation collisions.
  RunCache cache;
  cache.Insert("a", "b.plan", 0, /*trial_insensitive=*/true, MakeResult(true, ""));
  EXPECT_EQ(cache.Lookup("a.b", "plan", 0), nullptr);
  EXPECT_EQ(cache.Lookup("a", "b.plan.extra", 0), nullptr);
}

TEST(RunCacheTest, StatsTrackEntriesAndHitRate) {
  RunCache cache;
  cache.Lookup("x", "p", 0);  // miss
  cache.Insert("x", "p", 0, /*trial_insensitive=*/false, MakeResult(true, ""));
  cache.Lookup("x", "p", 0);  // hit
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 0.5);
}

TEST(RunCacheTest, CampaignResultsIdenticalWithCacheEnabled) {
  CampaignOptions plain_options;
  plain_options.apps = {"minikv", "apptools"};
  Campaign plain(FullSchema(), FullCorpus(), plain_options);
  CampaignReport expected = plain.Run();
  EXPECT_EQ(expected.cache_hits, 0);
  EXPECT_EQ(expected.cache_misses, 0);

  CampaignOptions cached_options = plain_options;
  cached_options.enable_run_cache = true;
  Campaign cached(FullSchema(), FullCorpus(), cached_options);
  CampaignReport report = cached.Run();

  // Table-5 accounting and findings are byte-for-byte the no-cache numbers.
  EXPECT_EQ(report.TotalExecuted(), expected.TotalExecuted());
  EXPECT_EQ(report.total_unit_test_runs, expected.total_unit_test_runs);
  EXPECT_EQ(report.first_trial_candidates, expected.first_trial_candidates);
  EXPECT_EQ(report.filtered_by_hypothesis, expected.filtered_by_hypothesis);
  EXPECT_EQ(report.runs_to_first_detection, expected.runs_to_first_detection);
  ASSERT_EQ(report.findings.size(), expected.findings.size());
  for (const auto& [param, finding] : expected.findings) {
    ASSERT_TRUE(report.findings.count(param) > 0) << param;
    EXPECT_EQ(report.findings.at(param).witness_tests, finding.witness_tests);
    EXPECT_EQ(report.findings.at(param).best_p_value, finding.best_p_value);
  }
  for (const auto& [app, counts] : expected.per_app) {
    EXPECT_EQ(report.per_app.at(app).after_prerun, counts.after_prerun) << app;
    EXPECT_EQ(report.per_app.at(app).executed_runs, counts.executed_runs) << app;
  }

  // ...but the cache did real work.
  EXPECT_GT(report.cache_hits, 0);
  EXPECT_GT(report.cache_misses, 0);
  // Cache hits skip execution, so fewer durations are recorded than in the
  // uncached run (which records one per real execution, pre-runs included).
  EXPECT_LT(report.run_durations_seconds.size(),
            expected.run_durations_seconds.size());
}

TEST(RunCacheTest, ScopedInstallRestoresPrevious) {
  ASSERT_EQ(GlobalRunCache(), nullptr);
  RunCache outer;
  {
    ScopedRunCache install_outer(&outer);
    EXPECT_EQ(GlobalRunCache(), &outer);
    RunCache inner;
    {
      ScopedRunCache install_inner(&inner);
      EXPECT_EQ(GlobalRunCache(), &inner);
    }
    EXPECT_EQ(GlobalRunCache(), &outer);
  }
  EXPECT_EQ(GlobalRunCache(), nullptr);
}

}  // namespace
}  // namespace zebra
