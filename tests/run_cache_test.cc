// Tests for the memoized run cache: keying (exact and trial-wildcard),
// counters, the observational-equivalence layer's serving rules, LRU budget
// enforcement, persistence, and the end-to-end guarantee that memoization
// never changes campaign results while actually getting hits.

#include "src/testkit/run_cache.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/conf/plan_equiv.h"
#include "src/core/campaign.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

TestResult MakeResult(bool passed, const std::string& failure) {
  TestResult result;
  result.passed = passed;
  result.failure = failure;
  return result;
}

TestPlan SingleParamPlan(const std::string& param, const std::string& value) {
  TestPlan plan;
  ParamPlan p;
  p.param = param;
  p.assigner = ValueAssigner::UniformGroup("Server", value, "other");
  plan.Add(std::move(p));
  return plan;
}

TEST(RunCacheTest, ExactKeyRoundTrip) {
  RunCache cache;
  EXPECT_EQ(cache.Lookup("app.Test", "plan-a", 0), nullptr);
  cache.Insert("app.Test", "plan-a", 0, /*trial_insensitive=*/false,
               MakeResult(false, "boom"));

  const TestResult* hit = cache.Lookup("app.Test", "plan-a", 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_FALSE(hit->passed);
  EXPECT_EQ(hit->failure, "boom");

  // A trial-sensitive entry must NOT serve other trials.
  EXPECT_EQ(cache.Lookup("app.Test", "plan-a", 1), nullptr);
  // Nor other plans or tests.
  EXPECT_EQ(cache.Lookup("app.Test", "plan-b", 0), nullptr);
  EXPECT_EQ(cache.Lookup("app.Other", "plan-a", 0), nullptr);

  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 4);
}

TEST(RunCacheTest, TrialInsensitiveEntryServesEveryTrial) {
  RunCache cache;
  cache.Insert("app.Test", "plan", 7, /*trial_insensitive=*/true,
               MakeResult(true, ""));
  for (uint64_t trial : {0u, 1u, 7u, 42u}) {
    const TestResult* hit = cache.Lookup("app.Test", "plan", trial);
    ASSERT_NE(hit, nullptr) << trial;
    EXPECT_TRUE(hit->passed);
  }
  EXPECT_EQ(cache.stats().hits, 4);
}

TEST(RunCacheTest, KeysAreNotAmbiguous) {
  // The separator must prevent (id, plan) concatenation collisions.
  RunCache cache;
  cache.Insert("a", "b.plan", 0, /*trial_insensitive=*/true, MakeResult(true, ""));
  EXPECT_EQ(cache.Lookup("a.b", "plan", 0), nullptr);
  EXPECT_EQ(cache.Lookup("a", "b.plan.extra", 0), nullptr);
}

TEST(RunCacheTest, HashedKeysMatchLegacyDigestsOverFullCorpus) {
  // The hot path folds key components into a 128-bit digest without ever
  // building the legacy concatenated string; this proves the fold is
  // byte-for-byte the digest of that string for every unit test in the full
  // corpus, every plan the schema can produce for it, and all four key
  // shapes. FNV chains over concatenation, so equality here means hashed
  // and legacy lookups are interchangeable everywhere.
  size_t checked = 0;
  for (const UnitTestDef& test_def : FullCorpus().tests()) {
    const UnitTestDef* test = &test_def;
    for (const ParamSpec& param : FullSchema().params()) {
      TestPlan plan = SingleParamPlan(param.name, param.default_value);
      const std::string& plan_text = plan.Fingerprint();
      for (uint64_t trial : {uint64_t{0}, uint64_t{7}, uint64_t{123456789}}) {
        EXPECT_EQ(RunCache::ExactRunKey(test->id, plan_text, trial),
                  HashFnv128(RunCache::ExactKey(test->id, plan_text, trial)))
            << test->id << " / " << plan_text << " / " << trial;
      }
      EXPECT_EQ(RunCache::WildcardRunKey(test->id, plan_text),
                HashFnv128(RunCache::WildcardKey(test->id, plan_text)));
      EXPECT_EQ(RunCache::CanonicalRunKey(test->id, plan_text),
                HashFnv128(RunCache::CanonicalKey(test->id, plan_text)));
      EXPECT_EQ(RunCache::TraceRunKey(test->id, "get:" + param.name),
                HashFnv128(RunCache::TraceKey(test->id, "get:" + param.name)));

      // The persistence gate inverts the same equivalence: re-deriving the
      // digest from the legacy string must reproduce the component fold.
      Digest128 derived{0, 0};
      ASSERT_TRUE(RunCache::DeriveComponentDigest(
          RunCache::ExactKey(test->id, plan_text, 7), &derived));
      EXPECT_EQ(derived, RunCache::ExactRunKey(test->id, plan_text, 7));
      ASSERT_TRUE(RunCache::DeriveComponentDigest(
          RunCache::TraceKey(test->id, "get:" + param.name), &derived));
      EXPECT_EQ(derived, RunCache::TraceRunKey(test->id, "get:" + param.name));
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);  // the corpus x schema sweep actually ran
}

TEST(RunCacheTest, ForcedCollisionIsRejectedNeverServedWrong) {
  // Two distinct legacy keys digesting to the same 128-bit key: the insert
  // path compares the stored legacy string and must detect the collision
  // (counted in key_collisions) instead of aliasing two different runs.
  // Neither logical key may be served through the ambiguous digest, so the
  // stored entry is evicted too — both re-execute rather than risk a wrong
  // serve.
  RunCache cache;
  Digest128 key{0x1234567890abcdefULL, 0xfedcba0987654321ULL};
  EXPECT_TRUE(cache.InsertAliasForTesting(key, "legacy-a", MakeResult(true, "")));
  EXPECT_EQ(cache.stats().key_collisions, 0);
  EXPECT_EQ(cache.stats().entries, 1);

  EXPECT_FALSE(
      cache.InsertAliasForTesting(key, "legacy-b", MakeResult(false, "boom")));
  EXPECT_EQ(cache.stats().key_collisions, 1);
  EXPECT_EQ(cache.stats().entries, 0);

  // A duplicate insert under one legacy key is first-result-wins, not a
  // collision: the entry stays and the counter does not move.
  EXPECT_TRUE(cache.InsertAliasForTesting(key, "legacy-a", MakeResult(true, "")));
  EXPECT_FALSE(cache.InsertAliasForTesting(key, "legacy-a", MakeResult(true, "")));
  EXPECT_EQ(cache.stats().key_collisions, 1);
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(RunCacheTest, StatsTrackEntriesAndHitRate) {
  RunCache cache;
  cache.Lookup("x", "p", 0);  // miss
  cache.Insert("x", "p", 0, /*trial_insensitive=*/false, MakeResult(true, ""));
  cache.Lookup("x", "p", 0);  // hit
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 0.5);
}

TEST(RunCacheTest, CampaignResultsIdenticalWithCacheEnabled) {
  CampaignOptions plain_options;
  plain_options.apps = {"minikv", "apptools"};
  Campaign plain(FullSchema(), FullCorpus(), plain_options);
  CampaignReport expected = plain.Run();
  EXPECT_EQ(expected.cache_hits, 0);
  EXPECT_EQ(expected.cache_misses, 0);

  CampaignOptions cached_options = plain_options;
  cached_options.enable_run_cache = true;
  Campaign cached(FullSchema(), FullCorpus(), cached_options);
  CampaignReport report = cached.Run();

  // Table-5 accounting and findings are byte-for-byte the no-cache numbers.
  EXPECT_EQ(report.TotalExecuted(), expected.TotalExecuted());
  EXPECT_EQ(report.total_unit_test_runs, expected.total_unit_test_runs);
  EXPECT_EQ(report.first_trial_candidates, expected.first_trial_candidates);
  EXPECT_EQ(report.filtered_by_hypothesis, expected.filtered_by_hypothesis);
  EXPECT_EQ(report.runs_to_first_detection, expected.runs_to_first_detection);
  ASSERT_EQ(report.findings.size(), expected.findings.size());
  for (const auto& [param, finding] : expected.findings) {
    ASSERT_TRUE(report.findings.count(param) > 0) << param;
    EXPECT_EQ(report.findings.at(param).witness_tests, finding.witness_tests);
    EXPECT_EQ(report.findings.at(param).best_p_value, finding.best_p_value);
  }
  for (const auto& [app, counts] : expected.per_app) {
    EXPECT_EQ(report.per_app.at(app).after_prerun, counts.after_prerun) << app;
    EXPECT_EQ(report.per_app.at(app).executed_runs, counts.executed_runs) << app;
  }

  // ...but the cache did real work.
  EXPECT_GT(report.cache_hits, 0);
  EXPECT_GT(report.cache_misses, 0);
  // Cache hits skip execution, so fewer durations are recorded than in the
  // uncached run (which records one per real execution, pre-runs included).
  EXPECT_LT(report.run_durations_seconds.size(),
            expected.run_durations_seconds.size());
}

TEST(RunCacheTest, EquivLayerServesAcrossPlansAndSurvivesRoundTrip) {
  // Pre-run promise: Server#0 reads only a.read.
  SessionReport prerun;
  prerun.trace_elements.insert(TraceReadElement("Server", 0, "a.read", nullptr));
  ReadSurface surface(prerun);
  ASSERT_TRUE(surface.usable());

  // The baseline execution: empty plan, observed exactly the promise.
  const TestPlan baseline;
  const std::string baseline_fp = baseline.Fingerprint();
  const std::string observed = TraceReadElement("Server", 0, "a.read", nullptr);

  RunCache cache;
  EquivQuery baseline_query;
  baseline_query.surface = &surface;
  baseline_query.plan = &baseline;
  EXPECT_EQ(cache.Lookup("t", baseline_fp, 0, &baseline_query), nullptr);
  cache.Insert("t", baseline_fp, 0, /*trial_insensitive=*/true,
               MakeResult(true, ""), &baseline_query, &observed);

  // A plan flipping a parameter no conf reads is observationally the
  // baseline: same predicted trace, so the stored run serves it.
  const TestPlan unread = SingleParamPlan("b.unread", "42");
  EquivQuery unread_query;
  unread_query.surface = &surface;
  unread_query.plan = &unread;
  const TestResult* hit = cache.Lookup("t", unread.Fingerprint(), 5, &unread_query);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->passed);
  EXPECT_EQ(cache.stats().equiv_hits, 1);
  EXPECT_GT(cache.stats().canonicalized_plans, 0);
  EXPECT_EQ(cache.stats().mispredictions, 0);

  // ...while a plan that overrides the promised read is a different
  // execution and must miss.
  const TestPlan divergent = SingleParamPlan("a.read", "7");
  EquivQuery divergent_query;
  divergent_query.surface = &surface;
  divergent_query.plan = &divergent;
  EXPECT_EQ(cache.Lookup("t", divergent.Fingerprint(), 0, &divergent_query), nullptr);

  // Persistence round-trips the equivalence indexes: after save + load into
  // a fresh cache, the cross-plan serve still works.
  const std::string path = ::testing::TempDir() + "/run_cache_roundtrip.zc";
  ASSERT_TRUE(cache.SaveToFile(path));
  RunCache reloaded;
  ASSERT_TRUE(reloaded.LoadFromFile(path));
  EXPECT_EQ(reloaded.stats().entries, cache.stats().entries);
  std::remove(path.c_str());

  ASSERT_NE(reloaded.Lookup("t", baseline_fp, 3, nullptr), nullptr);  // wildcard
  EquivQuery reloaded_query;
  reloaded_query.surface = &surface;
  reloaded_query.plan = &unread;
  ASSERT_NE(reloaded.Lookup("t", unread.Fingerprint(), 5, &reloaded_query), nullptr);
  EXPECT_EQ(reloaded.stats().equiv_hits, 1);
}

TEST(RunCacheTest, EquivLayerServesEarlyStoppedRestriction) {
  // The stored failing run stopped at its first read — its observed trace is
  // a strict subset of any full prediction, so only restriction matching can
  // serve it. A plan agreeing on that read reproduces the failure.
  SessionReport prerun;
  prerun.trace_elements.insert(TraceReadElement("Server", 0, "a.read", nullptr));
  prerun.trace_elements.insert(TraceReadElement("Server", 0, "b.read", nullptr));
  ReadSurface surface(prerun);

  std::string assigned = "7";
  const TestPlan first = SingleParamPlan("a.read", assigned);
  const std::string truncated = TraceReadElement("Server", 0, "a.read", &assigned);
  RunCache cache;
  EquivQuery first_query;
  first_query.surface = &surface;
  first_query.plan = &first;
  EXPECT_EQ(cache.Lookup("t", first.Fingerprint(), 0, &first_query), nullptr);
  // Observed != predicted (the run never reached b.read): counted as a
  // misprediction at insert, indexed by its truthful observed trace anyway.
  cache.Insert("t", first.Fingerprint(), 0, /*trial_insensitive=*/true,
               MakeResult(false, "died at a.read"), &first_query, &truncated);
  EXPECT_EQ(cache.stats().mispredictions, 1);

  // Same a.read assignment pooled with an unread parameter: agrees on every
  // value the stored run actually observed.
  TestPlan pooled = SingleParamPlan("a.read", assigned);
  pooled.Add(SingleParamPlan("c.unread", "1").params()[0]);
  EquivQuery pooled_query;
  pooled_query.surface = &surface;
  pooled_query.plan = &pooled;
  const TestResult* hit = cache.Lookup("t", pooled.Fingerprint(), 9, &pooled_query);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->failure, "died at a.read");
  EXPECT_EQ(cache.stats().equiv_hits, 1);

  // A plan serving a different value at that read must not match.
  const TestPlan different = SingleParamPlan("a.read", "8");
  EquivQuery different_query;
  different_query.surface = &surface;
  different_query.plan = &different;
  EXPECT_EQ(cache.Lookup("t", different.Fingerprint(), 0, &different_query), nullptr);

  // Restriction matching is the one equivalence path with out-of-band state
  // (the per-test trace registry); a reloaded cache must rebuild it. The
  // canonical index was skipped for this entry (misprediction), so this
  // serve can only come from the rebuilt registry.
  const std::string path = ::testing::TempDir() + "/run_cache_restriction.zc";
  ASSERT_TRUE(cache.SaveToFile(path));
  RunCache reloaded;
  ASSERT_TRUE(reloaded.LoadFromFile(path));
  std::remove(path.c_str());
  EquivQuery reloaded_query;
  reloaded_query.surface = &surface;
  reloaded_query.plan = &pooled;
  const TestResult* reloaded_hit =
      reloaded.Lookup("t", pooled.Fingerprint(), 9, &reloaded_query);
  ASSERT_NE(reloaded_hit, nullptr);
  EXPECT_EQ(reloaded_hit->failure, "died at a.read");
}

TEST(RunCacheTest, TrialSensitiveRunsAreNeverSharedAcrossPlans) {
  // A run that consumed the per-trial RNG is only valid for its exact
  // (plan, trial): the equivalence layer must never index it.
  SessionReport prerun;
  prerun.trace_elements.insert(TraceReadElement("Server", 0, "a.read", nullptr));
  ReadSurface surface(prerun);

  const TestPlan baseline;
  const std::string observed = TraceReadElement("Server", 0, "a.read", nullptr);
  RunCache cache;
  EquivQuery query;
  query.surface = &surface;
  query.plan = &baseline;
  EXPECT_EQ(cache.Lookup("t", baseline.Fingerprint(), 0, &query), nullptr);
  cache.Insert("t", baseline.Fingerprint(), 0, /*trial_insensitive=*/false,
               MakeResult(true, ""), &query, &observed);

  const TestPlan unread = SingleParamPlan("b.unread", "42");
  EquivQuery unread_query;
  unread_query.surface = &surface;
  unread_query.plan = &unread;
  EXPECT_EQ(cache.Lookup("t", unread.Fingerprint(), 0, &unread_query), nullptr);
  EXPECT_EQ(cache.Lookup("t", baseline.Fingerprint(), 1, nullptr), nullptr);
  EXPECT_EQ(cache.stats().equiv_hits, 0);
}

TEST(RunCacheTest, LruBudgetEvictsOldestAndCounts) {
  RunCache cache(RunCache::Limits{/*max_entries=*/2, /*max_bytes=*/0});
  cache.Insert("t", "p1", 0, /*trial_insensitive=*/false, MakeResult(true, ""));
  cache.Insert("t", "p2", 0, /*trial_insensitive=*/false, MakeResult(true, ""));
  ASSERT_NE(cache.Lookup("t", "p1", 0), nullptr);  // p1 now most recent
  cache.Insert("t", "p3", 0, /*trial_insensitive=*/false, MakeResult(true, ""));

  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_NE(cache.Lookup("t", "p1", 0), nullptr);  // kept (recently used)
  EXPECT_NE(cache.Lookup("t", "p3", 0), nullptr);  // kept (newest)
  EXPECT_EQ(cache.Lookup("t", "p2", 0), nullptr);  // evicted
}

TEST(RunCacheTest, CacheBudgetNeverChangesFindings) {
  CampaignOptions plain_options;
  plain_options.apps = {"minikv", "apptools"};
  Campaign plain(FullSchema(), FullCorpus(), plain_options);
  CampaignReport expected = plain.Run();

  // A budget small enough to evict constantly: hits become re-executions,
  // findings and stage counts must not move.
  CampaignOptions tight_options = plain_options;
  tight_options.enable_run_cache = true;
  tight_options.enable_equiv_cache = true;
  tight_options.cache_max_entries = 8;
  Campaign tight(FullSchema(), FullCorpus(), tight_options);
  CampaignReport report = tight.Run();

  EXPECT_GT(report.cache_evictions, 0);
  EXPECT_EQ(report.total_unit_test_runs, expected.total_unit_test_runs);
  EXPECT_EQ(report.runs_to_first_detection, expected.runs_to_first_detection);
  ASSERT_EQ(report.findings.size(), expected.findings.size());
  for (const auto& [param, finding] : expected.findings) {
    ASSERT_TRUE(report.findings.count(param) > 0) << param;
    EXPECT_EQ(report.findings.at(param).witness_tests, finding.witness_tests);
    EXPECT_EQ(report.findings.at(param).best_p_value, finding.best_p_value);
  }
  for (const auto& [app, counts] : expected.per_app) {
    EXPECT_EQ(report.per_app.at(app).executed_runs, counts.executed_runs) << app;
  }
}

TEST(RunCacheTest, SaveLoadRejectsCorruptFile) {
  const std::string path = ::testing::TempDir() + "/run_cache_corrupt.zc";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a cache file\n", f);
    std::fclose(f);
  }
  RunCache cache;
  cache.Insert("t", "p", 0, /*trial_insensitive=*/false, MakeResult(true, ""));
  EXPECT_FALSE(cache.LoadFromFile(path));
  // A failed load leaves the cache empty, never half-loaded — and counts a
  // load failure (the campaign surfaces it as cache_load_failures).
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.Lookup("t", "p", 0), nullptr);
  EXPECT_EQ(cache.stats().load_failures, 1);
  std::remove(path.c_str());
}

TEST(RunCacheTest, LoadRejectsTruncatedRealFile) {
  // A genuine save, torn mid-write (crash, disk full): the trailing
  // checksum is gone, so the load must reject the file and start cold
  // rather than trust a half-written cache.
  const std::string path = ::testing::TempDir() + "/run_cache_torn.zc";
  RunCache cache;
  cache.Insert("alpha", "plan-a", 0, /*trial_insensitive=*/true,
               MakeResult(true, ""));
  cache.Insert("beta", "plan-b", 1, /*trial_insensitive=*/false,
               MakeResult(false, "boom"));
  ASSERT_TRUE(cache.SaveToFile(path));

  std::string full;
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    full = buffer.str();
  }
  ASSERT_GT(full.size(), 40u);
  {
    std::ofstream out(path, std::ios::trunc);
    out << full.substr(0, full.size() - 30);
  }

  RunCache reloaded;
  EXPECT_FALSE(reloaded.LoadFromFile(path));
  EXPECT_EQ(reloaded.stats().entries, 0);
  EXPECT_EQ(reloaded.stats().load_failures, 1);
  std::remove(path.c_str());
}

TEST(RunCacheTest, LoadRejectsBitFlippedFileByChecksum) {
  // Same length, one byte flipped inside an entry: only the whole-file
  // checksum can catch this.
  const std::string path = ::testing::TempDir() + "/run_cache_bitflip.zc";
  RunCache cache;
  cache.Insert("alpha", "plan-a", 0, /*trial_insensitive=*/true,
               MakeResult(true, "xyzzy-payload"));
  ASSERT_TRUE(cache.SaveToFile(path));

  std::string full;
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    full = buffer.str();
  }
  size_t position = full.find("plan-a");
  ASSERT_NE(position, std::string::npos);
  full[position] = 'q';
  {
    std::ofstream out(path, std::ios::trunc);
    out << full;
  }

  RunCache reloaded;
  EXPECT_FALSE(reloaded.LoadFromFile(path));
  EXPECT_EQ(reloaded.stats().entries, 0);
  EXPECT_EQ(reloaded.stats().load_failures, 1);
  std::remove(path.c_str());
}

TEST(RunCacheTest, MissingFileIsColdStartNotFailure) {
  const std::string path = ::testing::TempDir() + "/run_cache_missing.zc";
  std::remove(path.c_str());
  RunCache cache;
  EXPECT_FALSE(cache.LoadFromFile(path));
  EXPECT_EQ(cache.stats().load_failures, 0);
}

TEST(RunCacheTest, ScopedInstallRestoresPrevious) {
  ASSERT_EQ(GlobalRunCache(), nullptr);
  RunCache outer;
  {
    ScopedRunCache install_outer(&outer);
    EXPECT_EQ(GlobalRunCache(), &outer);
    RunCache inner;
    {
      ScopedRunCache install_inner(&inner);
      EXPECT_EQ(GlobalRunCache(), &inner);
    }
    EXPECT_EQ(GlobalRunCache(), &outer);
  }
  EXPECT_EQ(GlobalRunCache(), nullptr);
}

}  // namespace
}  // namespace zebra
