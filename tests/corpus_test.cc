// Tests for the unit-test corpus itself: every test must pass under its
// original (homogeneous) configuration, flaky tests must actually be flaky,
// and the pre-run reports must expose the structure the generator relies on.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/testkit/ground_truth.h"
#include "src/testkit/test_execution.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

bool IsFlakyTest(const std::string& id) {
  return id.find("Flaky") != std::string::npos;
}

TEST(CorpusTest, RegistryCoversSixApps) {
  auto counts = FullCorpus().CountsByApp();
  EXPECT_EQ(counts.size(), 6u);
  EXPECT_GT(counts.at("minidfs"), 20);
  EXPECT_GT(counts.at("minimr"), 8);
  EXPECT_GT(counts.at("miniyarn"), 7);
  EXPECT_GT(counts.at("ministream"), 5);
  EXPECT_GT(counts.at("minikv"), 5);
  EXPECT_GT(counts.at("apptools"), 3);
}

TEST(CorpusTest, IdsAreUniqueAndPrefixed) {
  std::set<std::string> ids;
  for (const UnitTestDef& test : FullCorpus().tests()) {
    EXPECT_TRUE(ids.insert(test.id).second) << "duplicate id " << test.id;
    EXPECT_EQ(test.id.rfind(test.app + ".", 0), 0u) << test.id;
  }
}

// Every deterministic corpus test passes with its original configuration.
class CorpusPassesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusPassesTest, PassesWithOriginalConfiguration) {
  const UnitTestDef* test = FullCorpus().Find(GetParam());
  ASSERT_NE(test, nullptr);
  if (IsFlakyTest(test->id)) {
    GTEST_SKIP() << "flaky by design; covered by FlakyTestsAreFlaky";
  }
  TestResult result = RunUnitTest(*test, TestPlan{}, /*trial=*/0);
  EXPECT_TRUE(result.passed) << result.failure;
}

std::vector<std::string> AllCorpusIds() {
  std::vector<std::string> ids;
  for (const UnitTestDef& test : FullCorpus().tests()) {
    ids.push_back(test.id);
  }
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllTests, CorpusPassesTest, ::testing::ValuesIn(AllCorpusIds()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(CorpusTest, FlakyTestsAreFlaky) {
  for (const UnitTestDef& test : FullCorpus().tests()) {
    if (!IsFlakyTest(test.id)) {
      continue;
    }
    int failures = 0;
    for (uint64_t trial = 0; trial < 40; ++trial) {
      if (!RunUnitTest(test, TestPlan{}, trial).passed) {
        ++failures;
      }
    }
    EXPECT_GT(failures, 0) << test.id << " never failed in 40 trials";
    EXPECT_LT(failures, 40) << test.id << " always failed in 40 trials";
  }
}

TEST(CorpusTest, SameTrialIsDeterministic) {
  for (const UnitTestDef& test : FullCorpus().tests()) {
    if (!IsFlakyTest(test.id)) {
      continue;
    }
    TestResult a = RunUnitTest(test, TestPlan{}, 7);
    TestResult b = RunUnitTest(test, TestPlan{}, 7);
    EXPECT_EQ(a.passed, b.passed) << test.id;
  }
}

TEST(CorpusTest, NoNodeTestsReportNoNodes) {
  for (const UnitTestDef& test : FullCorpus().tests()) {
    TestResult result = RunUnitTest(test, TestPlan{}, 0);
    bool expects_nodes = test.id.find("NoNodes") == std::string::npos;
    EXPECT_EQ(result.report.StartedAnyNode(), expects_nodes) << test.id;
  }
}

TEST(CorpusTest, NodeTestsShareConfigurationObjects) {
  // §6.1: sharing occurs in the overwhelming majority of tests that involve
  // configuration usage and start nodes.
  int with_nodes = 0;
  int with_sharing = 0;
  for (const UnitTestDef& test : FullCorpus().tests()) {
    TestResult result = RunUnitTest(test, TestPlan{}, 0);
    if (result.report.StartedAnyNode()) {
      ++with_nodes;
      if (result.report.conf_sharing_detected) {
        ++with_sharing;
      }
    }
  }
  EXPECT_GT(with_nodes, 0);
  EXPECT_GE(with_sharing * 100, with_nodes * 85)
      << "at least ~85% of node tests share conf objects (paper: 88.5-100%)";
}

TEST(CorpusTest, DfsClusterTestRecordsExpectedStructure) {
  const UnitTestDef* test = FullCorpus().Find("minidfs.TestWriteReadSmallFile");
  ASSERT_NE(test, nullptr);
  TestResult result = RunUnitTest(*test, TestPlan{}, 0);
  ASSERT_TRUE(result.passed) << result.failure;
  EXPECT_EQ(result.report.node_counts.at("NameNode"), 1);
  EXPECT_EQ(result.report.node_counts.at("DataNode"), 2);
  // The data-path parameters are read by both the client and the DataNodes.
  EXPECT_TRUE(result.report.ParamsReadBy("DataNode").count("dfs.checksum.type") > 0);
  EXPECT_TRUE(result.report.ParamsReadBy("Client").count("dfs.checksum.type") > 0);
  // The NameNode reads its liveness parameters.
  EXPECT_TRUE(result.report.ParamsReadBy("NameNode")
                  .count("dfs.namenode.heartbeat.recheck-interval") > 0);
  EXPECT_TRUE(result.report.conf_sharing_detected);
}

TEST(CorpusTest, FlinkStyleInlineInitStillMapsTaskManagers) {
  const UnitTestDef* test = FullCorpus().Find("ministream.TestDataExchange");
  ASSERT_NE(test, nullptr);
  TestResult result = RunUnitTest(*test, TestPlan{}, 0);
  ASSERT_TRUE(result.passed) << result.failure;
  EXPECT_EQ(result.report.node_counts.at("TaskManager"), 2);
  EXPECT_TRUE(result.report.ParamsReadBy("TaskManager")
                  .count("taskmanager.data.ssl.enabled") > 0);
}

TEST(CorpusTest, GroundTruthParamsAreReadSomewhere) {
  // Every seeded-unsafe parameter must be read by at least one entity in at
  // least one corpus test — otherwise the pipeline could never find it.
  std::set<std::string> read_params;
  for (const UnitTestDef& test : FullCorpus().tests()) {
    TestResult result = RunUnitTest(test, TestPlan{}, 0);
    for (const std::string& param : result.report.AllParamsRead()) {
      read_params.insert(param);
    }
  }
  for (const auto& [param, why] : ExpectedUnsafeParams()) {
    EXPECT_TRUE(read_params.count(param) > 0) << "never read: " << param;
  }
}

}  // namespace
}  // namespace zebra
