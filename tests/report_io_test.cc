// Tests for report serialization and shard merging.

#include "src/core/report_io.h"

#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/common/strings.h"

namespace zebra {
namespace {

CampaignReport SampleReport(const std::string& app) {
  CampaignReport report;
  AppStageCounts counts;
  counts.original = 5000;
  counts.after_prerun = 400;
  counts.after_uncertainty = 390;
  counts.executed_runs = 120;
  counts.tests_total = 9;
  counts.tests_with_nodes = 7;
  report.per_app[app] = counts;

  ParamFinding finding;
  finding.param = app + ".some.param";
  finding.owning_app = app;
  finding.best_p_value = 5.4e-5;
  finding.witness_tests = {app + ".TestA", app + ".TestB"};
  finding.example_failure = "line one\nline two = with equals";
  report.findings[finding.param] = finding;

  report.first_trial_candidates = 7;
  report.filtered_by_hypothesis = 2;
  report.total_unit_test_runs = 121;
  report.wall_seconds = 0.25;
  report.run_durations_seconds.assign(121, 0.002);
  return report;
}

TEST(ReportIoTest, RoundTripPreservesEverything) {
  CampaignReport original = SampleReport("minikv");
  CampaignReport restored = DeserializeReport(SerializeReport(original));

  const AppStageCounts& counts = restored.per_app.at("minikv");
  EXPECT_EQ(counts.original, 5000);
  EXPECT_EQ(counts.after_prerun, 400);
  EXPECT_EQ(counts.after_uncertainty, 390);
  EXPECT_EQ(counts.executed_runs, 120);
  EXPECT_EQ(counts.tests_total, 9);
  EXPECT_EQ(counts.tests_with_nodes, 7);

  const ParamFinding& finding = restored.findings.at("minikv.some.param");
  EXPECT_EQ(finding.owning_app, "minikv");
  EXPECT_NEAR(finding.best_p_value, 5.4e-5, 1e-9);
  EXPECT_EQ(finding.witness_tests.size(), 2u);
  EXPECT_EQ(finding.example_failure, "line one\nline two = with equals")
      << "newlines and equals signs survive escaping";

  EXPECT_EQ(restored.first_trial_candidates, 7);
  EXPECT_EQ(restored.filtered_by_hypothesis, 2);
  EXPECT_EQ(restored.total_unit_test_runs, 121);
  EXPECT_EQ(restored.run_durations_seconds.size(), 121u);
}

TEST(ReportIoTest, EmptyReportRoundTrips) {
  CampaignReport restored = DeserializeReport(SerializeReport(CampaignReport{}));
  EXPECT_TRUE(restored.per_app.empty());
  EXPECT_TRUE(restored.findings.empty());
  EXPECT_EQ(restored.total_unit_test_runs, 0);
}

TEST(ReportIoTest, MalformedTextRejected) {
  EXPECT_THROW(DeserializeReport("apps = minikv\n"), Error)
      << "announced app without its counts";
  EXPECT_THROW(DeserializeReport("not properties at all"), Error);
}

TEST(ReportIoTest, MergeDisjointShards) {
  CampaignReport merged =
      MergeReports({SampleReport("minikv"), SampleReport("ministream")});
  EXPECT_EQ(merged.per_app.size(), 2u);
  EXPECT_EQ(merged.findings.size(), 2u);
  EXPECT_EQ(merged.first_trial_candidates, 14);
  EXPECT_EQ(merged.total_unit_test_runs, 242);
  EXPECT_EQ(merged.run_durations_seconds.size(), 242u);
}

TEST(ReportIoTest, MergeUnionsWitnessesForSharedParams) {
  CampaignReport a = SampleReport("minikv");
  CampaignReport b = SampleReport("ministream");
  // The same (shared-library) parameter found in both shards.
  ParamFinding shared;
  shared.param = "hadoop.rpc.protection";
  shared.owning_app = "appcommon";
  shared.best_p_value = 1e-5;
  shared.witness_tests = {"minikv.TestPutGet"};
  a.findings[shared.param] = shared;
  shared.best_p_value = 1e-6;
  shared.witness_tests = {"ministream.TestDataExchange"};
  b.findings[shared.param] = shared;

  CampaignReport merged = MergeReports({a, b});
  const ParamFinding& finding = merged.findings.at("hadoop.rpc.protection");
  EXPECT_EQ(finding.witness_tests.size(), 2u);
  EXPECT_NEAR(finding.best_p_value, 1e-6, 1e-12);
}

TEST(ReportIoTest, MergeRejectsDuplicateApps) {
  EXPECT_THROW(MergeReports({SampleReport("minikv"), SampleReport("minikv")}), Error);
}

TEST(ReportIoTest, RoundTripPreservesSharingCacheAndDetectionStats) {
  CampaignReport original = SampleReport("minikv");
  original.per_app.at("minikv").after_static = 4200;
  SharingStats sharing;
  sharing.tests_with_conf_usage = 8;
  sharing.tests_with_sharing = 3;
  original.sharing["minikv"] = sharing;
  original.cache_hits = 17;
  original.cache_misses = 104;
  original.runs_to_first_detection = 33;
  original.first_detection_param = "minikv.some.param";

  CampaignReport restored = DeserializeReport(SerializeReport(original));
  EXPECT_EQ(restored.per_app.at("minikv").after_static, 4200);
  EXPECT_EQ(restored.sharing.at("minikv").tests_with_conf_usage, 8);
  EXPECT_EQ(restored.sharing.at("minikv").tests_with_sharing, 3);
  EXPECT_EQ(restored.cache_hits, 17);
  EXPECT_EQ(restored.cache_misses, 104);
  EXPECT_EQ(restored.runs_to_first_detection, 33);
  EXPECT_EQ(restored.first_detection_param, "minikv.some.param");
}

TEST(ReportIoTest, OldSerializationsDefaultAfterStaticToOriginal) {
  // Pre-zebralint serializations carry no after_static key.
  CampaignReport original = SampleReport("minikv");
  std::string text = SerializeReport(original);
  std::string filtered;
  for (const std::string& line : StrSplit(text, '\n')) {
    if (line.find("after_static") == std::string::npos) {
      filtered += line + "\n";
    }
  }
  CampaignReport restored = DeserializeReport(filtered);
  EXPECT_EQ(restored.per_app.at("minikv").after_static, 5000);
}

TEST(ReportIoTest, MergedFirstDetectionIsShardOrderIndependent) {
  // Regression: the merged runs_to_first_detection must not depend on which
  // shard's report happens to arrive first. Shards are ranked canonically
  // (by smallest app name), and the merged value counts all executions of
  // canonically-earlier shards plus the detecting shard's own count.
  CampaignReport apptools_shard = SampleReport("apptools");  // no detection
  apptools_shard.runs_to_first_detection = 0;
  CampaignReport minikv_shard = SampleReport("minikv");
  minikv_shard.runs_to_first_detection = 40;
  minikv_shard.first_detection_param = "minikv.some.param";
  CampaignReport ministream_shard = SampleReport("ministream");
  ministream_shard.runs_to_first_detection = 9;
  ministream_shard.first_detection_param = "akka.ssl.enabled";

  CampaignReport forward =
      MergeReports({apptools_shard, minikv_shard, ministream_shard});
  CampaignReport reversed =
      MergeReports({ministream_shard, minikv_shard, apptools_shard});
  CampaignReport shuffled =
      MergeReports({minikv_shard, ministream_shard, apptools_shard});

  // Canonical order: apptools (no detection, 120 executions), then minikv
  // (detects after 40 of its own runs) -> 120 + 40.
  EXPECT_EQ(forward.runs_to_first_detection, 160);
  EXPECT_EQ(forward.first_detection_param, "minikv.some.param");
  EXPECT_EQ(reversed.runs_to_first_detection, forward.runs_to_first_detection);
  EXPECT_EQ(reversed.first_detection_param, forward.first_detection_param);
  EXPECT_EQ(shuffled.runs_to_first_detection, forward.runs_to_first_detection);
  EXPECT_EQ(shuffled.first_detection_param, forward.first_detection_param);
}

}  // namespace
}  // namespace zebra
