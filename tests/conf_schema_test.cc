// Tests for ConfSchema and the aggregated full schema.

#include "src/conf/conf_schema.h"

#include <set>

#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/ground_truth.h"

namespace zebra {
namespace {

TEST(ConfSchemaTest, AddAndFind) {
  ConfSchema schema;
  schema.AddParam({"a.b", "app1", ParamType::kBool, "false", {"true", "false"}, "d"});
  ASSERT_NE(schema.Find("a.b"), nullptr);
  EXPECT_EQ(schema.Find("a.b")->app, "app1");
  EXPECT_EQ(schema.Find("missing"), nullptr);
}

TEST(ConfSchemaTest, DuplicateParamRejected) {
  ConfSchema schema;
  schema.AddParam({"a.b", "app1", ParamType::kBool, "false", {"true"}, "d"});
  EXPECT_THROW(
      schema.AddParam({"a.b", "app2", ParamType::kBool, "false", {"true"}, "d"}),
      InternalError);
}

TEST(ConfSchemaTest, EmptyTestValuesRejected) {
  ConfSchema schema;
  EXPECT_THROW(schema.AddParam({"a.b", "app1", ParamType::kBool, "false", {}, "d"}),
               InternalError);
}

TEST(ConfSchemaTest, ParamsForAppIncludesSharedLibrary) {
  ConfSchema schema;
  schema.AddParam({"own", "app1", ParamType::kBool, "false", {"true"}, "d"});
  schema.AddParam({"shared", kSharedApp, ParamType::kBool, "false", {"true"}, "d"});
  schema.AddParam({"other", "app2", ParamType::kBool, "false", {"true"}, "d"});

  auto params = schema.ParamsForApp("app1");
  std::set<std::string> names;
  for (const ParamSpec* spec : params) {
    names.insert(spec->name);
  }
  EXPECT_EQ(names, (std::set<std::string>{"own", "shared"}));
  EXPECT_EQ(schema.ParamsOwnedBy("app1").size(), 1u);
}

TEST(ConfSchemaTest, DependencyRulesExactAndWildcard) {
  ConfSchema schema;
  schema.AddDependencyRule("policy", "HTTPS_ONLY", "https.addr", "h:1");
  schema.AddDependencyRule("policy", "*", "always", "yes");

  auto https = schema.DependencyOverrides("policy", "HTTPS_ONLY");
  ASSERT_EQ(https.size(), 2u);
  EXPECT_EQ(https[0], (std::pair<std::string, std::string>{"https.addr", "h:1"}));
  EXPECT_EQ(https[1], (std::pair<std::string, std::string>{"always", "yes"}));

  auto http = schema.DependencyOverrides("policy", "HTTP_ONLY");
  ASSERT_EQ(http.size(), 1u);
  EXPECT_EQ(http[0].first, "always");

  EXPECT_TRUE(schema.DependencyOverrides("unrelated", "v").empty());
}

TEST(FullSchemaTest, CoversAllSixApplications) {
  const ConfSchema& schema = FullSchema();
  std::set<std::string> apps;
  for (const std::string& app : schema.Apps()) {
    apps.insert(app);
  }
  EXPECT_EQ(apps, (std::set<std::string>{"appcommon", "minidfs", "minikv", "minimr",
                                         "ministream", "miniyarn"}));
}

TEST(FullSchemaTest, EveryGroundTruthParamIsRegistered) {
  const ConfSchema& schema = FullSchema();
  for (const auto& [param, why] : ExpectedUnsafeParams()) {
    EXPECT_NE(schema.Find(param), nullptr) << "missing ground-truth param " << param;
  }
  for (const auto& [param, why] : KnownFalsePositiveSources()) {
    EXPECT_NE(schema.Find(param), nullptr) << "missing FP-source param " << param;
  }
}

TEST(FullSchemaTest, GroundTruthMatchesThePapersFortyOne) {
  EXPECT_EQ(ExpectedUnsafeParams().size(), 41u);
}

TEST(FullSchemaTest, EveryParamHasAtLeastTwoTestValues) {
  for (const ParamSpec& spec : FullSchema().params()) {
    EXPECT_GE(spec.test_values.size(), 2u) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
  }
}

TEST(FullSchemaTest, DefaultsAreAmongTestValues) {
  for (const ParamSpec& spec : FullSchema().params()) {
    bool found = false;
    for (const std::string& value : spec.test_values) {
      if (value == spec.default_value) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << spec.name << " default " << spec.default_value
                       << " not among its test values";
  }
}

TEST(FullSchemaTest, HttpPolicyRulesArePresent) {
  const ConfSchema& schema = FullSchema();
  EXPECT_FALSE(schema.DependencyOverrides("dfs.http.policy", "HTTPS_ONLY").empty());
  EXPECT_FALSE(schema.DependencyOverrides("yarn.http.policy", "HTTP_ONLY").empty());
}

TEST(ParamTypeTest, Names) {
  EXPECT_STREQ(ParamTypeName(ParamType::kBool), "bool");
  EXPECT_STREQ(ParamTypeName(ParamType::kInt), "int");
  EXPECT_STREQ(ParamTypeName(ParamType::kEnum), "enum");
}

}  // namespace
}  // namespace zebra
