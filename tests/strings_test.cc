// Tests for string helpers and strict parsing.

#include "src/common/strings.h"

#include <gtest/gtest.h>

namespace zebra {
namespace {

TEST(StrSplitTest, BasicAndEmptyPieces) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("/a/b", '/'), (std::vector<std::string>{"", "a", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StrJoinTest, RoundTripsWithSplit) {
  std::vector<std::string> pieces{"x", "y", "z"};
  EXPECT_EQ(StrJoin(pieces, ","), "x,y,z");
  EXPECT_EQ(StrSplit(StrJoin(pieces, ","), ','), pieces);
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StrTrimTest, Whitespace) {
  EXPECT_EQ(StrTrim("  abc  "), "abc");
  EXPECT_EQ(StrTrim("\t\nabc"), "abc");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("a b"), "a b");
}

TEST(AffixTest, StartsAndEnds) {
  EXPECT_TRUE(StartsWith("part-r-00001.rle", "part-r-"));
  EXPECT_FALSE(StartsWith("p", "part"));
  EXPECT_TRUE(EndsWith("part-r-00001.rle", ".rle"));
  EXPECT_FALSE(EndsWith("part-r-00001", ".rle"));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ParseInt64Test, ValidAndInvalid) {
  int64_t value = -1;
  EXPECT_TRUE(ParseInt64("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &value));
  EXPECT_EQ(value, -7);
  EXPECT_TRUE(ParseInt64("1048576", &value));
  EXPECT_EQ(value, 1048576);

  value = 99;
  EXPECT_FALSE(ParseInt64("", &value));
  EXPECT_FALSE(ParseInt64("abc", &value));
  EXPECT_FALSE(ParseInt64("12abc", &value));
  EXPECT_FALSE(ParseInt64("1.5", &value));
  EXPECT_EQ(value, 99) << "failed parse must not clobber the output";
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  double value = -1.0;
  EXPECT_TRUE(ParseDouble("0.999", &value));
  EXPECT_DOUBLE_EQ(value, 0.999);
  EXPECT_TRUE(ParseDouble("2.1", &value));
  EXPECT_DOUBLE_EQ(value, 2.1);
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("x1.0", &value));
}

TEST(ParseBoolTest, AcceptedSpellings) {
  bool value = false;
  EXPECT_TRUE(ParseBool("true", &value));
  EXPECT_TRUE(value);
  EXPECT_TRUE(ParseBool("TRUE", &value));
  EXPECT_TRUE(value);
  EXPECT_TRUE(ParseBool("false", &value));
  EXPECT_FALSE(value);
  EXPECT_TRUE(ParseBool("1", &value));
  EXPECT_TRUE(value);
  EXPECT_TRUE(ParseBool("no", &value));
  EXPECT_FALSE(value);
  EXPECT_FALSE(ParseBool("maybe", &value));
}

TEST(RenderTest, CanonicalForms) {
  EXPECT_EQ(BoolToString(true), "true");
  EXPECT_EQ(BoolToString(false), "false");
  EXPECT_EQ(Int64ToString(-5), "-5");
  EXPECT_EQ(DoubleToString(0.5), "0.5");
}

// Property: ParseInt64(Int64ToString(x)) == x across a sweep.
class IntRoundTripTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(IntRoundTripTest, RoundTrips) {
  int64_t parsed = 0;
  ASSERT_TRUE(ParseInt64(Int64ToString(GetParam()), &parsed));
  EXPECT_EQ(parsed, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, IntRoundTripTest,
                         ::testing::Values(0, 1, -1, 512, -4096, 1048576,
                                           9223372036854775807LL,
                                           -9223372036854775807LL));

}  // namespace
}  // namespace zebra
