// Tests for the virtual clock: ordering, periodic tasks, cancellation,
// reentrancy.

#include "src/sim/sim_clock.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/common/error.h"

namespace zebra {
namespace {

TEST(SimClockTest, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.NowMs(), 0);
  clock.AdvanceBy(100);
  EXPECT_EQ(clock.NowMs(), 100);
  clock.AdvanceTo(250);
  EXPECT_EQ(clock.NowMs(), 250);
}

TEST(SimClockTest, AdvanceToThePastIsANoOpForNow) {
  SimClock clock;
  clock.AdvanceBy(100);
  clock.AdvanceTo(50);
  EXPECT_EQ(clock.NowMs(), 100);
}

TEST(SimClockTest, OneShotTasksFireInTimestampOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.ScheduleAt(30, [&] { order.push_back(3); });
  clock.ScheduleAt(10, [&] { order.push_back(1); });
  clock.ScheduleAt(20, [&] { order.push_back(2); });
  clock.AdvanceBy(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimClockTest, TiesFireInScheduleOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.ScheduleAt(10, [&] { order.push_back(1); });
  clock.ScheduleAt(10, [&] { order.push_back(2); });
  clock.ScheduleAt(10, [&] { order.push_back(3); });
  clock.AdvanceBy(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimClockTest, TaskSeesItsDueTimeAsNow) {
  SimClock clock;
  int64_t observed = -1;
  clock.ScheduleAt(42, [&] { observed = clock.NowMs(); });
  clock.AdvanceBy(100);
  EXPECT_EQ(observed, 42);
  EXPECT_EQ(clock.NowMs(), 100);
}

TEST(SimClockTest, TasksPastTheTargetDoNotFire) {
  SimClock clock;
  int fired = 0;
  clock.ScheduleAt(100, [&] { ++fired; });
  clock.AdvanceBy(99);
  EXPECT_EQ(fired, 0);
  clock.AdvanceBy(1);
  EXPECT_EQ(fired, 1);
}

TEST(SimClockTest, PeriodicTaskFiresRepeatedly) {
  SimClock clock;
  std::vector<int64_t> fire_times;
  clock.SchedulePeriodic(10, 10, [&] { fire_times.push_back(clock.NowMs()); });
  clock.AdvanceBy(45);
  EXPECT_EQ(fire_times, (std::vector<int64_t>{10, 20, 30, 40}));
}

TEST(SimClockTest, PeriodicWithInitialDelayDifferentFromPeriod) {
  SimClock clock;
  std::vector<int64_t> fire_times;
  clock.SchedulePeriodic(5, 20, [&] { fire_times.push_back(clock.NowMs()); });
  clock.AdvanceBy(70);
  EXPECT_EQ(fire_times, (std::vector<int64_t>{5, 25, 45, 65}));
}

TEST(SimClockTest, CancelPendingOneShot) {
  SimClock clock;
  int fired = 0;
  SimClock::TaskId id = clock.ScheduleAt(10, [&] { ++fired; });
  clock.Cancel(id);
  clock.AdvanceBy(100);
  EXPECT_EQ(fired, 0);
}

TEST(SimClockTest, CancelPeriodicStopsFutureFirings) {
  SimClock clock;
  int fired = 0;
  SimClock::TaskId id = clock.SchedulePeriodic(10, 10, [&] { ++fired; });
  clock.AdvanceBy(25);
  EXPECT_EQ(fired, 2);
  clock.Cancel(id);
  clock.AdvanceBy(100);
  EXPECT_EQ(fired, 2);
}

TEST(SimClockTest, PeriodicTaskCanCancelItself) {
  SimClock clock;
  int fired = 0;
  SimClock::TaskId id = 0;
  id = clock.SchedulePeriodic(10, 10, [&] {
    ++fired;
    if (fired == 3) {
      clock.Cancel(id);
    }
  });
  clock.AdvanceBy(1000);
  EXPECT_EQ(fired, 3);
}

TEST(SimClockTest, TaskMayScheduleAnotherTaskWithinTheWindow) {
  SimClock clock;
  std::vector<int64_t> fire_times;
  clock.ScheduleAt(10, [&] {
    fire_times.push_back(clock.NowMs());
    clock.ScheduleAfter(5, [&] { fire_times.push_back(clock.NowMs()); });
  });
  clock.AdvanceBy(100);
  EXPECT_EQ(fire_times, (std::vector<int64_t>{10, 15}));
}

TEST(SimClockTest, RecursiveAdvanceThrows) {
  SimClock clock;
  bool threw = false;
  clock.ScheduleAt(10, [&] {
    try {
      clock.AdvanceBy(1);
    } catch (const InternalError&) {
      threw = true;
    }
  });
  clock.AdvanceBy(20);
  EXPECT_TRUE(threw);
}

TEST(SimClockTest, ScheduleAfterIsRelativeToNow) {
  SimClock clock;
  clock.AdvanceBy(100);
  int64_t fired_at = -1;
  clock.ScheduleAfter(50, [&] { fired_at = clock.NowMs(); });
  clock.AdvanceBy(50);
  EXPECT_EQ(fired_at, 150);
}

TEST(SimClockTest, PendingTasksCount) {
  SimClock clock;
  EXPECT_EQ(clock.PendingTasks(), 0u);
  clock.ScheduleAt(10, [] {});
  clock.SchedulePeriodic(5, 5, [] {});
  EXPECT_EQ(clock.PendingTasks(), 2u);
  clock.AdvanceBy(10);
  EXPECT_EQ(clock.PendingTasks(), 1u);  // the periodic task re-armed
}

TEST(SimClockPropertyTest, LongPeriodicRunFiresExactly) {
  SimClock clock;
  int64_t count = 0;
  clock.SchedulePeriodic(1000, 1000, [&] { ++count; });
  clock.AdvanceBy(931000);
  EXPECT_EQ(count, 931);
}

}  // namespace
}  // namespace zebra
