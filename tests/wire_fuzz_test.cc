// Property-based fuzzing of the wire layer: across random payloads and random
// (sender, receiver) configuration pairs, decoding either throws or returns
// the exact original payload — never silently corrupted data. This is the
// invariant that makes wire-format parameters *detectable*: a mismatch that
// silently garbled data without failing would poison every test above it.

#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/sim/wire.h"

namespace zebra {
namespace {

WireConfig RandomConfig(Rng& rng) {
  WireConfig config;
  config.encrypt = rng.NextBool(0.5);
  const char* codecs[] = {"none", "rle", "xor8"};
  config.compression = codecs[rng.NextBelow(3)];
  ChecksumType checksums[] = {ChecksumType::kNone, ChecksumType::kCrc32,
                              ChecksumType::kCrc32c};
  config.checksum = checksums[rng.NextBelow(3)];
  int64_t chunk_sizes[] = {16, 128, 512, 4096};
  config.bytes_per_checksum = chunk_sizes[rng.NextBelow(4)];
  return config;
}

Bytes RandomPayload(Rng& rng) {
  Bytes payload(rng.NextBelow(2048));
  for (uint8_t& byte : payload) {
    // Mix compressible runs and noise.
    byte = rng.NextBool(0.5) ? 0x41 : static_cast<uint8_t>(rng.NextU64());
  }
  return payload;
}

class WireFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzzTest, NoSilentCorruptionAcrossConfigPairs) {
  Rng rng(GetParam());
  int decoded_ok = 0;
  int rejected = 0;
  for (int i = 0; i < 400; ++i) {
    WireConfig sender = RandomConfig(rng);
    WireConfig receiver = RandomConfig(rng);
    Bytes payload = RandomPayload(rng);
    Bytes frame = EncodeFrame(sender, payload);
    try {
      Bytes decoded = DecodeFrame(receiver, frame);
      ASSERT_EQ(decoded, payload)
          << "silent corruption under sender/receiver mismatch";
      ++decoded_ok;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_GT(decoded_ok, 0) << "some pairs must agree";
  EXPECT_GT(rejected, 0) << "some pairs must mismatch";
}

TEST_P(WireFuzzTest, MatchedConfigsAlwaysRoundTrip) {
  Rng rng(GetParam() ^ 0xABCDEF);
  for (int i = 0; i < 300; ++i) {
    WireConfig config = RandomConfig(rng);
    Bytes payload = RandomPayload(rng);
    EXPECT_EQ(DecodeFrame(config, EncodeFrame(config, payload)), payload);
  }
}

TEST_P(WireFuzzTest, BitFlipsUnderChecksummedConfigsNeverCorruptSilently) {
  Rng rng(GetParam() ^ 0x5A5A5A);
  for (int i = 0; i < 300; ++i) {
    WireConfig config = RandomConfig(rng);
    if (config.checksum == ChecksumType::kNone) {
      // Without checksums, silent corruption is possible by design — that is
      // the very reason dfs.checksum.type exists.
      config.checksum = ChecksumType::kCrc32;
    }
    Bytes payload = RandomPayload(rng);
    if (payload.empty()) {
      continue;
    }
    Bytes frame = EncodeFrame(config, payload);
    frame[rng.NextBelow(frame.size())] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    try {
      Bytes decoded = DecodeFrame(config, frame);
      // A flip confined to the checksum trailer may go unnoticed only if the
      // body (and therefore the payload) is untouched.
      EXPECT_EQ(decoded, payload);
    } catch (const Error&) {
      // Rejected — the expected outcome.
    }
  }
}

TEST_P(WireFuzzTest, ChecksumlessConfigsCanCorruptSilently) {
  // Negative control documenting the hazard: with ChecksumType::kNone a
  // payload bit flip decodes "successfully" to different bytes.
  Rng rng(GetParam() ^ 0x123456);
  WireConfig config;
  config.checksum = ChecksumType::kNone;
  Bytes payload(256, 0x11);
  Bytes frame = EncodeFrame(config, payload);
  // Flip a byte in the middle of the payload region (past the 12-byte
  // magic+length header, before the trailer).
  frame[64] ^= 0xFF;
  Bytes decoded = DecodeFrame(config, frame);
  EXPECT_NE(decoded, payload);
  EXPECT_EQ(decoded.size(), payload.size());
}

TEST_P(WireFuzzTest, RandomGarbageNeverDecodes) {
  Rng rng(GetParam() ^ 0x777777);
  for (int i = 0; i < 300; ++i) {
    WireConfig config = RandomConfig(rng);
    Bytes garbage(rng.NextBelow(512) + 8);
    for (uint8_t& byte : garbage) {
      byte = static_cast<uint8_t>(rng.NextU64());
    }
    EXPECT_THROW(DecodeFrame(config, garbage), Error);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest,
                         ::testing::Values(1u, 42u, 20260705u, 0xDEADBEEFu));

}  // namespace
}  // namespace zebra
