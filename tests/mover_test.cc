// Tests for the MiniDFS Mover (storage-tier migration).

#include "src/apps/minidfs/mover.h"

#include <gtest/gtest.h>

#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_client.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"
#include "src/runtime/cluster.h"

namespace zebra {
namespace {

class MoverTest : public ::testing::Test {
 protected:
  std::vector<uint64_t> WriteBlocksOn(DfsClient& client, NameNode& nn, DataNode& dn,
                                      int files) {
    std::vector<uint64_t> blocks;
    for (int i = 0; i < files; ++i) {
      std::string path = "/mv/f" + std::to_string(i);
      client.WriteFile(path, "block");
      for (uint64_t block : nn.BlocksOf(path)) {
        for (uint64_t location : nn.LocationsOf(block)) {
          if (location == dn.id()) {
            blocks.push_back(block);
          }
        }
      }
    }
    return blocks;
  }

  Cluster cluster_;
};

TEST_F(MoverTest, MigratesAllBlocks) {
  Configuration conf;
  conf.SetInt(kDfsReplication, 1);
  NameNode nn(&cluster_, conf);
  DataNode dn1(&cluster_, &nn, conf);
  DataNode dn2(&cluster_, &nn, conf);
  DfsClient client(&cluster_, &nn, {&dn1, &dn2}, conf);
  Mover mover(&cluster_, &nn, conf);

  std::vector<uint64_t> blocks = WriteBlocksOn(client, nn, dn1, 8);
  ASSERT_FALSE(blocks.empty());

  MoveResult result = mover.MigrateBlocks(blocks, &dn1, &dn2, 600000);
  EXPECT_EQ(result.migrated_blocks, static_cast<int>(blocks.size()));
  for (uint64_t block : blocks) {
    EXPECT_TRUE(dn2.HasBlock(block));
    std::vector<uint64_t> locations = nn.LocationsOf(block);
    EXPECT_NE(std::find(locations.begin(), locations.end(), dn2.id()),
              locations.end());
  }
}

TEST_F(MoverTest, MatchedConcurrencyNeverDeclines) {
  Configuration conf;
  conf.SetInt(kDfsReplication, 1);
  conf.SetInt(kDfsBalanceMaxMoves, 4);
  NameNode nn(&cluster_, conf);
  DataNode dn1(&cluster_, &nn, conf);
  DataNode dn2(&cluster_, &nn, conf);
  DfsClient client(&cluster_, &nn, {&dn1, &dn2}, conf);
  Mover mover(&cluster_, &nn, conf);

  std::vector<uint64_t> blocks = WriteBlocksOn(client, nn, dn1, 10);
  MoveResult result = mover.MigrateBlocks(blocks, &dn1, &dn2, 600000);
  EXPECT_EQ(result.declined_dispatches, 0);
}

TEST_F(MoverTest, MismatchedConcurrencyCausesBackoffs) {
  Configuration nn_conf;
  nn_conf.SetInt(kDfsReplication, 1);
  NameNode nn(&cluster_, nn_conf);
  Configuration dn_conf(nn_conf);
  dn_conf.SetInt(kDfsBalanceMaxMoves, 1);
  DataNode dn1(&cluster_, &nn, dn_conf);
  DataNode dn2(&cluster_, &nn, dn_conf);
  DfsClient client(&cluster_, &nn, {&dn1, &dn2}, nn_conf);
  Configuration mover_conf(nn_conf);
  mover_conf.SetInt(kDfsBalanceMaxMoves, 50);
  Mover mover(&cluster_, &nn, mover_conf);

  std::vector<uint64_t> blocks = WriteBlocksOn(client, nn, dn1, 10);
  MoveResult result = mover.MigrateBlocks(blocks, &dn1, &dn2, 600000);
  EXPECT_EQ(result.migrated_blocks, static_cast<int>(blocks.size()));
  EXPECT_GT(result.declined_dispatches, 0) << "flooding a 1-slot DataNode declines";
  EXPECT_GT(result.elapsed_ms, 1100) << "backoffs dominate the elapsed time";
}

TEST_F(MoverTest, TimesOutUnderTightDeadline) {
  Configuration nn_conf;
  nn_conf.SetInt(kDfsReplication, 1);
  NameNode nn(&cluster_, nn_conf);
  Configuration dn_conf(nn_conf);
  dn_conf.SetInt(kDfsBalanceMaxMoves, 1);
  DataNode dn1(&cluster_, &nn, dn_conf);
  DataNode dn2(&cluster_, &nn, dn_conf);
  DfsClient client(&cluster_, &nn, {&dn1, &dn2}, nn_conf);
  Configuration mover_conf(nn_conf);
  mover_conf.SetInt(kDfsBalanceMaxMoves, 50);
  Mover mover(&cluster_, &nn, mover_conf);

  std::vector<uint64_t> blocks = WriteBlocksOn(client, nn, dn1, 10);
  EXPECT_THROW(mover.MigrateBlocks(blocks, &dn1, &dn2, 2000), TimeoutError);
}

TEST_F(MoverTest, EmptyBlockListIsANoOp) {
  Configuration conf;
  NameNode nn(&cluster_, conf);
  DataNode dn1(&cluster_, &nn, conf);
  DataNode dn2(&cluster_, &nn, conf);
  Mover mover(&cluster_, &nn, conf);

  MoveResult result = mover.MigrateBlocks({}, &dn1, &dn2, 1000);
  EXPECT_EQ(result.migrated_blocks, 0);
  EXPECT_EQ(result.elapsed_ms, 0);
}

}  // namespace
}  // namespace zebra
