// Tests for the runtime layer: the node-type inventory (Table 2), cluster
// facilities/flags, and SessionReport helpers.

#include <gtest/gtest.h>

#include "src/conf/conf_agent.h"
#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_types.h"

namespace zebra {
namespace {

TEST(NodeTypesTest, MatchesTableTwo) {
  EXPECT_EQ(NodeTypesForApp("ministream"),
            (std::vector<std::string>{"JobManager", "TaskManager"}));
  EXPECT_EQ(NodeTypesForApp("minikv"),
            (std::vector<std::string>{"HMaster", "HRegionServer", "ThriftServer",
                                      "RESTServer"}));
  EXPECT_EQ(NodeTypesForApp("minidfs"),
            (std::vector<std::string>{"NameNode", "DataNode", "SecondaryNameNode",
                                      "JournalNode", "Balancer", "Mover"}));
  EXPECT_EQ(NodeTypesForApp("minimr"),
            (std::vector<std::string>{"MapTask", "ReduceTask", "JobHistoryServer"}));
  EXPECT_EQ(NodeTypesForApp("miniyarn"),
            (std::vector<std::string>{"ResourceManager", "NodeManager",
                                      "ApplicationHistoryServer"}));
}

TEST(NodeTypesTest, SharedLibraryHasNoNodeTypes) {
  EXPECT_TRUE(NodeTypesForApp("appcommon").empty());
  EXPECT_TRUE(NodeTypesForApp("nonexistent").empty());
  EXPECT_FALSE(NodeTypesForApp("apptools").empty())
      << "tools plan against the MiniDFS node types";
}

TEST(ClusterTest, FacilitiesAreMemoizedPerKey) {
  Cluster cluster;
  int& a = cluster.GetFacility<int>("counter", [] { return std::make_unique<int>(7); });
  int& b = cluster.GetFacility<int>("counter", [] { return std::make_unique<int>(9); });
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b, 7) << "the second factory never runs";
  int& other =
      cluster.GetFacility<int>("other", [] { return std::make_unique<int>(9); });
  EXPECT_NE(&a, &other);
}

TEST(ClusterTest, FlagsDefaultToFalse) {
  Cluster cluster;
  EXPECT_FALSE(cluster.GetFlag("anything"));
  cluster.SetFlag("anything", true);
  EXPECT_TRUE(cluster.GetFlag("anything"));
  cluster.SetFlag("anything", false);
  EXPECT_FALSE(cluster.GetFlag("anything"));
}

TEST(ClusterTest, TimeStartsAtZero) {
  Cluster cluster;
  EXPECT_EQ(cluster.NowMs(), 0);
  cluster.AdvanceTime(500);
  EXPECT_EQ(cluster.NowMs(), 500);
}

TEST(SessionReportTest, HelpersAggregateReads) {
  SessionReport report;
  report.node_counts["DataNode"] = 2;
  report.node_counts["NameNode"] = 1;
  report.reads["DataNode"] = {"a", "b"};
  report.reads["Client"] = {"b", "c"};
  report.uncertain_params = {"d"};

  EXPECT_TRUE(report.StartedAnyNode());
  EXPECT_EQ(report.TotalNodes(), 3);
  EXPECT_EQ(report.ParamsReadBy("DataNode").size(), 2u);
  EXPECT_TRUE(report.ParamsReadBy("Balancer").empty());
  EXPECT_EQ(report.AllParamsRead(),
            (std::set<std::string>{"a", "b", "c", "d"}));
}

TEST(SessionReportTest, OverrideHitsAreCounted) {
  TestPlan plan;
  ParamPlan p;
  p.param = "counted.param";
  p.assigner = ValueAssigner::Homogeneous("v");
  plan.Add(p);

  ConfAgentSession session(std::move(plan));
  Configuration conf;
  conf.Get("counted.param", "d");
  conf.Get("counted.param", "d");
  conf.Get("other.param", "d");
  SessionReport report = session.End();
  EXPECT_EQ(report.override_hits, 2);
  EXPECT_EQ(report.conf_objects_created, 1);
}

}  // namespace
}  // namespace zebra
