// Tests for the annotation-site registry behind Table 4.

#include "src/conf/annotations.h"

#include <gtest/gtest.h>

namespace zebra {
namespace {

TEST(AnnotationsTest, RegistrationIsIdempotentPerSite) {
  for (int i = 0; i < 5; ++i) {
    ZC_ANNOTATION_SITE("annot-test-app", AnnotationKind::kNodeInit);
  }
  AnnotationCounts counts = GetAnnotationCounts("annot-test-app");
  EXPECT_EQ(counts.node_init_sites, 1);
}

TEST(AnnotationsTest, DistinctLinesAreDistinctSites) {
  ZC_ANNOTATION_SITE("annot-test-app2", AnnotationKind::kRefToClone);
  ZC_ANNOTATION_SITE("annot-test-app2", AnnotationKind::kRefToClone);
  AnnotationCounts counts = GetAnnotationCounts("annot-test-app2");
  EXPECT_EQ(counts.ref_to_clone_sites, 2);
}

TEST(AnnotationsTest, KindsAreCountedSeparately) {
  ZC_ANNOTATION_SITE("annot-test-app3", AnnotationKind::kNodeInit);
  ZC_ANNOTATION_SITE("annot-test-app3", AnnotationKind::kRefToClone);
  ZC_ANNOTATION_SITE("annot-test-app3", AnnotationKind::kConfHook);
  AnnotationCounts counts = GetAnnotationCounts("annot-test-app3");
  EXPECT_EQ(counts.node_init_sites, 1);
  EXPECT_EQ(counts.ref_to_clone_sites, 1);
  EXPECT_EQ(counts.conf_hook_sites, 1);
  EXPECT_EQ(counts.node_class_lines(), 4);  // 2 per init bracket + 2 per ref-clone
  EXPECT_EQ(counts.conf_class_lines(), 1);
}

TEST(AnnotationsTest, UnknownAppHasZeroCounts) {
  AnnotationCounts counts = GetAnnotationCounts("never-registered");
  EXPECT_EQ(counts.node_init_sites, 0);
  EXPECT_EQ(counts.ref_to_clone_sites, 0);
  EXPECT_EQ(counts.conf_hook_sites, 0);
}

TEST(AnnotationsTest, AnnotatedAppsListed) {
  ZC_ANNOTATION_SITE("annot-test-app4", AnnotationKind::kConfHook);
  bool found = false;
  for (const std::string& app : GetAnnotatedApps()) {
    if (app == "annot-test-app4") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AnnotationsTest, SitesCarryFileAndLine) {
  ZC_ANNOTATION_SITE("annot-test-app5", AnnotationKind::kNodeInit);
  bool found = false;
  for (const AnnotationSite& site : GetAnnotationSites()) {
    if (site.app == "annot-test-app5") {
      found = true;
      EXPECT_NE(site.file.find("annotations_test.cc"), std::string::npos);
      EXPECT_GT(site.line, 0);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace zebra
