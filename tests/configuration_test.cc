// Tests for the Configuration class: typed accessors, defaults, cloning,
// and interaction with ConfAgent plans.

#include "src/conf/configuration.h"

#include <gtest/gtest.h>

#include "src/conf/conf_agent.h"

namespace zebra {
namespace {

TEST(ConfigurationTest, GetReturnsDefaultForMissingKey) {
  Configuration conf;
  EXPECT_EQ(conf.Get("absent", "fallback"), "fallback");
  EXPECT_EQ(conf.Get("absent"), "");
  EXPECT_FALSE(conf.Has("absent"));
}

TEST(ConfigurationTest, SetThenGet) {
  Configuration conf;
  conf.Set("k", "v");
  EXPECT_TRUE(conf.Has("k"));
  EXPECT_EQ(conf.Get("k", "other"), "v");
}

TEST(ConfigurationTest, TypedAccessors) {
  Configuration conf;
  conf.SetInt("int", 42);
  conf.SetBool("bool", true);
  conf.SetDouble("double", 0.25);
  EXPECT_EQ(conf.GetInt("int", 0), 42);
  EXPECT_TRUE(conf.GetBool("bool", false));
  EXPECT_DOUBLE_EQ(conf.GetDouble("double", 0.0), 0.25);
}

TEST(ConfigurationTest, TypedDefaultsWhenAbsent) {
  Configuration conf;
  EXPECT_EQ(conf.GetInt("absent", 7), 7);
  EXPECT_TRUE(conf.GetBool("absent", true));
  EXPECT_DOUBLE_EQ(conf.GetDouble("absent", 2.5), 2.5);
}

TEST(ConfigurationTest, MalformedValueFallsBackToDefault) {
  Configuration conf;
  conf.Set("int", "not-a-number");
  conf.Set("bool", "maybe");
  EXPECT_EQ(conf.GetInt("int", 13), 13);
  EXPECT_FALSE(conf.GetBool("bool", false));
}

TEST(ConfigurationTest, CloneCopiesProperties) {
  Configuration original;
  original.Set("a", "1");
  Configuration clone(original);
  EXPECT_EQ(clone.Get("a"), "1");
  clone.Set("a", "2");
  EXPECT_EQ(original.Get("a"), "1") << "clone must not alias the original";
  EXPECT_NE(clone.id(), original.id());
}

TEST(ConfigurationTest, RefToCloneCopiesProperties) {
  Configuration original;
  original.Set("x", "y");
  Configuration clone = Configuration::RefToClone(original);
  EXPECT_EQ(clone.Get("x"), "y");
  EXPECT_NE(clone.id(), original.id());
}

TEST(ConfigurationTest, IdsAreUnique) {
  Configuration a;
  Configuration b;
  Configuration c(a);
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.id(), c.id());
  EXPECT_NE(b.id(), c.id());
}

TEST(ConfigurationTest, SnapshotReflectsRawContents) {
  Configuration conf;
  conf.Set("a", "1");
  conf.SetRaw("b", "2");
  auto snapshot = conf.Snapshot();
  EXPECT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot.at("a"), "1");
  EXPECT_EQ(snapshot.at("b"), "2");
}

TEST(ConfigurationTest, PlanOverrideAppliesInsideSession) {
  TestPlan plan;
  ParamPlan param;
  param.param = "p";
  param.assigner = ValueAssigner::Homogeneous("planned");
  plan.Add(param);

  ConfAgentSession session(plan);
  Configuration conf;  // created before any node: belongs to the unit test
  conf.Set("p", "stored");
  EXPECT_EQ(conf.Get("p"), "planned") << "the plan value wins over the stored one";
  EXPECT_EQ(conf.Get("q", "dflt"), "dflt") << "unplanned params are untouched";
  session.End();

  EXPECT_EQ(conf.Get("p"), "stored") << "outside a session the hooks are no-ops";
}

TEST(ConfigurationTest, PlanOverrideAppliesToAbsentKeyDefaults) {
  TestPlan plan;
  ParamPlan param;
  param.param = "p";
  param.assigner = ValueAssigner::Homogeneous("42");
  plan.Add(param);

  ConfAgentSession session(plan);
  Configuration conf;
  EXPECT_EQ(conf.GetInt("p", 7), 42)
      << "typed getters must observe the plan even when the key is absent";
  session.End();
}

TEST(ConfigurationTest, DependencyOverridesVisibleThroughPlan) {
  TestPlan plan;
  ParamPlan param;
  param.param = "policy";
  param.assigner = ValueAssigner::Homogeneous("HTTPS_ONLY");
  param.extra_overrides.emplace_back("address", "0.0.0.0:9999");
  plan.Add(param);

  ConfAgentSession session(plan);
  Configuration conf;
  EXPECT_EQ(conf.Get("address", "default"), "0.0.0.0:9999");
  session.End();
}

}  // namespace
}  // namespace zebra
