// Tests for the MiniYARN application lifecycle.

#include "src/apps/miniyarn/application.h"

#include <gtest/gtest.h>

#include "src/apps/miniyarn/app_history_server.h"
#include "src/apps/miniyarn/node_manager.h"
#include "src/apps/miniyarn/yarn_params.h"
#include "src/common/error.h"
#include "src/runtime/cluster.h"

namespace zebra {
namespace {

class AppLifecycleTest : public ::testing::Test {
 protected:
  Cluster cluster_;
};

TEST_F(AppLifecycleTest, SubmitRunComplete) {
  Configuration conf;
  ResourceManager rm(&cluster_, conf);
  NodeManager nm(&cluster_, &rm, conf);
  AppManager apps(&cluster_, &rm);

  uint64_t app = apps.SubmitApplication("wordcount", 2, 1024, 1);
  EXPECT_EQ(apps.NumRunning(), 1);
  ASSERT_NE(apps.Find(app), nullptr);
  EXPECT_EQ(apps.Find(app)->containers.size(), 2u);

  apps.CompleteApplication(app);
  EXPECT_EQ(apps.NumRunning(), 0);
  EXPECT_EQ(apps.NumCompletedRetained(), 1);
}

TEST_F(AppLifecycleTest, SubmissionFailsWhenSchedulerRejects) {
  Configuration rm_conf;
  rm_conf.SetInt(kYarnMaxAllocMb, 1024);
  ResourceManager rm(&cluster_, rm_conf);
  NodeManager nm(&cluster_, &rm, rm_conf);
  AppManager apps(&cluster_, &rm);

  EXPECT_THROW(apps.SubmitApplication("big", 1, 8192, 1), LimitError);
  EXPECT_EQ(apps.NumRunning(), 0);
}

TEST_F(AppLifecycleTest, CompletedRetentionBounded) {
  Configuration conf;
  conf.SetInt(kYarnMaxCompletedApps, 2);
  ResourceManager rm(&cluster_, conf);
  NodeManager nm(&cluster_, &rm, conf);
  AppManager apps(&cluster_, &rm);

  for (int i = 0; i < 5; ++i) {
    uint64_t app = apps.SubmitApplication("job" + std::to_string(i), 0, 0, 0);
    apps.CompleteApplication(app);
  }
  EXPECT_EQ(apps.NumCompletedRetained(), 2) << "oldest completed apps evicted";
}

TEST_F(AppLifecycleTest, DoubleCompletionRejected) {
  Configuration conf;
  ResourceManager rm(&cluster_, conf);
  NodeManager nm(&cluster_, &rm, conf);
  AppManager apps(&cluster_, &rm);

  uint64_t app = apps.SubmitApplication("once", 0, 0, 0);
  apps.CompleteApplication(app);
  EXPECT_THROW(apps.CompleteApplication(app), RpcError);
  EXPECT_THROW(apps.CompleteApplication(9999), RpcError);
}

TEST_F(AppLifecycleTest, HistoryPublishedWhenTimelineEnabled) {
  Configuration conf;
  conf.SetBool(kYarnTimelineEnabled, true);
  ResourceManager rm(&cluster_, conf);
  NodeManager nm(&cluster_, &rm, conf);
  AppHistoryServer ahs(&cluster_, conf);
  AppManager apps(&cluster_, &rm);

  uint64_t app = apps.SubmitApplication("traced", 1, 512, 1);
  EXPECT_TRUE(apps.PublishHistory(app, &ahs, conf));
  EXPECT_EQ(ahs.NumTimelineEvents(), 2);
}

TEST_F(AppLifecycleTest, HistorySkippedWhenClientTimelineDisabled) {
  Configuration server_conf;
  server_conf.SetBool(kYarnTimelineEnabled, true);
  ResourceManager rm(&cluster_, server_conf);
  NodeManager nm(&cluster_, &rm, server_conf);
  AppHistoryServer ahs(&cluster_, server_conf);
  AppManager apps(&cluster_, &rm);

  Configuration client_conf;  // timeline disabled on the client
  uint64_t app = apps.SubmitApplication("silent", 0, 0, 0);
  EXPECT_FALSE(apps.PublishHistory(app, &ahs, client_conf));
  EXPECT_EQ(ahs.NumTimelineEvents(), 0);
}

TEST_F(AppLifecycleTest, HistoryFailsWhenServerTimelineDisabled) {
  Configuration server_conf;  // timeline NOT running
  ResourceManager rm(&cluster_, server_conf);
  NodeManager nm(&cluster_, &rm, server_conf);
  AppHistoryServer ahs(&cluster_, server_conf);
  AppManager apps(&cluster_, &rm);

  Configuration client_conf;
  client_conf.SetBool(kYarnTimelineEnabled, true);
  uint64_t app = apps.SubmitApplication("refused", 0, 0, 0);
  EXPECT_THROW(apps.PublishHistory(app, &ahs, client_conf), RpcError);
}

}  // namespace
}  // namespace zebra
