// Tests for TestRunner: candidate detection, homogeneous controls, and the
// hypothesis-testing filter for nondeterministic failures.

#include "src/core/test_runner.h"

#include <gtest/gtest.h>

#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

GeneratedInstance MakeInstance(const std::string& test_id, const std::string& param,
                               ValueAssigner assigner) {
  GeneratedInstance instance;
  instance.test = FullCorpus().Find(test_id);
  EXPECT_NE(instance.test, nullptr) << test_id;
  instance.plan.param = param;
  instance.plan.assigner = std::move(assigner);
  return instance;
}

TEST(TestRunnerTest, ConfirmsThriftProtocolMismatch) {
  GeneratedInstance instance = MakeInstance(
      "minikv.TestThriftAdminCreateTable", "hbase.regionserver.thrift.compact",
      ValueAssigner::UniformGroup("ThriftServer", "true", "false"));
  TestRunner runner;
  int64_t executions = 0;
  Verdict verdict = runner.Verify(instance, &executions);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kConfirmedUnsafe);
  EXPECT_LT(verdict.p_value, 1e-4);
  EXPECT_FALSE(verdict.witness_failure.empty());
  EXPECT_GT(executions, 3);
  EXPECT_EQ(verdict.hetero_failures, verdict.hetero_trials);
  EXPECT_EQ(verdict.homo_failures, 0);
}

TEST(TestRunnerTest, ConfirmsSlotMismatch) {
  GeneratedInstance instance = MakeInstance(
      "ministream.TestJobSubmissionSlots", "taskmanager.numberOfTaskSlots",
      ValueAssigner::UniformGroup("JobManager", "4", "1"));
  TestRunner runner;
  int64_t executions = 0;
  Verdict verdict = runner.Verify(instance, &executions);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kConfirmedUnsafe);
}

TEST(TestRunnerTest, SafeParamIsNotACandidate) {
  GeneratedInstance instance = MakeInstance(
      "minikv.TestPutGet", "hbase.client.retries.number",
      ValueAssigner::UniformGroup("HRegionServer", "1", "35"));
  TestRunner runner;
  int64_t executions = 0;
  Verdict verdict = runner.Verify(instance, &executions);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kNotCandidate);
  EXPECT_EQ(executions, 1) << "a passing hetero run needs no homogeneous controls";
}

TEST(TestRunnerTest, BenignPolarityOfUnsafeParamIsNotACandidate) {
  // JobManager assuming *fewer* slots than TaskManagers offer is merely
  // conservative; this polarity passes and must not be reported.
  GeneratedInstance instance = MakeInstance(
      "ministream.TestJobSubmissionSlots", "taskmanager.numberOfTaskSlots",
      ValueAssigner::UniformGroup("JobManager", "1", "4"));
  TestRunner runner;
  int64_t executions = 0;
  Verdict verdict = runner.Verify(instance, &executions);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kNotCandidate);
}

TEST(TestRunnerTest, FlakyTestIsNeverConfirmed) {
  // The flaky corpus tests fail ~30% of trials regardless of configuration;
  // whatever the first trial shows, hypothesis testing must not confirm.
  for (const char* test_id :
       {"minidfs.TestFlakyReplicationMonitor", "minikv.TestFlakyMasterFailover",
        "ministream.TestFlakyCheckpointBarrier"}) {
    GeneratedInstance instance =
        MakeInstance(test_id, "hbase.client.retries.number",
                     ValueAssigner::UniformGroup("Client", "1", "35"));
    TestRunner runner;
    int64_t executions = 0;
    Verdict verdict = runner.Verify(instance, &executions);
    EXPECT_NE(verdict.kind, Verdict::Kind::kConfirmedUnsafe) << test_id;
  }
}

TEST(TestRunnerTest, HomogeneousControlFailureBlocksAttribution) {
  // parallelism.default=2 breaks this test even homogeneously (1 TM with one
  // slot); a candidate must not arise because the homo control fails too.
  GeneratedInstance instance = MakeInstance(
      "ministream.TestParallelismDefaults", "parallelism.default",
      ValueAssigner::UniformGroup("Client", "2", "1"));
  TestRunner runner;
  int64_t executions = 0;
  Verdict verdict = runner.Verify(instance, &executions);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kNotCandidate);
  EXPECT_GT(verdict.homo_failures, 0);
}

TEST(TestRunnerTest, ExtraFirstTrialsCatchProbabilisticFailures) {
  // The §5 mitigation: the work-preserving-recovery parameter fails
  // heterogeneously in only ~60% of runs. Across its generated assignments,
  // more first trials can only improve detection, and with three trials the
  // miss probability (0.4^3) is gone for every assignment we generate.
  std::vector<GeneratedInstance> instances;
  for (const char* group : {"ResourceManager", "NodeManager"}) {
    for (bool polarity : {true, false}) {
      instances.push_back(MakeInstance(
          "miniyarn.TestRmWorkPreservingRecovery",
          "yarn.resourcemanager.work-preserving-recovery.enabled",
          ValueAssigner::UniformGroup(group, polarity ? "true" : "false",
                                      polarity ? "false" : "true")));
    }
  }

  int detected_single = 0;
  int detected_triple = 0;
  for (const GeneratedInstance& instance : instances) {
    int64_t executions = 0;
    if (TestRunner(1e-4, 1).Verify(instance, &executions).kind ==
        Verdict::Kind::kConfirmedUnsafe) {
      ++detected_single;
    }
    executions = 0;
    if (TestRunner(1e-4, 3).Verify(instance, &executions).kind ==
        Verdict::Kind::kConfirmedUnsafe) {
      ++detected_triple;
    }
  }
  EXPECT_GE(detected_triple, detected_single);
  EXPECT_EQ(detected_triple, static_cast<int>(instances.size()))
      << "three first trials must catch the ~60% failure on every assignment";
}

TEST(TestRunnerTest, ExecutionCountingIsExact) {
  GeneratedInstance instance = MakeInstance(
      "minikv.TestThriftAdminCreateTable", "hbase.regionserver.thrift.framed",
      ValueAssigner::UniformGroup("ThriftServer", "true", "false"));
  TestRunner runner;
  int64_t executions = 0;
  Verdict verdict = runner.Verify(instance, &executions);
  ASSERT_EQ(verdict.kind, Verdict::Kind::kConfirmedUnsafe);
  EXPECT_EQ(executions, verdict.hetero_trials + verdict.homo_trials);
}

}  // namespace
}  // namespace zebra
