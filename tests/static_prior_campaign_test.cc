// End-to-end: the zebralint static prior plugged into the campaign.
//
//  * pruning  — never-read schema parameters shrink the enumeration
//    (after_static < original) without losing a single finding;
//  * ranking  — wire-tainted-first ordering reaches the first true detection
//    in strictly fewer unit-test executions than the expected unprioritized
//    order (mean over seeded random param orders; plain alphabetical order
//    is not an honest baseline because dfs.block.access.token.enable — a
//    seeded-unsafe parameter — happens to sort nearly first).
//
// Everything here is deterministic: the simulator is virtual-time and the
// baseline shuffles use fixed seeds.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/analysis/static_prior.h"
#include "src/core/campaign.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/ground_truth.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

const analysis::StaticPriorReport& Prior() {
  static const auto* kPrior = [] {
    analysis::StaticAnalyzer analyzer;
    EXPECT_GT(analyzer.AddTree(ZEBRALINT_SOURCE_ROOT), 0);
    return new analysis::StaticPriorReport(analyzer.Analyze(&FullSchema()));
  }();
  return *kPrior;
}

CampaignReport RunMiniDfs(const analysis::StaticPriorReport* prior,
                          uint64_t shuffle_seed) {
  CampaignOptions options;
  options.apps = {"minidfs"};
  // Individual verification: with pooling every parameter shares the same
  // pool run, so ordering cannot shorten time-to-first-detection there.
  options.enable_pooling = false;
  options.static_prior = prior;
  options.shuffle_order_seed = shuffle_seed;
  Campaign campaign(FullSchema(), FullCorpus(), options);
  return campaign.Run();
}

TEST(StaticPriorCampaign, PruningShrinksEnumerationWithoutLosingFindings) {
  CampaignReport with_prior = RunMiniDfs(&Prior(), 0);
  CampaignReport without_prior = RunMiniDfs(nullptr, 0);

  // The static stage sits between Table 5 row 1 and the pre-run row.
  EXPECT_LT(with_prior.TotalAfterStatic(), with_prior.TotalOriginal());
  EXPECT_GE(with_prior.TotalAfterStatic(), with_prior.TotalAfterPrerun());
  // No prior => no pruning.
  EXPECT_EQ(without_prior.TotalAfterStatic(), without_prior.TotalOriginal());

  // Pruning must not cost findings.
  std::set<std::string> pruned_findings, full_findings;
  for (const auto& [param, finding] : with_prior.findings) {
    pruned_findings.insert(param);
  }
  for (const auto& [param, finding] : without_prior.findings) {
    full_findings.insert(param);
  }
  EXPECT_EQ(pruned_findings, full_findings);
}

TEST(StaticPriorCampaign, PrioritizedOrderDetectsFirstUnsafeSooner) {
  CampaignReport prioritized = RunMiniDfs(&Prior(), 0);
  ASSERT_GT(prioritized.runs_to_first_detection, 0);
  // The first detection is a true positive, not a seeded false-positive.
  EXPECT_TRUE(IsExpectedUnsafe(prioritized.first_detection_param))
      << prioritized.first_detection_param;

  int64_t baseline_total = 0;
  const std::vector<uint64_t> kSeeds = {1, 2, 3, 4, 5};
  for (uint64_t seed : kSeeds) {
    CampaignReport baseline = RunMiniDfs(nullptr, seed);
    ASSERT_GT(baseline.runs_to_first_detection, 0);
    baseline_total += baseline.runs_to_first_detection;
  }
  double baseline_mean =
      static_cast<double>(baseline_total) / static_cast<double>(kSeeds.size());

  // Strictly fewer executions to the first true detection than the expected
  // unprioritized cost.
  EXPECT_LT(static_cast<double>(prioritized.runs_to_first_detection),
            baseline_mean)
      << "prioritized=" << prioritized.runs_to_first_detection
      << " baseline mean=" << baseline_mean;
}

TEST(StaticPriorCampaign, GeneratedPlansCarryPriorities) {
  TestGenerator generator(FullSchema(), FullCorpus(),
                          GeneratorOptions{true, true, &Prior()});
  int64_t executions = 0;
  auto records = generator.PreRunApp("minidfs", &executions);
  ASSERT_FALSE(records.empty());
  bool saw_wire = false;
  for (const PreRunRecord& record : records) {
    int64_t before_uncertainty = 0;
    for (const GeneratedInstance& instance :
         generator.Generate(record, &before_uncertainty)) {
      if (instance.plan.param == "dfs.heartbeat.interval") {
        // Wire-tainted, and timer-flavored sinks push it above the floor.
        EXPECT_GE(instance.plan.static_priority, analysis::kPriorityWire);
        EXPECT_LT(instance.plan.static_priority,
                  analysis::kPriorityWireCeiling);
        saw_wire = true;
      }
      EXPECT_GT(instance.plan.static_priority, 0.0)
          << "never-read params must be pruned, not generated: "
          << instance.plan.param;
    }
  }
  EXPECT_TRUE(saw_wire);
}

}  // namespace
}  // namespace zebra
