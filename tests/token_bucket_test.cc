// Tests for the token-bucket bandwidth model.

#include "src/sim/token_bucket.h"

#include <gtest/gtest.h>

namespace zebra {
namespace {

TEST(TokenBucketTest, StartsWithOneSecondOfBurst) {
  TokenBucket bucket(1000);
  EXPECT_TRUE(bucket.TryConsume(1000, 0));
  EXPECT_FALSE(bucket.TryConsume(1, 0));
}

TEST(TokenBucketTest, RefillsOverTime) {
  TokenBucket bucket(1000);
  EXPECT_TRUE(bucket.TryConsume(1000, 0));
  EXPECT_FALSE(bucket.TryConsume(500, 100));  // only 100 tokens earned
  EXPECT_TRUE(bucket.TryConsume(500, 500));   // 100 + 400 more earned
}

TEST(TokenBucketTest, CapsAtOneSecondOfTokens) {
  TokenBucket bucket(1000);
  EXPECT_TRUE(bucket.TryConsume(1000, 10000));
  EXPECT_FALSE(bucket.TryConsume(1, 10000));  // no accumulation beyond 1 s
}

TEST(TokenBucketTest, MsUntilAvailable) {
  TokenBucket bucket(1000);
  EXPECT_EQ(bucket.MsUntilAvailable(500, 0), 0);
  ASSERT_TRUE(bucket.TryConsume(1000, 0));
  EXPECT_EQ(bucket.MsUntilAvailable(500, 0), 500);
  EXPECT_EQ(bucket.MsUntilAvailable(1, 0), 1);
}

TEST(TokenBucketTest, ForceConsumeReportsRecoveryTime) {
  TokenBucket bucket(1000);
  int64_t ready = bucket.ForceConsume(3000, 0);
  EXPECT_EQ(ready, 2000);  // 2000-token deficit at 1000/s
  EXPECT_FALSE(bucket.TryConsume(1, 1999));
  EXPECT_TRUE(bucket.TryConsume(1, 2001));
}

TEST(TokenBucketTest, ZeroRateNeverRefills) {
  TokenBucket bucket(0);
  EXPECT_FALSE(bucket.TryConsume(1, 0));
  EXPECT_EQ(bucket.MsUntilAvailable(1, 1000000), -1);
}

class TokenBucketRateSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(TokenBucketRateSweep, SustainedThroughputMatchesRate) {
  const int64_t rate = GetParam();
  TokenBucket bucket(rate);
  int64_t consumed = 0;
  for (int64_t now = 0; now <= 10000; now += 100) {
    while (bucket.TryConsume(rate / 10, now)) {
      consumed += rate / 10;
    }
  }
  // Over 10 s the bucket should deliver ~10x the per-second rate (+1 burst).
  EXPECT_GE(consumed, 10 * rate);
  EXPECT_LE(consumed, 11 * rate + rate / 10);
}

INSTANTIATE_TEST_SUITE_P(Rates, TokenBucketRateSweep,
                         ::testing::Values(1000, 1048576, 10485760));

}  // namespace
}  // namespace zebra
