// Tests for the work-stealing scheduler: the whole point of the design is
// that findings, Table-5 stage counts, and runs_to_first_detection are
// bitwise-identical to the sequential campaign at every worker count — the
// pool only changes wall-clock, never results.

#include "src/core/parallel_scheduler.h"

#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

// Full structural equality against the sequential reference. Durations and
// wall-clock are timing, not results, and are deliberately not compared.
void ExpectIdenticalResults(const CampaignReport& actual,
                            const CampaignReport& expected,
                            const std::string& label) {
  SCOPED_TRACE(label);

  ASSERT_EQ(actual.per_app.size(), expected.per_app.size());
  for (const auto& [app, counts] : expected.per_app) {
    ASSERT_TRUE(actual.per_app.count(app) > 0) << app;
    const AppStageCounts& got = actual.per_app.at(app);
    EXPECT_EQ(got.original, counts.original) << app;
    EXPECT_EQ(got.after_static, counts.after_static) << app;
    EXPECT_EQ(got.after_prerun, counts.after_prerun) << app;
    EXPECT_EQ(got.after_uncertainty, counts.after_uncertainty) << app;
    EXPECT_EQ(got.executed_runs, counts.executed_runs) << app;
    EXPECT_EQ(got.tests_total, counts.tests_total) << app;
    EXPECT_EQ(got.tests_with_nodes, counts.tests_with_nodes) << app;
  }

  ASSERT_EQ(actual.sharing.size(), expected.sharing.size());
  for (const auto& [app, sharing] : expected.sharing) {
    ASSERT_TRUE(actual.sharing.count(app) > 0) << app;
    EXPECT_EQ(actual.sharing.at(app).tests_with_conf_usage,
              sharing.tests_with_conf_usage)
        << app;
    EXPECT_EQ(actual.sharing.at(app).tests_with_sharing, sharing.tests_with_sharing)
        << app;
  }

  ASSERT_EQ(actual.findings.size(), expected.findings.size());
  for (const auto& [param, finding] : expected.findings) {
    ASSERT_TRUE(actual.findings.count(param) > 0) << param;
    const ParamFinding& got = actual.findings.at(param);
    EXPECT_EQ(got.owning_app, finding.owning_app) << param;
    EXPECT_EQ(got.witness_tests, finding.witness_tests) << param;
    EXPECT_EQ(got.example_failure, finding.example_failure) << param;
    // Bitwise: the wire format round-trips doubles at full precision.
    EXPECT_EQ(got.best_p_value, finding.best_p_value) << param;
  }

  EXPECT_EQ(actual.first_trial_candidates, expected.first_trial_candidates);
  EXPECT_EQ(actual.filtered_by_hypothesis, expected.filtered_by_hypothesis);
  EXPECT_EQ(actual.total_unit_test_runs, expected.total_unit_test_runs);
  EXPECT_EQ(actual.runs_to_first_detection, expected.runs_to_first_detection);
  EXPECT_EQ(actual.first_detection_param, expected.first_detection_param);
  if (actual.cache_hits == 0) {
    // Without memoization every counted run executes, so the duration
    // profile has exactly as many samples as the reference. Cache hits
    // skip execution and legitimately record fewer.
    EXPECT_EQ(actual.run_durations_seconds.size(),
              expected.run_durations_seconds.size());
  }
}

TEST(ParallelSchedulerTest, BitwiseIdenticalToSequentialAtEveryWorkerCount) {
  CampaignOptions options;  // all apps: exercises cross-unit frequent-failure
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();
  ASSERT_GT(expected.findings.size(), 0u);
  ASSERT_GT(expected.runs_to_first_detection, 0);

  for (int workers : {1, 2, 4, 8}) {
    CampaignReport parallel =
        RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, workers);
    ExpectIdenticalResults(parallel, expected,
                           "workers=" + std::to_string(workers));
  }
}

TEST(ParallelSchedulerTest, SurvivesWorkerCrashMidCampaign) {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();

  // Worker 0 always receives the first unit first, so the crash triggers
  // deterministically; worker 1 must pick the unit up and finish alone.
  ParallelCampaignOptions parallel;
  parallel.workers = 2;
  parallel.crash_on_test_id = "minikv.TestPutGet";
  parallel.crash_worker_index = 0;

  CampaignReport report =
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, parallel);
  ExpectIdenticalResults(report, expected, "one worker crashed");
}

TEST(ParallelSchedulerTest, AllWorkersDeadThrows) {
  CampaignOptions options;
  options.apps = {"minikv"};
  // A single worker that crashes on the very first unit leaves nobody to
  // steal the work.
  ParallelCampaignOptions parallel;
  parallel.workers = 1;
  parallel.crash_on_test_id = "minikv.TestPutGet";
  parallel.crash_worker_index = 0;
  EXPECT_THROW(
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, parallel),
      Error);
}

TEST(ParallelSchedulerTest, ZeroWorkersRejected) {
  CampaignOptions options;
  options.apps = {"minikv"};
  EXPECT_THROW(RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, 0),
               Error);
}

TEST(ParallelSchedulerTest, RunCacheDoesNotChangeResultsAndRecordsHits) {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();
  ASSERT_EQ(expected.cache_hits, 0);

  CampaignOptions cached_options = options;
  cached_options.enable_run_cache = true;
  CampaignReport cached = RunWorkStealingCampaign(FullSchema(), FullCorpus(),
                                                  cached_options, /*workers=*/2);
  ExpectIdenticalResults(cached, expected, "cache enabled");
  EXPECT_GT(cached.cache_hits, 0);
  EXPECT_GT(cached.cache_misses, 0);
}

TEST(ParallelSchedulerTest, EquivCacheBitwiseIdenticalAtEveryWorkerCount) {
  // The observational-equivalence layer serves results across *different*
  // plans, so its determinism contract is stronger than the exact cache's:
  // findings, Table-5 stage counts, and runs_to_first_detection must match
  // the no-cache sequential reference bitwise — sequentially and at every
  // worker count. Equiv counters themselves are accounting (scheduling-
  // dependent) and are deliberately outside the contract, like cache_hits.
  CampaignOptions options;  // all apps
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();
  ASSERT_GT(expected.findings.size(), 0u);

  CampaignOptions equiv_options = options;
  equiv_options.enable_run_cache = true;
  equiv_options.enable_equiv_cache = true;

  Campaign seq_equiv(FullSchema(), FullCorpus(), equiv_options);
  CampaignReport sequential_equiv = seq_equiv.Run();
  ExpectIdenticalResults(sequential_equiv, expected, "sequential equiv");
  EXPECT_GT(sequential_equiv.equiv_hits, 0);

  for (int workers : {1, 2, 4, 8}) {
    CampaignReport parallel = RunWorkStealingCampaign(FullSchema(), FullCorpus(),
                                                      equiv_options, workers);
    ExpectIdenticalResults(parallel, expected,
                           "equiv workers=" + std::to_string(workers));
  }
}

TEST(ParallelSchedulerTest, EquivCacheBitwiseIdenticalUnprunedRegime) {
  // The regime where the layer actually collapses whole equivalence classes
  // (generation without pre-run read pruning): most plans differ only in
  // override entries no targeted conf reads, and the cache must dedup them
  // without moving a single finding.
  CampaignOptions options;
  options.apps = {"minikv", "ministream", "apptools"};
  options.prune_unread_instances = false;
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();
  ASSERT_GT(expected.findings.size(), 0u);

  CampaignOptions equiv_options = options;
  equiv_options.enable_run_cache = true;
  equiv_options.enable_equiv_cache = true;

  Campaign seq_equiv(FullSchema(), FullCorpus(), equiv_options);
  CampaignReport sequential_equiv = seq_equiv.Run();
  ExpectIdenticalResults(sequential_equiv, expected, "sequential equiv unpruned");
  EXPECT_GT(sequential_equiv.equiv_hits, 0);

  for (int workers : {2, 4}) {
    CampaignReport parallel = RunWorkStealingCampaign(FullSchema(), FullCorpus(),
                                                      equiv_options, workers);
    ExpectIdenticalResults(parallel, expected,
                           "equiv unpruned workers=" + std::to_string(workers));
  }
}

TEST(ParallelSchedulerTest, MoreWorkersThanUnitsIsClamped) {
  CampaignOptions options;
  options.apps = {"apptools"};  // smallest corpus
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();
  CampaignReport parallel = RunWorkStealingCampaign(FullSchema(), FullCorpus(),
                                                    options, /*workers=*/64);
  ExpectIdenticalResults(parallel, expected, "clamped workers");
}

}  // namespace
}  // namespace zebra
