// Tests for the shared IPC component — the seeded false-positive mechanism —
// and the RPC gate built on it.

#include "src/apps/appcommon/ipc_component.h"

#include <gtest/gtest.h>

#include "src/apps/appcommon/common_params.h"
#include "src/apps/appcommon/rpc_gate.h"
#include "src/common/error.h"
#include "src/conf/conf_agent.h"
#include "src/conf/configuration.h"
#include "src/runtime/node_init.h"

namespace zebra {
namespace {

TEST(IpcComponentTest, SharedInstanceIsReusedAcrossNodes) {
  Cluster cluster;
  int node_a = 0, node_b = 0;
  IpcComponent& ipc1 = GetIpc(cluster, &node_a);
  IpcComponent& ipc2 = GetIpc(cluster, &node_b);
  EXPECT_EQ(&ipc1, &ipc2);
}

TEST(IpcComponentTest, DisabledSharingGivesPrivateInstances) {
  Cluster cluster;
  cluster.SetFlag(kFlagIpcSharingDisabled, true);
  int node_a = 0, node_b = 0;
  IpcComponent& ipc1 = GetIpc(cluster, &node_a);
  IpcComponent& ipc2 = GetIpc(cluster, &node_b);
  EXPECT_NE(&ipc1, &ipc2);
  EXPECT_EQ(&GetIpc(cluster, &node_a), &ipc1);
}

TEST(IpcComponentTest, ConsistentConfigsPing) {
  Cluster cluster;
  int node = 0;
  IpcComponent& ipc = GetIpc(cluster, &node);
  Configuration conf;
  EXPECT_NO_THROW(ipc.Ping(conf));
  EXPECT_EQ(ipc.ping_count(), 1);
}

TEST(IpcComponentTest, DisagreeingPingIntervalFails) {
  Cluster cluster;
  int node = 0;
  IpcComponent& ipc = GetIpc(cluster, &node);
  Configuration conf;
  conf.SetInt(kIpcPingInterval, 12345);
  EXPECT_THROW(ipc.Ping(conf), RpcError);
}

TEST(IpcComponentTest, DisagreeingRetriesFail) {
  Cluster cluster;
  int node = 0;
  IpcComponent& ipc = GetIpc(cluster, &node);
  Configuration conf;
  conf.SetInt(kIpcConnectMaxRetries, 1);
  EXPECT_THROW(ipc.Ping(conf), RpcError);
}

TEST(RpcGateTest, MatchedProtectionPasses) {
  Cluster cluster;
  int server = 0;
  Configuration caller;
  Configuration callee;
  EXPECT_NO_THROW(RpcGate(cluster, &server, caller, callee, "svc"));
}

TEST(RpcGateTest, MismatchedProtectionFailsHandshake) {
  Cluster cluster;
  int server = 0;
  Configuration caller;
  caller.Set(kRpcProtection, "privacy");
  Configuration callee;
  callee.Set(kRpcProtection, "authentication");
  EXPECT_THROW(RpcGate(cluster, &server, caller, callee, "svc"), HandshakeError);
}

TEST(RpcGateTest, HeterogeneousPingIntervalTriggersTheFalsePositive) {
  // The §7.1 mechanism: the shared component's own conf belongs to node A
  // ("ServerA", which initialized it), while the conf it is asked to honor
  // carries a different node's assigned value.
  TestPlan plan;
  ParamPlan p;
  p.param = kIpcPingInterval;
  p.assigner = ValueAssigner::UniformGroup("ServerA", "10000", "60000");
  plan.Add(p);

  ConfAgentSession session(std::move(plan));
  Cluster cluster;
  int server_a = 0;
  {
    NodeInitScope scope("annot-ipc-test", &server_a, "ServerA", __FILE__, __LINE__);
    GetIpc(cluster, &server_a);  // own conf created inside ServerA's init
    scope.Finish();
  }
  Configuration other_conf;  // belongs to... no node context, nodes exist
  // ServerA's component conf reads 10000; a conf carrying the other value
  // (here the default 60000) disagrees -> the keepalive negotiation fails.
  IpcComponent& ipc = GetIpc(cluster, &server_a);
  EXPECT_THROW(ipc.Ping(other_conf), RpcError);
  session.End();
}

TEST(RpcLongOperationTest, MatchedTimeoutsComplete) {
  Cluster cluster;
  Configuration caller;
  Configuration callee;
  EXPECT_NO_THROW(RpcLongOperation(cluster, "op", caller, callee, 5000));
  EXPECT_EQ(cluster.NowMs(), 5000);
}

TEST(RpcLongOperationTest, ShortClientTimeoutAgainstSlowPacingFails) {
  Cluster cluster;
  Configuration caller;
  caller.SetInt(kRpcTimeoutMs, 1000);
  Configuration callee;
  callee.SetInt(kRpcTimeoutMs, 300000);
  EXPECT_THROW(RpcLongOperation(cluster, "op", caller, callee, 5000), TimeoutError);
}

TEST(RpcLongOperationTest, HomogeneousShortTimeoutStillCompletes) {
  Cluster cluster;
  Configuration caller;
  caller.SetInt(kRpcTimeoutMs, 1000);
  Configuration callee;
  callee.SetInt(kRpcTimeoutMs, 1000);
  EXPECT_NO_THROW(RpcLongOperation(cluster, "op", caller, callee, 5000));
}

}  // namespace
}  // namespace zebra
