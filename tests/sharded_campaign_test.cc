// Tests for the fork-based sharded campaign: process isolation must not
// change any result relative to the sequential run.

#include "src/core/sharded_campaign.h"

#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

TEST(ShardedCampaignTest, MatchesSequentialResults) {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};

  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();

  CampaignReport sharded =
      RunShardedCampaign(FullSchema(), FullCorpus(), options, /*workers=*/2);

  EXPECT_EQ(sharded.findings.size(), expected.findings.size());
  for (const auto& [param, finding] : expected.findings) {
    ASSERT_TRUE(sharded.findings.count(param) > 0) << param;
    EXPECT_EQ(sharded.findings.at(param).witness_tests, finding.witness_tests)
        << param;
  }
  EXPECT_EQ(sharded.TotalExecuted(), expected.TotalExecuted());
  EXPECT_EQ(sharded.per_app.at("minikv").after_prerun,
            expected.per_app.at("minikv").after_prerun);
  EXPECT_EQ(sharded.first_trial_candidates, expected.first_trial_candidates);
}

TEST(ShardedCampaignTest, SingleWorkerDegeneratesToSequential) {
  CampaignOptions options;
  options.apps = {"minikv"};
  CampaignReport sharded =
      RunShardedCampaign(FullSchema(), FullCorpus(), options, /*workers=*/1);
  EXPECT_TRUE(sharded.findings.count("hbase.regionserver.thrift.compact") > 0);
  EXPECT_TRUE(sharded.findings.count("hbase.regionserver.thrift.framed") > 0);
}

TEST(ShardedCampaignTest, MoreWorkersThanAppsIsClamped) {
  CampaignOptions options;
  options.apps = {"ministream"};
  CampaignReport sharded =
      RunShardedCampaign(FullSchema(), FullCorpus(), options, /*workers=*/8);
  EXPECT_EQ(sharded.per_app.size(), 1u);
  EXPECT_TRUE(sharded.findings.count("akka.ssl.enabled") > 0);
}

TEST(ShardedCampaignTest, ZeroWorkersRejected) {
  CampaignOptions options;
  options.apps = {"minikv"};
  EXPECT_THROW(RunShardedCampaign(FullSchema(), FullCorpus(), options, 0), Error);
}

// Shared check for the fault-recovery tests below: every injected shard
// failure must be recovered by an in-parent re-run, so the merged report
// matches the sequential one finding-for-finding.
void ExpectMatchesSequential(const CampaignReport& got,
                             const CampaignReport& expected) {
  ASSERT_EQ(got.findings.size(), expected.findings.size());
  for (const auto& [param, finding] : expected.findings) {
    ASSERT_TRUE(got.findings.count(param) > 0) << param;
    EXPECT_EQ(got.findings.at(param).witness_tests, finding.witness_tests)
        << param;
  }
  EXPECT_EQ(got.TotalExecuted(), expected.TotalExecuted());
  for (const auto& [app, stage] : expected.per_app) {
    ASSERT_TRUE(got.per_app.count(app) > 0) << app;
    EXPECT_EQ(got.per_app.at(app).after_prerun, stage.after_prerun) << app;
  }
}

TEST(ShardedCampaignTest, SurvivesWorkerCrash) {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();

  ShardedCampaignOptions sharded;
  sharded.workers = 2;
  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  crash.worker = 0;  // shard 0 _Exits before producing a report
  sharded.faults.specs.push_back(crash);

  CampaignReport got =
      RunShardedCampaign(FullSchema(), FullCorpus(), options, sharded);
  ExpectMatchesSequential(got, expected);
  EXPECT_GE(got.requeued_units, 1);
  EXPECT_EQ(got.hung_workers, 0);
}

TEST(ShardedCampaignTest, SurvivesGarbledShardReport) {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();

  ShardedCampaignOptions sharded;
  sharded.workers = 2;
  FaultSpec garble;
  garble.kind = FaultKind::kGarbledFrame;
  garble.worker = 1;  // shard 1 exits 0 but its report fails to parse
  sharded.faults.specs.push_back(garble);

  CampaignReport got =
      RunShardedCampaign(FullSchema(), FullCorpus(), options, sharded);
  ExpectMatchesSequential(got, expected);
  EXPECT_GE(got.requeued_units, 1);
}

TEST(ShardedCampaignTest, WatchdogRecoversHungShard) {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};
  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();

  // Tight floor so the test stays fast; the healthy shard finishes well
  // before the deadline and seeds the p95 term for the hung one.
  options.watchdog_floor_seconds = 0.3;
  options.watchdog_multiplier = 4.0;
  ShardedCampaignOptions sharded;
  sharded.workers = 2;
  FaultSpec hang;
  hang.kind = FaultKind::kHang;
  hang.worker = 0;
  sharded.faults.specs.push_back(hang);

  CampaignReport got =
      RunShardedCampaign(FullSchema(), FullCorpus(), options, sharded);
  // The recovery re-run uses the same options, so compare against the
  // unmodified sequential reference: watchdog tuning never changes findings.
  ExpectMatchesSequential(got, expected);
  EXPECT_GE(got.hung_workers, 1);
  EXPECT_GE(got.requeued_units, 1);
}

TEST(ShardedCampaignTest, FullCorpusAcrossThreeWorkers) {
  CampaignOptions options;  // all apps
  CampaignReport sharded =
      RunShardedCampaign(FullSchema(), FullCorpus(), options, /*workers=*/3);
  EXPECT_EQ(sharded.per_app.size(), 6u);
  // The shared-library finding must merge witnesses from several shards.
  ASSERT_TRUE(sharded.findings.count("hadoop.rpc.protection") > 0);
  EXPECT_GE(sharded.findings.at("hadoop.rpc.protection").witness_tests.size(), 2u);
}

}  // namespace
}  // namespace zebra
