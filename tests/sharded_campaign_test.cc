// Tests for the fork-based sharded campaign: process isolation must not
// change any result relative to the sequential run.

#include "src/core/sharded_campaign.h"

#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

TEST(ShardedCampaignTest, MatchesSequentialResults) {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};

  Campaign sequential(FullSchema(), FullCorpus(), options);
  CampaignReport expected = sequential.Run();

  CampaignReport sharded =
      RunShardedCampaign(FullSchema(), FullCorpus(), options, /*workers=*/2);

  EXPECT_EQ(sharded.findings.size(), expected.findings.size());
  for (const auto& [param, finding] : expected.findings) {
    ASSERT_TRUE(sharded.findings.count(param) > 0) << param;
    EXPECT_EQ(sharded.findings.at(param).witness_tests, finding.witness_tests)
        << param;
  }
  EXPECT_EQ(sharded.TotalExecuted(), expected.TotalExecuted());
  EXPECT_EQ(sharded.per_app.at("minikv").after_prerun,
            expected.per_app.at("minikv").after_prerun);
  EXPECT_EQ(sharded.first_trial_candidates, expected.first_trial_candidates);
}

TEST(ShardedCampaignTest, SingleWorkerDegeneratesToSequential) {
  CampaignOptions options;
  options.apps = {"minikv"};
  CampaignReport sharded =
      RunShardedCampaign(FullSchema(), FullCorpus(), options, /*workers=*/1);
  EXPECT_TRUE(sharded.findings.count("hbase.regionserver.thrift.compact") > 0);
  EXPECT_TRUE(sharded.findings.count("hbase.regionserver.thrift.framed") > 0);
}

TEST(ShardedCampaignTest, MoreWorkersThanAppsIsClamped) {
  CampaignOptions options;
  options.apps = {"ministream"};
  CampaignReport sharded =
      RunShardedCampaign(FullSchema(), FullCorpus(), options, /*workers=*/8);
  EXPECT_EQ(sharded.per_app.size(), 1u);
  EXPECT_TRUE(sharded.findings.count("akka.ssl.enabled") > 0);
}

TEST(ShardedCampaignTest, ZeroWorkersRejected) {
  CampaignOptions options;
  options.apps = {"minikv"};
  EXPECT_THROW(RunShardedCampaign(FullSchema(), FullCorpus(), options, 0), Error);
}

TEST(ShardedCampaignTest, FullCorpusAcrossThreeWorkers) {
  CampaignOptions options;  // all apps
  CampaignReport sharded =
      RunShardedCampaign(FullSchema(), FullCorpus(), options, /*workers=*/3);
  EXPECT_EQ(sharded.per_app.size(), 6u);
  // The shared-library finding must merge witnesses from several shards.
  ASSERT_TRUE(sharded.findings.count("hadoop.rpc.protection") > 0);
  EXPECT_GE(sharded.findings.at("hadoop.rpc.protection").witness_tests.size(), 2u);
}

}  // namespace
}  // namespace zebra
