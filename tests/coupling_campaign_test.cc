// The two CI gates of the flow-graph campaign integration:
//
//  * superset   — the coupling add-on phase can only ever ADD findings over
//    the enumerative baseline, and must leave runs_to_first_detection (the
//    prioritization metric) untouched;
//  * impacted-only — restricting a campaign to the parameters of a
//    `zebralint --diff` is identical to restricting it to the unit tests
//    whose pre-run reads intersect those parameters.
//
// Everything is deterministic (virtual-time simulator, fixed corpus).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/static_prior.h"
#include "src/core/campaign.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

const analysis::StaticPriorReport& Prior() {
  static const auto* kPrior = [] {
    analysis::StaticAnalyzer analyzer;
    EXPECT_GT(analyzer.AddTree(ZEBRALINT_SOURCE_ROOT), 0);
    return new analysis::StaticPriorReport(analyzer.Analyze(&FullSchema()));
  }();
  return *kPrior;
}

std::set<std::string> FindingParams(const CampaignReport& report) {
  std::set<std::string> params;
  for (const auto& [param, finding] : report.findings) {
    params.insert(param);
  }
  return params;
}

TEST(CouplingCampaign, PriorHasCouplingSets) {
  ASSERT_FALSE(Prior().coupling_sets.empty());
  for (const auto& group : Prior().coupling_sets) {
    EXPECT_GE(group.size(), 2u);
    EXPECT_LE(group.size(), static_cast<size_t>(analysis::kMaxCouplingSetSize));
    EXPECT_TRUE(std::is_sorted(group.begin(), group.end()));
  }
}

TEST(CouplingCampaign, GenerateCoupledIsCappedAndDeterministic) {
  TestGenerator generator(
      FullSchema(), FullCorpus(),
      GeneratorOptions{true, true, &Prior(), true, 4});
  bool saw_coupled = false;
  for (const std::string& app : {"minidfs", "minikv"}) {
    for (const PreRunRecord& record : generator.PreRunApp(app, nullptr)) {
      int64_t before = 0;
      auto instances = generator.Generate(record, &before);
      auto coupled = generator.GenerateCoupled(record, instances);
      EXPECT_LE(coupled.size(), 4u);
      for (const CoupledInstance& pair : coupled) {
        ASSERT_EQ(pair.plan.params().size(), 2u);
        ASSERT_EQ(pair.params.size(), 2u);
        EXPECT_EQ(pair.plan.params()[0].param, pair.params[0]);
        EXPECT_EQ(pair.plan.params()[1].param, pair.params[1]);
        EXPECT_NE(pair.params[0], pair.params[1]);
        saw_coupled = true;
      }
      // Deterministic: a second derivation produces the same pairs.
      auto again = generator.GenerateCoupled(record, instances);
      ASSERT_EQ(again.size(), coupled.size());
      for (size_t i = 0; i < coupled.size(); ++i) {
        EXPECT_EQ(again[i].params, coupled[i].params);
        EXPECT_EQ(again[i].plan.Fingerprint(), coupled[i].plan.Fingerprint());
      }
    }
  }
  EXPECT_TRUE(saw_coupled);
}

TEST(CouplingCampaign, CoupledPlansOnlyAddFindings) {
  CampaignOptions with_coupling;
  with_coupling.apps = {"minikv"};
  with_coupling.static_prior = &Prior();
  CampaignOptions without_coupling = with_coupling;
  without_coupling.enable_coupling_plans = false;

  CampaignReport with = Campaign(FullSchema(), FullCorpus(), with_coupling).Run();
  CampaignReport without =
      Campaign(FullSchema(), FullCorpus(), without_coupling).Run();

  // Superset gate: every baseline finding survives, witnesses included.
  for (const auto& [param, finding] : without.findings) {
    auto it = with.findings.find(param);
    ASSERT_NE(it, with.findings.end()) << "coupling lost finding " << param;
    EXPECT_EQ(it->second.witness_tests, finding.witness_tests);
  }
  EXPECT_GE(with.findings.size(), without.findings.size());

  // The add-on ran, and its runs are accounted for.
  EXPECT_GT(with.coupling_runs, 0);
  EXPECT_EQ(without.coupling_runs, 0);
  EXPECT_EQ(with.TotalExecuted(), without.TotalExecuted() + with.coupling_runs);

  // The prioritization metric is untouched by the add-on.
  EXPECT_EQ(with.runs_to_first_detection, without.runs_to_first_detection);
  EXPECT_EQ(with.first_detection_param, without.first_detection_param);
}

TEST(CouplingCampaign, ImpactedOnlyMatchesRestrictionToImpactedTests) {
  // The "code change" impacted exactly one parameter.
  const std::set<std::string> impacted = {"hbase.regionserver.thrift.framed"};

  // Reference restriction: the unit tests whose pre-run reads intersect it.
  TestGenerator generator(FullSchema(), FullCorpus(), GeneratorOptions{});
  std::set<std::string> impacted_tests;
  size_t tests_total = 0;
  for (const PreRunRecord& record : generator.PreRunApp("minikv", nullptr)) {
    ++tests_total;
    for (const std::string& param : record.result.report.AllParamsRead()) {
      if (impacted.count(param) > 0) {
        impacted_tests.insert(record.test->id);
        break;
      }
    }
  }
  ASSERT_FALSE(impacted_tests.empty());
  ASSERT_LT(impacted_tests.size(), tests_total)
      << "the restriction must actually skip something";

  CampaignOptions impacted_options;
  impacted_options.apps = {"minikv"};
  impacted_options.impacted_params = impacted;
  CampaignOptions reference_options;
  reference_options.apps = {"minikv"};
  reference_options.only_tests = impacted_tests;

  CampaignReport impacted_report =
      Campaign(FullSchema(), FullCorpus(), impacted_options).Run();
  CampaignReport reference =
      Campaign(FullSchema(), FullCorpus(), reference_options).Run();

  // Identity gate: same findings (params, witnesses, p-values, failures),
  // same stage counts, same detection accounting, same skip count.
  ASSERT_EQ(FindingParams(impacted_report), FindingParams(reference));
  for (const auto& [param, finding] : reference.findings) {
    const ParamFinding& other = impacted_report.findings.at(param);
    EXPECT_EQ(other.witness_tests, finding.witness_tests);
    EXPECT_EQ(other.best_p_value, finding.best_p_value);
    EXPECT_EQ(other.example_failure, finding.example_failure);
  }
  EXPECT_EQ(impacted_report.TotalAfterPrerun(), reference.TotalAfterPrerun());
  EXPECT_EQ(impacted_report.TotalAfterUncertainty(),
            reference.TotalAfterUncertainty());
  EXPECT_EQ(impacted_report.TotalExecuted(), reference.TotalExecuted());
  EXPECT_EQ(impacted_report.runs_to_first_detection,
            reference.runs_to_first_detection);
  EXPECT_EQ(impacted_report.first_detection_param,
            reference.first_detection_param);
  EXPECT_EQ(impacted_report.units_skipped, reference.units_skipped);
  EXPECT_GT(impacted_report.units_skipped, 0);

  // And the restriction is sound: it loses nothing a full campaign finds
  // about the impacted parameter.
  CampaignOptions full_options;
  full_options.apps = {"minikv"};
  CampaignReport full = Campaign(FullSchema(), FullCorpus(), full_options).Run();
  for (const std::string& param : impacted) {
    EXPECT_EQ(full.findings.count(param),
              impacted_report.findings.count(param));
  }
}

}  // namespace
}  // namespace zebra
