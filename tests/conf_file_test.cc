// Tests for configuration-file parsing and HeteroConf file sets.

#include "src/conf/conf_file.h"

#include <gtest/gtest.h>

#include "src/common/error.h"

namespace zebra {
namespace {

TEST(ParsePropertiesTest, BasicFile) {
  auto properties = ParseProperties(
      "# cluster defaults\n"
      "dfs.heartbeat.interval = 3\n"
      "dfs.checksum.type=CRC32C\n"
      "\n"
      "  dfs.replication =  2  \n");
  EXPECT_EQ(properties.size(), 3u);
  EXPECT_EQ(properties.at("dfs.heartbeat.interval"), "3");
  EXPECT_EQ(properties.at("dfs.checksum.type"), "CRC32C");
  EXPECT_EQ(properties.at("dfs.replication"), "2");
}

TEST(ParsePropertiesTest, ValueMayContainSpacesAndEquals) {
  auto properties = ParseProperties("addr = host:1234\nexpr = a=b\n");
  EXPECT_EQ(properties.at("addr"), "host:1234");
  EXPECT_EQ(properties.at("expr"), "a=b");
}

TEST(ParsePropertiesTest, MalformedLinesRejected) {
  EXPECT_THROW(ParseProperties("just-a-token\n"), Error);
  EXPECT_THROW(ParseProperties("= value-without-key\n"), Error);
}

TEST(ParsePropertiesTest, EmptyAndCommentOnlyFilesAreEmpty) {
  EXPECT_TRUE(ParseProperties("").empty());
  EXPECT_TRUE(ParseProperties("# only\n# comments\n").empty());
}

TEST(RenderPropertiesTest, RoundTripsThroughParse) {
  std::map<std::string, std::string> properties{{"b.key", "2"}, {"a.key", "1"}};
  EXPECT_EQ(ParseProperties(RenderProperties(properties)), properties);
}

TEST(ApplyPropertiesTest, PopulatesConfiguration) {
  Configuration conf;
  ApplyProperties(ParseProperties("x = 1\ny = true\n"), conf);
  EXPECT_EQ(conf.GetInt("x", 0), 1);
  EXPECT_TRUE(conf.GetBool("y", false));
}

TEST(ParseHadoopXmlTest, BasicSiteFile) {
  auto properties = ParseHadoopXml(
      "<?xml version=\"1.0\"?>\n"
      "<configuration>\n"
      "  <!-- cluster defaults -->\n"
      "  <property>\n"
      "    <name>dfs.heartbeat.interval</name>\n"
      "    <value>3</value>\n"
      "    <description>seconds between beats</description>\n"
      "  </property>\n"
      "  <property><name>dfs.checksum.type</name><value>CRC32C</value></property>\n"
      "</configuration>\n");
  EXPECT_EQ(properties.size(), 2u);
  EXPECT_EQ(properties.at("dfs.heartbeat.interval"), "3");
  EXPECT_EQ(properties.at("dfs.checksum.type"), "CRC32C");
}

TEST(ParseHadoopXmlTest, EscapedEntitiesRoundTrip) {
  std::map<std::string, std::string> properties{{"expr", "a<b && b>c"}};
  EXPECT_EQ(ParseHadoopXml(RenderHadoopXml(properties)), properties);
}

TEST(ParseHadoopXmlTest, MalformedDocumentsRejected) {
  EXPECT_THROW(ParseHadoopXml("<configuration>"), Error);
  EXPECT_THROW(ParseHadoopXml("<property><name>x</name></property>"), Error);
  EXPECT_THROW(ParseHadoopXml("<configuration><property><value>v</value>"
                              "</property></configuration>"),
               Error);
  EXPECT_THROW(
      ParseHadoopXml("<configuration><property><name>a</name><value>1</value>"
                     "</property><property><name>a</name><value>2</value>"
                     "</property></configuration>"),
      Error) << "duplicate names";
  EXPECT_THROW(ParseHadoopXml("<configuration><!-- open</configuration>"), Error);
}

TEST(ParseConfFileTest, AutoDetectsFormat) {
  EXPECT_EQ(ParseConfFile("k = v\n").at("k"), "v");
  EXPECT_EQ(ParseConfFile("<configuration><property><name>k</name>"
                          "<value>v</value></property></configuration>")
                .at("k"),
            "v");
}

TEST(ConfFileSetTest, MixedFormatsInOneSet) {
  ConfFileSet set;
  set.AddFile("nn-1", "dfs.checksum.type = CRC32C\n");
  set.AddFile("dn-1",
              "<configuration><property><name>dfs.checksum.type</name>"
              "<value>CRC32</value></property></configuration>");
  auto hetero = set.HeterogeneousParams();
  EXPECT_EQ(hetero.size(), 1u);
}

TEST(ConfFileSetTest, HomogeneousSetHasNoHeterogeneousParams) {
  ConfFileSet set;
  set.AddFile("nn-1", "dfs.checksum.type = CRC32C\n");
  set.AddFile("dn-1", "dfs.checksum.type = CRC32C\n");
  EXPECT_TRUE(set.IsHomogeneous());
  EXPECT_TRUE(set.HeterogeneousParams().empty());
}

TEST(ConfFileSetTest, DetectsDifferingValues) {
  ConfFileSet set;
  set.AddFile("dn-1", "dfs.datanode.balance.bandwidthPerSec = 1048576\n");
  set.AddFile("dn-2", "dfs.datanode.balance.bandwidthPerSec = 10485760\n");
  auto hetero = set.HeterogeneousParams();
  ASSERT_EQ(hetero.size(), 1u);
  EXPECT_EQ(*hetero.begin(), "dfs.datanode.balance.bandwidthPerSec");

  auto values = set.ValuesOf("dfs.datanode.balance.bandwidthPerSec");
  EXPECT_EQ(values.at("dn-1"), "1048576");
  EXPECT_EQ(values.at("dn-2"), "10485760");
}

TEST(ConfFileSetTest, AbsentKeysAreHomogeneousByDefault) {
  ConfFileSet set;
  set.AddFile("nn-1", "dfs.checksum.type = CRC32C\n");
  set.AddFile("dn-1", "");
  EXPECT_TRUE(set.IsHomogeneous());
  EXPECT_FALSE(set.HeterogeneousParams(/*absent_is_distinct=*/true).empty());
}

TEST(ConfFileSetTest, DuplicateNodeRejected) {
  ConfFileSet set;
  set.AddFile("dn-1", "");
  EXPECT_THROW(set.AddFile("dn-1", ""), Error);
}

TEST(ConfFileSetTest, FileForUnknownNodeThrows) {
  ConfFileSet set;
  EXPECT_THROW(set.FileFor("ghost"), Error);
}

TEST(ConfFileSetTest, NodeNamesListed) {
  ConfFileSet set;
  set.AddFile("a", "");
  set.AddFile("b", "");
  EXPECT_EQ(set.node_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(set.size(), 2);
}

}  // namespace
}  // namespace zebra
