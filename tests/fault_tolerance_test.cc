// Tests for the fault-tolerant campaign machinery: deterministic fault
// injection (crash / hang / garbled-frame / slow-worker), the watchdog
// deadline, poisoned-unit quarantine, and crash-safe journal/resume. The
// invariant under test everywhere: faults change how often units re-run and
// how long the campaign takes — never findings, Table-5 stage counts, or
// runs_to_first_detection, which must stay bitwise-identical to the
// uninterrupted sequential campaign (CI-gated via the *BitwiseIdentical*
// filter).
//
// Note on worker budgets: the pool is fixed — a crash, garble, or watchdog
// SIGKILL permanently retires one worker (the scheduler throws only when
// none remain) — so each test provisions one more worker than the faults it
// injects.

#include <sys/stat.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/common/error.h"
#include "src/core/campaign_journal.h"
#include "src/core/fault_injection.h"
#include "src/core/parallel_scheduler.h"
#include "src/core/watchdog.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

// Full structural equality against the sequential reference (same contract
// as parallel_scheduler_test.cc). Durations, wall-clock, and the
// fault-tolerance counters themselves are accounting, not results.
void ExpectIdenticalResults(const CampaignReport& actual,
                            const CampaignReport& expected,
                            const std::string& label) {
  SCOPED_TRACE(label);

  ASSERT_EQ(actual.per_app.size(), expected.per_app.size());
  for (const auto& [app, counts] : expected.per_app) {
    ASSERT_TRUE(actual.per_app.count(app) > 0) << app;
    const AppStageCounts& got = actual.per_app.at(app);
    EXPECT_EQ(got.original, counts.original) << app;
    EXPECT_EQ(got.after_static, counts.after_static) << app;
    EXPECT_EQ(got.after_prerun, counts.after_prerun) << app;
    EXPECT_EQ(got.after_uncertainty, counts.after_uncertainty) << app;
    EXPECT_EQ(got.executed_runs, counts.executed_runs) << app;
    EXPECT_EQ(got.tests_total, counts.tests_total) << app;
    EXPECT_EQ(got.tests_with_nodes, counts.tests_with_nodes) << app;
  }

  ASSERT_EQ(actual.findings.size(), expected.findings.size());
  for (const auto& [param, finding] : expected.findings) {
    ASSERT_TRUE(actual.findings.count(param) > 0) << param;
    const ParamFinding& got = actual.findings.at(param);
    EXPECT_EQ(got.owning_app, finding.owning_app) << param;
    EXPECT_EQ(got.witness_tests, finding.witness_tests) << param;
    EXPECT_EQ(got.example_failure, finding.example_failure) << param;
    EXPECT_EQ(got.best_p_value, finding.best_p_value) << param;
  }

  EXPECT_EQ(actual.first_trial_candidates, expected.first_trial_candidates);
  EXPECT_EQ(actual.filtered_by_hypothesis, expected.filtered_by_hypothesis);
  EXPECT_EQ(actual.total_unit_test_runs, expected.total_unit_test_runs);
  EXPECT_EQ(actual.runs_to_first_detection, expected.runs_to_first_detection);
  EXPECT_EQ(actual.first_detection_param, expected.first_detection_param);
}

CampaignOptions SmallCampaign() {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};
  return options;
}

CampaignReport SequentialReference(const CampaignOptions& options) {
  Campaign sequential(FullSchema(), FullCorpus(), options);
  return sequential.Run();
}

TEST(FaultPlanTest, DecisionsAreSeedDeterministicAndWorkerIndependent) {
  FaultPlan plan;
  plan.seed = 42;
  plan.crash_rate = 0.5;
  plan.garble_rate = 0.25;

  FaultSpec first;
  FaultSpec second;
  int fired = 0;
  for (int unit = 0; unit < 64; ++unit) {
    std::string test_id = "app.Test" + std::to_string(unit);
    bool a = plan.Decide(/*worker=*/0, test_id, /*attempt=*/0, &first);
    bool b = plan.Decide(/*worker=*/7, test_id, /*attempt=*/0, &second);
    // Replayable under any unit-to-worker assignment: the worker index must
    // not influence the decision.
    ASSERT_EQ(a, b) << test_id;
    if (a) {
      EXPECT_EQ(first.kind, second.kind) << test_id;
      ++fired;
    }
  }
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);

  // A different seed produces a different firing pattern.
  FaultPlan other = plan;
  other.seed = 43;
  int differences = 0;
  for (int unit = 0; unit < 64; ++unit) {
    std::string test_id = "app.Test" + std::to_string(unit);
    FaultSpec unused;
    if (plan.Decide(0, test_id, 0, &unused) !=
        other.Decide(0, test_id, 0, &unused)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultPlanTest, ExplicitSpecsMatchWildcards) {
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultKind::kHang;
  spec.test_id = "minikv.TestPutGet";
  spec.worker = -1;   // any worker
  spec.attempt = -1;  // any attempt
  plan.specs.push_back(spec);

  FaultSpec out;
  EXPECT_TRUE(plan.Decide(0, "minikv.TestPutGet", 0, &out));
  EXPECT_TRUE(plan.Decide(5, "minikv.TestPutGet", 3, &out));
  EXPECT_EQ(out.kind, FaultKind::kHang);
  EXPECT_FALSE(plan.Decide(0, "minikv.TestOther", 0, &out));
}

TEST(WatchdogTest, DeadlineFormula) {
  // Disabled floor disables the watchdog outright.
  EXPECT_EQ(WatchdogDeadlineSeconds(0.0, 8.0, {1.0, 2.0}), 0.0);
  EXPECT_EQ(WatchdogDeadlineSeconds(-1.0, 8.0, {1.0}), 0.0);
  // No samples yet: the floor alone covers the cold start.
  EXPECT_EQ(WatchdogDeadlineSeconds(60.0, 8.0, {}), 60.0);
  // floor + multiplier * p95.
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) {
    samples.push_back(static_cast<double>(i));  // p95 = 95
  }
  EXPECT_DOUBLE_EQ(WatchdogDeadlineSeconds(10.0, 2.0, samples), 10.0 + 2.0 * 95.0);
  EXPECT_DOUBLE_EQ(WatchdogDeadlineSeconds(1.0, 4.0, {0.5}), 1.0 + 4.0 * 0.5);
}

TEST(WatchdogTest, Percentile95ZeroSamplesFallsBackToFloor) {
  // The zero-samples regression: p95 of an empty window must be 0.0 — not a
  // read past the end, not NaN — so the deadline degrades to exactly the
  // structural floor until the first completion lands.
  EXPECT_EQ(Percentile95({}), 0.0);
  EXPECT_DOUBLE_EQ(WatchdogDeadlineSeconds(60.0, 8.0, {}), 60.0);
  EXPECT_DOUBLE_EQ(WatchdogDeadlineSeconds(0.25, 100.0, {}), 0.25);
}

TEST(WatchdogTest, Percentile95RankSelection) {
  // One sample is its own p95.
  EXPECT_DOUBLE_EQ(Percentile95({3.5}), 3.5);
  // Order-independent: the rank statistic sorts internally.
  EXPECT_DOUBLE_EQ(Percentile95({5.0, 1.0, 3.0}), 5.0);
  // 1..100 -> rank 95 exactly; 1..20 -> ceil(20 * 0.95) = rank 19.
  std::vector<double> hundred;
  for (int i = 1; i <= 100; ++i) {
    hundred.push_back(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(Percentile95(hundred), 95.0);
  std::vector<double> twenty;
  for (int i = 20; i >= 1; --i) {
    twenty.push_back(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(Percentile95(twenty), 19.0);
}

TEST(FaultToleranceTest, CrashPlanBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);
  ASSERT_GT(expected.findings.size(), 0u);

  // Three first-attempt crashes on three different units, three workers
  // lost; the fourth finishes the campaign.
  ParallelCampaignOptions parallel;
  parallel.workers = 4;
  for (const char* test_id :
       {"minikv.TestPutGet", "ministream.TestDataExchange",
        "minikv.TestRestStatus"}) {
    FaultSpec spec;
    spec.kind = FaultKind::kCrash;
    spec.test_id = test_id;
    spec.attempt = 0;
    parallel.faults.specs.push_back(spec);
  }

  CampaignReport report =
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, parallel);
  ExpectIdenticalResults(report, expected, "crash plan");
  EXPECT_GE(report.requeued_units, 1);
  EXPECT_TRUE(report.poisoned_units.empty());
}

TEST(FaultToleranceTest, HangWatchdogBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  // The very first unit hangs on its first attempt. The watchdog (tight
  // floor so the test stays fast) SIGKILLs the stuck worker; the survivor
  // re-runs the unit and the campaign must not notice.
  CampaignOptions tuned = options;
  tuned.watchdog_floor_seconds = 0.25;
  tuned.watchdog_multiplier = 4.0;

  ParallelCampaignOptions parallel;
  parallel.workers = 2;
  FaultSpec hang;
  hang.kind = FaultKind::kHang;
  hang.test_id = "minikv.TestPutGet";
  hang.attempt = 0;
  parallel.faults.specs.push_back(hang);

  CampaignReport report =
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), tuned, parallel);
  ExpectIdenticalResults(report, expected, "hang + watchdog");
  EXPECT_EQ(report.hung_workers, 1);
  EXPECT_GE(report.requeued_units, 1);
  EXPECT_TRUE(report.poisoned_units.empty());
}

TEST(FaultToleranceTest, GarbledFrameBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  ParallelCampaignOptions parallel;
  parallel.workers = 2;
  FaultSpec garble;
  garble.kind = FaultKind::kGarbledFrame;
  garble.test_id = "ministream.TestDataExchange";
  garble.attempt = 0;
  parallel.faults.specs.push_back(garble);

  CampaignReport report =
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, parallel);
  ExpectIdenticalResults(report, expected, "garbled frame");
  EXPECT_GE(report.requeued_units, 1);
}

TEST(FaultToleranceTest, SlowWorkerBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  // A slow worker must ride out the default watchdog untouched: slowness is
  // not a fault, just load.
  ParallelCampaignOptions parallel;
  parallel.workers = 2;
  FaultSpec slow;
  slow.kind = FaultKind::kSlowWorker;
  slow.test_id = "minikv.TestPutGet";
  slow.attempt = -1;
  slow.slow_seconds = 0.05;
  parallel.faults.specs.push_back(slow);

  CampaignReport report =
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, parallel);
  ExpectIdenticalResults(report, expected, "slow worker");
  EXPECT_EQ(report.hung_workers, 0);
  EXPECT_EQ(report.requeued_units, 0);
}

TEST(FaultToleranceTest, PoisonedUnitQuarantinedAndCampaignCompletes) {
  CampaignOptions options = SmallCampaign();
  options.watchdog_floor_seconds = 0.2;
  options.watchdog_multiplier = 4.0;
  options.unit_attempt_limit = 2;

  // This unit hangs on EVERY attempt: without quarantine the scheduler
  // would burn workers on it forever. After two watchdog kills it must be
  // poisoned, folded as an empty stub, and the rest of the campaign must
  // still complete with the one surviving worker.
  ParallelCampaignOptions parallel;
  parallel.workers = 3;
  FaultSpec hang;
  hang.kind = FaultKind::kHang;
  hang.test_id = "minikv.TestPutGet";
  hang.attempt = -1;
  parallel.faults.specs.push_back(hang);

  CampaignReport report =
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, parallel);
  ASSERT_EQ(report.poisoned_units.size(), 1u);
  EXPECT_EQ(report.poisoned_units[0], "minikv.TestPutGet");
  EXPECT_EQ(report.hung_workers, 2);
  // Both apps still ran to completion around the quarantined unit.
  EXPECT_EQ(report.per_app.size(), 2u);
  EXPECT_GT(report.total_unit_test_runs, 0);
}

TEST(FaultToleranceTest, JournalResumeBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);
  const std::string path = ::testing::TempDir() + "/fault_resume.zj";
  std::remove(path.c_str());

  // First invocation "crashes" (abort hook) after three folds; the journal
  // holds exactly those three unit results.
  ParallelCampaignOptions first;
  first.workers = 2;
  first.journal_path = path;
  first.abort_after_folds = 3;
  CampaignReport partial =
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, first);
  EXPECT_LT(partial.total_unit_test_runs, expected.total_unit_test_runs);

  // The resumed campaign replays the journal prefix and runs only the rest —
  // and must be bitwise-identical to the uninterrupted reference.
  ParallelCampaignOptions second;
  second.workers = 2;
  second.journal_path = path;
  second.resume = true;
  CampaignReport resumed =
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, second);
  ExpectIdenticalResults(resumed, expected, "journal resume");
  EXPECT_EQ(resumed.resumed_units, 3);
  std::remove(path.c_str());
}

TEST(FaultToleranceTest, GroupCommitJournalResumeBitwiseIdentical) {
  // Same crash/resume contract as JournalResumeBitwiseIdentical, but under
  // the batched sync policy: records ride several-per-fdatasync, the abort
  // lands mid-batch, and the resumed campaign must still be
  // bitwise-identical to the uninterrupted reference.
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);
  const std::string path = ::testing::TempDir() + "/fault_batch_resume.zj";
  std::remove(path.c_str());

  ParallelCampaignOptions first;
  first.workers = 2;
  first.journal_path = path;
  first.journal_sync_batch = 4;
  first.abort_after_folds = 3;  // mid-batch: 3 folded, none past a boundary
  CampaignReport partial =
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, first);
  EXPECT_LT(partial.total_unit_test_runs, expected.total_unit_test_runs);

  ParallelCampaignOptions second;
  second.workers = 2;
  second.journal_path = path;
  second.journal_sync_batch = 4;
  second.resume = true;
  CampaignReport resumed =
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, second);
  ExpectIdenticalResults(resumed, expected, "group-commit journal resume");
  EXPECT_EQ(resumed.resumed_units, 3);
  EXPECT_EQ(resumed.journal_append_failures, 0);
  std::remove(path.c_str());
}

TEST(FaultToleranceTest, TornJournalTailResumeBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);
  const std::string path = ::testing::TempDir() + "/fault_torn_resume.zj";
  std::remove(path.c_str());

  ParallelCampaignOptions first;
  first.workers = 2;
  first.journal_path = path;
  first.abort_after_folds = 5;
  RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, first);

  // Smear garbage over the tail of the last record, as a crash mid-append
  // would: the checksum rejects the record, resume keeps the 4-record
  // prefix, re-runs the rest, and the result is still bitwise-identical.
  struct stat info {};
  ASSERT_EQ(::stat(path.c_str(), &info), 0);
  ASSERT_GT(info.st_size, 16);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(info.st_size - 8);
    file.write("ZZZZZZZZ", 8);
  }

  ParallelCampaignOptions second;
  second.workers = 2;
  second.journal_path = path;
  second.resume = true;
  CampaignReport resumed =
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, second);
  ExpectIdenticalResults(resumed, expected, "torn journal resume");
  EXPECT_EQ(resumed.resumed_units, 4);
  std::remove(path.c_str());
}

TEST(FaultToleranceTest, ResumeWithDifferentCampaignThrows) {
  CampaignOptions options = SmallCampaign();
  const std::string path = ::testing::TempDir() + "/fault_mismatch.zj";
  std::remove(path.c_str());

  ParallelCampaignOptions first;
  first.workers = 1;
  first.journal_path = path;
  first.abort_after_folds = 2;
  RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, first);

  // Resuming with result-affecting options changed must refuse, not
  // silently mix two campaigns' results.
  CampaignOptions different = options;
  different.enable_pooling = false;
  ParallelCampaignOptions second;
  second.workers = 1;
  second.journal_path = path;
  second.resume = true;
  EXPECT_THROW(
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), different, second),
      Error);
  std::remove(path.c_str());
}

TEST(FaultToleranceTest, FaultsUnderJournalResumeBitwiseIdentical) {
  // Compose the layers: a crash fault during the first (aborted) run AND a
  // crash during the resumed run, with the journal carrying state across.
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);
  const std::string path = ::testing::TempDir() + "/fault_compose.zj";
  std::remove(path.c_str());

  ParallelCampaignOptions first;
  first.workers = 3;
  first.journal_path = path;
  first.abort_after_folds = 4;
  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  crash.test_id = "minikv.TestPutGet";
  crash.attempt = 0;
  first.faults.specs.push_back(crash);
  RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, first);

  ParallelCampaignOptions second;
  second.workers = 3;
  second.journal_path = path;
  second.resume = true;
  FaultSpec crash_later;
  crash_later.kind = FaultKind::kCrash;
  crash_later.test_id = "ministream.TestDataExchange";
  crash_later.attempt = 0;
  second.faults.specs.push_back(crash_later);
  CampaignReport resumed =
      RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, second);
  ExpectIdenticalResults(resumed, expected, "faults + journal resume");
  EXPECT_EQ(resumed.resumed_units, 4);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zebra
