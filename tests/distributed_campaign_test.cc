// Tests for the distributed campaign fabric: the checksummed TCP wire
// protocol, the deterministic network fault plane, and the coordinator/agent
// backend itself. The invariant mirrors fault_tolerance_test.cc: network
// faults change how often units re-run, how many agents die, and how long
// the campaign takes — never findings, Table-5 stage counts, or
// runs_to_first_detection, which must stay bitwise-identical to the
// uninterrupted sequential campaign at every fleet shape (CI-gated via the
// *BitwiseIdentical* / *Crash* / *Garbled* / *Resume* filters).
//
// Note on agent budgets: the fleet is fixed — a crash, drop, garble, or
// heartbeat retirement permanently removes one agent (the coordinator throws
// only when none remain) — so each fault test provisions one more agent than
// the faults it injects, exactly like the worker budgets in
// fault_tolerance_test.cc.

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/error.h"
#include "src/core/campaign_agent.h"
#include "src/core/campaign_executor.h"
#include "src/core/distributed_campaign.h"
#include "src/core/fabric_wire.h"
#include "src/core/fault_injection.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

// Full structural equality against the sequential reference (same contract
// as fault_tolerance_test.cc). Durations, wall-clock, and the fabric
// accounting counters themselves are bookkeeping, not results.
void ExpectIdenticalResults(const CampaignReport& actual,
                            const CampaignReport& expected,
                            const std::string& label) {
  SCOPED_TRACE(label);

  ASSERT_EQ(actual.per_app.size(), expected.per_app.size());
  for (const auto& [app, counts] : expected.per_app) {
    ASSERT_TRUE(actual.per_app.count(app) > 0) << app;
    const AppStageCounts& got = actual.per_app.at(app);
    EXPECT_EQ(got.original, counts.original) << app;
    EXPECT_EQ(got.after_static, counts.after_static) << app;
    EXPECT_EQ(got.after_prerun, counts.after_prerun) << app;
    EXPECT_EQ(got.after_uncertainty, counts.after_uncertainty) << app;
    EXPECT_EQ(got.executed_runs, counts.executed_runs) << app;
    EXPECT_EQ(got.tests_total, counts.tests_total) << app;
    EXPECT_EQ(got.tests_with_nodes, counts.tests_with_nodes) << app;
  }

  ASSERT_EQ(actual.findings.size(), expected.findings.size());
  for (const auto& [param, finding] : expected.findings) {
    ASSERT_TRUE(actual.findings.count(param) > 0) << param;
    const ParamFinding& got = actual.findings.at(param);
    EXPECT_EQ(got.owning_app, finding.owning_app) << param;
    EXPECT_EQ(got.witness_tests, finding.witness_tests) << param;
    EXPECT_EQ(got.example_failure, finding.example_failure) << param;
    EXPECT_EQ(got.best_p_value, finding.best_p_value) << param;
  }

  EXPECT_EQ(actual.first_trial_candidates, expected.first_trial_candidates);
  EXPECT_EQ(actual.filtered_by_hypothesis, expected.filtered_by_hypothesis);
  EXPECT_EQ(actual.total_unit_test_runs, expected.total_unit_test_runs);
  EXPECT_EQ(actual.runs_to_first_detection, expected.runs_to_first_detection);
  EXPECT_EQ(actual.first_detection_param, expected.first_detection_param);
}

CampaignOptions SmallCampaign() {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};
  return options;
}

CampaignReport SequentialReference(const CampaignOptions& options) {
  Campaign sequential(FullSchema(), FullCorpus(), options);
  return sequential.Run();
}

CampaignReport RunFabric(const CampaignOptions& options,
                         const DistributedCampaignOptions& fabric) {
  return RunDistributedCampaign(FullSchema(), FullCorpus(), options, fabric);
}

// --- Wire protocol ----------------------------------------------------------

TEST(FabricWireTest, FrameRoundTripOverPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  // Empty payload (the heartbeat shape) and a binary payload with embedded
  // NULs and newlines both survive intact.
  ASSERT_TRUE(WriteFabricFrame(fds[1], FabricMsg::kHeartbeat, ""));
  std::string binary("a\0b\nc\r\xff", 7);
  ASSERT_TRUE(WriteFabricFrame(fds[1], FabricMsg::kResult, binary));
  ::close(fds[1]);

  FabricMsg type;
  std::string payload;
  ASSERT_EQ(ReadFabricFrame(fds[0], &type, &payload), FabricRead::kOk);
  EXPECT_EQ(type, FabricMsg::kHeartbeat);
  EXPECT_TRUE(payload.empty());
  ASSERT_EQ(ReadFabricFrame(fds[0], &type, &payload), FabricRead::kOk);
  EXPECT_EQ(type, FabricMsg::kResult);
  EXPECT_EQ(payload, binary);

  // A close on a frame boundary is the one *clean* termination.
  EXPECT_EQ(ReadFabricFrame(fds[0], &type, &payload), FabricRead::kEof);
  ::close(fds[0]);
}

TEST(FabricWireTest, GarbledMagicAndChecksumAreRejected) {
  // Corrupt magic: anything not starting "ZFAB" is a broken peer.
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::string junk = "!!!NOT-A-FABRIC-FRAME!!!";
    ASSERT_EQ(::write(fds[1], junk.data(), junk.size()),
              static_cast<ssize_t>(junk.size()));
    ::close(fds[1]);
    FabricMsg type;
    std::string payload;
    EXPECT_EQ(ReadFabricFrame(fds[0], &type, &payload), FabricRead::kGarbled);
    ::close(fds[0]);
  }
  // Flipped payload byte: header parses but the FNV checksum must not.
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_TRUE(WriteFabricFrame(fds[1], FabricMsg::kDispatch, "0 0\nparam"));
    ::close(fds[1]);
    // Read the valid bytes back, corrupt the last payload byte, re-send.
    std::string wire(4096, '\0');
    ssize_t n = ::read(fds[0], wire.data(), wire.size());
    ASSERT_GT(n, 28);
    wire.resize(static_cast<size_t>(n));
    wire.back() ^= 0x5a;
    ::close(fds[0]);

    int fds2[2];
    ASSERT_EQ(::pipe(fds2), 0);
    ASSERT_EQ(::write(fds2[1], wire.data(), wire.size()),
              static_cast<ssize_t>(wire.size()));
    ::close(fds2[1]);
    FabricMsg type;
    std::string payload;
    EXPECT_EQ(ReadFabricFrame(fds2[0], &type, &payload), FabricRead::kGarbled);
    ::close(fds2[0]);
  }
  // EOF mid-frame (a torn header) is garbled, never a clean kEof.
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(::write(fds[1], "ZFAB", 4), 4);
    ::close(fds[1]);
    FabricMsg type;
    std::string payload;
    EXPECT_EQ(ReadFabricFrame(fds[0], &type, &payload), FabricRead::kGarbled);
    ::close(fds[0]);
  }
}

TEST(FabricWireTest, ParseHostPortTableDriven) {
  struct Case {
    const char* address;
    bool ok;
    const char* host;          // valid cases
    uint16_t port;             // valid cases
    const char* error_needle;  // invalid cases: substring of the error
  };
  const Case cases[] = {
      {"127.0.0.1:9009", true, "127.0.0.1", 9009, ""},
      {":9009", true, "", 9009, ""},  // empty host = INADDR_ANY, the one
                                      // meaningful empty field
      {"example.internal:1", true, "example.internal", 1, ""},
      {"10.0.0.1:65535", true, "10.0.0.1", 65535, ""},
      // IPv6-ish shapes parse on the last colon.
      {"::1:8080", true, "::1", 8080, ""},
      {"no-port-here", false, "", 0, "missing ':'"},
      {"host:", false, "", 0, "empty port"},
      {"host:0", false, "", 0, "out of range"},
      {"host:65536", false, "", 0, "out of range"},
      {"host:99999", false, "", 0, "out of range"},
      {"host:123456789012345678901", false, "", 0, "out of range"},
      {"host:9009x", false, "", 0, "not a number"},
      {"host:90x09", false, "", 0, "not a number"},
      {"host:+9009", false, "", 0, "not a number"},
      {"host:-1", false, "", 0, "not a number"},
      {"host:0x1f90", false, "", 0, "not a number"},
      // ParseInt64's whitespace trim must NOT leak into endpoint parsing.
      {"host: 9009", false, "", 0, "whitespace"},
      {"host:9009 ", false, "", 0, "whitespace"},
      {" host:9009", false, "", 0, "whitespace"},
      {"host:90\t09", false, "", 0, "whitespace"},
      {"", false, "", 0, "missing ':'"},
      {":", false, "", 0, "empty port"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string("address '") + c.address + "'");
    std::string host = "UNTOUCHED";
    uint16_t port = 12345;
    std::string error;
    if (c.ok) {
      ASSERT_TRUE(ParseHostPort(c.address, &host, &port, &error)) << error;
      EXPECT_EQ(host, c.host);
      EXPECT_EQ(port, c.port);
    } else {
      ASSERT_FALSE(ParseHostPort(c.address, &host, &port, &error));
      // A refusal must come with a reason naming the offending part, and
      // must not have scribbled on the outputs.
      EXPECT_NE(error.find(c.error_needle), std::string::npos) << error;
      EXPECT_EQ(host, "UNTOUCHED");
      EXPECT_EQ(port, 12345);
    }
  }
}

TEST(FabricWireTest, VersionMismatchDistinguishedFromGarble) {
  // Capture a valid frame, rewrite its version field (bytes 4-7), and feed
  // it back: an intact frame from another protocol era must surface as
  // kVersionMismatch — the handshake names the refusal — not as line noise.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(WriteFabricFrame(fds[1], FabricMsg::kHello, "hash\n1\n0"));
  ::close(fds[1]);
  std::string wire(4096, '\0');
  ssize_t n = ::read(fds[0], wire.data(), wire.size());
  ASSERT_GT(n, 28);
  wire.resize(static_cast<size_t>(n));
  ::close(fds[0]);
  wire[4] = 0x01;  // version 1 of old; payload checksum is version-agnostic

  int fds2[2];
  ASSERT_EQ(::pipe(fds2), 0);
  ASSERT_EQ(::write(fds2[1], wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  ::close(fds2[1]);
  FabricMsg type;
  std::string payload;
  EXPECT_EQ(ReadFabricFrame(fds2[0], &type, &payload),
            FabricRead::kVersionMismatch);
  ::close(fds2[0]);
}

TEST(FabricWireTest, BatchRecordRoundTrip) {
  // Records with newlines, NULs, and emptiness all survive; order holds.
  std::vector<std::string> records = {
      "0 0\nserialized result with\nnewlines",
      std::string("binary\0rec", 10),
      "",
      "plain",
  };
  std::string payload;
  for (const std::string& record : records) {
    AppendBatchRecord(&payload, record);
  }
  std::vector<std::string> decoded;
  ASSERT_TRUE(DecodeBatchRecords(payload, &decoded));
  EXPECT_EQ(decoded, records);

  // The zero-record batch is valid (an empty payload decodes to nothing).
  ASSERT_TRUE(DecodeBatchRecords("", &decoded));
  EXPECT_TRUE(decoded.empty());

  // Malformed shapes a checksum cannot catch: missing length prefix,
  // non-numeric length, truncated body, and a length that overruns.
  EXPECT_FALSE(DecodeBatchRecords("no-length-prefix", &decoded));
  EXPECT_FALSE(DecodeBatchRecords("3x\nabc", &decoded));
  EXPECT_FALSE(DecodeBatchRecords("\nabc", &decoded));
  EXPECT_FALSE(DecodeBatchRecords("10\nshort", &decoded));
  EXPECT_FALSE(DecodeBatchRecords("5\nabcde3\nab", &decoded));
  // A truncated prefix of a valid payload must not decode.
  EXPECT_FALSE(DecodeBatchRecords(payload.substr(0, payload.size() - 1),
                                  &decoded));
}

TEST(FabricWireTest, TcpNoDelaySetOnAcceptedAndConnectedSockets) {
  // Every live fabric socket must run with Nagle off — the accepted side
  // included (a 40ms delayed-ACK stall per dispatch would swamp the batched
  // data plane). Build a real listen/connect/accept triple and assert the
  // option on both ends.
  uint16_t port = 0;
  int listen_fd = ListenTcp("127.0.0.1", 0, &port);
  ASSERT_GE(listen_fd, 0);
  int client_fd = ConnectTcp("127.0.0.1", port, 5.0);
  ASSERT_GE(client_fd, 0);
  int server_fd = AcceptTcp(listen_fd);
  ASSERT_GE(server_fd, 0);

  auto nodelay = [](int fd) {
    int value = 0;
    socklen_t len = sizeof(value);
    EXPECT_EQ(::getsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &value, &len), 0);
    return value != 0;
  };
  EXPECT_TRUE(nodelay(client_fd)) << "ConnectTcp socket";
  EXPECT_TRUE(nodelay(server_fd)) << "AcceptTcp socket";

  // The helper itself: idempotent on TCP, refuses a non-TCP fd.
  EXPECT_TRUE(SetTcpNoDelay(client_fd));
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  EXPECT_FALSE(SetTcpNoDelay(pipe_fds[0]));
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);

  ::close(client_fd);
  ::close(server_fd);
  ::close(listen_fd);
}

// --- Network fault plane ----------------------------------------------------

TEST(NetFaultPlanTest, DecisionsAreSeedDeterministicAndAgentIndependent) {
  NetFaultPlan plan;
  plan.seed = 42;
  plan.agent_crash_rate = 0.3;
  plan.duplicate_rate = 0.2;

  NetFaultSpec first;
  NetFaultSpec second;
  int fired = 0;
  for (int unit = 0; unit < 64; ++unit) {
    std::string test_id = "app.Test" + std::to_string(unit);
    bool a = plan.Decide(/*agent=*/0, test_id, /*attempt=*/0, &first);
    bool b = plan.Decide(/*agent=*/7, test_id, /*attempt=*/0, &second);
    // Replayable under any unit-to-agent assignment: the agent index must
    // not influence the decision (same contract as FaultPlan).
    ASSERT_EQ(a, b) << test_id;
    if (a) {
      EXPECT_EQ(first.kind, second.kind) << test_id;
      ++fired;
    }
  }
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);

  NetFaultPlan other = plan;
  other.seed = 43;
  int differences = 0;
  for (int unit = 0; unit < 64; ++unit) {
    std::string test_id = "app.Test" + std::to_string(unit);
    NetFaultSpec unused;
    if (plan.Decide(0, test_id, 0, &unused) !=
        other.Decide(0, test_id, 0, &unused)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(NetFaultPlanTest, ExplicitSpecsMatchWildcardsAndWinOverRandom) {
  NetFaultPlan plan;
  NetFaultSpec spec;
  spec.kind = NetFaultKind::kConnectionDrop;
  spec.test_id = "minikv.TestPutGet";
  spec.agent = -1;
  spec.attempt = -1;
  plan.specs.push_back(spec);
  plan.seed = 1;
  plan.agent_crash_rate = 1.0;  // would otherwise fire everywhere

  NetFaultSpec out;
  ASSERT_TRUE(plan.Decide(0, "minikv.TestPutGet", 0, &out));
  EXPECT_EQ(out.kind, NetFaultKind::kConnectionDrop);
  ASSERT_TRUE(plan.Decide(3, "minikv.TestPutGet", 2, &out));
  EXPECT_EQ(out.kind, NetFaultKind::kConnectionDrop);
  // Off-spec units fall through to random mode.
  ASSERT_TRUE(plan.Decide(0, "minikv.TestOther", 0, &out));
  EXPECT_EQ(out.kind, NetFaultKind::kAgentCrash);
}

// --- Handshake identity -----------------------------------------------------

TEST(FabricSchemaHashTest, SensitiveToResultAffectingOptions) {
  const std::string base =
      FabricSchemaHash(FullSchema(), FullCorpus(), SmallCampaign());
  EXPECT_EQ(base,
            FabricSchemaHash(FullSchema(), FullCorpus(), SmallCampaign()));

  CampaignOptions other_apps = SmallCampaign();
  other_apps.apps = {"minikv"};
  EXPECT_NE(base, FabricSchemaHash(FullSchema(), FullCorpus(), other_apps));

  CampaignOptions other_trials = SmallCampaign();
  other_trials.first_trials += 1;
  EXPECT_NE(base, FabricSchemaHash(FullSchema(), FullCorpus(), other_trials));
}

// --- The fabric itself ------------------------------------------------------

TEST(DistributedCampaignTest, BitwiseIdenticalAcrossFleetShapes) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  struct Shape {
    int agents;
    int threads;
  };
  for (const Shape& shape : std::vector<Shape>{{1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 2}}) {
    DistributedCampaignOptions fabric;
    fabric.agents = shape.agents;
    fabric.agent_threads = shape.threads;
    CampaignReport report = RunFabric(options, fabric);
    ExpectIdenticalResults(report, expected,
                           std::to_string(shape.agents) + " agents x " +
                               std::to_string(shape.threads) + " threads");
    EXPECT_EQ(report.agent_disconnects, 0);
    EXPECT_EQ(report.expired_leases, 0);
    EXPECT_EQ(report.duplicate_results, 0);
  }
}

TEST(DistributedCampaignTest, AgentCrashBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  NetFaultSpec crash;
  crash.kind = NetFaultKind::kAgentCrash;
  crash.test_id = "minikv.TestPutGet";
  crash.attempt = 0;
  fabric.net_faults.specs.push_back(crash);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "agent crash");
  EXPECT_GE(report.agent_disconnects, 1);
  EXPECT_GE(report.expired_leases, 1);
  EXPECT_GE(report.requeued_units, 1);
}

TEST(DistributedCampaignTest, ConnectionDropRecoversLostWork) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  // The drop fires *after* the unit executed: work done but the result lost
  // in flight. The lease expiry must re-run it as if it never happened.
  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  NetFaultSpec drop;
  drop.kind = NetFaultKind::kConnectionDrop;
  drop.test_id = "ministream.TestDataExchange";
  drop.attempt = 0;
  fabric.net_faults.specs.push_back(drop);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "connection drop");
  EXPECT_GE(report.agent_disconnects, 1);
  EXPECT_GE(report.expired_leases, 1);
}

TEST(DistributedCampaignTest, GarbledFrameRetiresAgentBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  NetFaultSpec garble;
  garble.kind = NetFaultKind::kGarbledFrame;
  garble.test_id = "minikv.TestRestStatus";
  garble.attempt = 0;
  fabric.net_faults.specs.push_back(garble);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "garbled frame");
  EXPECT_GE(report.agent_disconnects, 1);
  EXPECT_GE(report.expired_leases, 1);
}

TEST(DistributedCampaignTest, DelayedHeartbeatTripsLivenessTimeout) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  // Mute heartbeats for far longer than the coordinator's patience *while*
  // the same unit runs slowly — a live-but-silent host. The coordinator must
  // retire it on heartbeat silence and requeue its lease on the survivor.
  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  fabric.heartbeat_interval_seconds = 0.05;
  fabric.heartbeat_timeout_seconds = 0.5;
  NetFaultSpec mute;
  mute.kind = NetFaultKind::kDelayedHeartbeat;
  mute.test_id = "minikv.TestPutGet";
  mute.attempt = 0;
  mute.delay_seconds = 30.0;
  fabric.net_faults.specs.push_back(mute);
  FaultSpec slow;
  slow.kind = FaultKind::kSlowWorker;
  slow.test_id = "minikv.TestPutGet";
  slow.attempt = 0;
  slow.slow_seconds = 2.0;
  fabric.faults.specs.push_back(slow);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "delayed heartbeat");
  EXPECT_GE(report.agent_disconnects, 1);
  EXPECT_GE(report.expired_leases, 1);
}

TEST(DistributedCampaignTest, StaleDuplicateResultDroppedIdempotently) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  NetFaultSpec dup;
  dup.kind = NetFaultKind::kStaleDuplicateResult;
  dup.test_id = "minikv.TestPutGet";
  dup.attempt = -1;
  fabric.net_faults.specs.push_back(dup);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "stale duplicate result");
  EXPECT_GE(report.duplicate_results, 1);
  // The duplicate is dropped, not folded: no agent died for it.
  EXPECT_EQ(report.agent_disconnects, 0);
}

TEST(DistributedCampaignTest, HungUnitCaughtByLeaseWatchdog) {
  CampaignOptions options = SmallCampaign();
  // A hung worker thread on a heartbeating host: heartbeats keep flowing, so
  // only the per-lease watchdog deadline can catch it.
  options.watchdog_floor_seconds = 0.5;
  options.watchdog_multiplier = 8.0;
  CampaignOptions reference = options;
  CampaignReport expected = SequentialReference(reference);

  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  FaultSpec hang;
  hang.kind = FaultKind::kHang;
  hang.test_id = "ministream.TestDataExchange";
  hang.attempt = 0;
  fabric.faults.specs.push_back(hang);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "hung unit");
  EXPECT_GE(report.hung_workers, 1);
  EXPECT_GE(report.expired_leases, 1);
  EXPECT_GE(report.agent_disconnects, 1);
}

TEST(DistributedCampaignTest, SeededRandomNetFaultsBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  // Random mode uses the non-fatal kind: a fatal rate fires at *unit*
  // coordinates (agent-independent by design), so nothing bounds how many
  // agents a given seed retires — the explicit-spec tests above pin each
  // fatal kind deterministically instead.
  DistributedCampaignOptions fabric;
  fabric.agents = 3;
  fabric.net_faults.seed = 7;
  fabric.net_faults.duplicate_rate = 0.25;

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "seeded random net faults");
  // Every unit's attempt-0 coordinate is always visited, so the seed's
  // attempt-0 firings are a guaranteed floor. The exact count is accounting
  // noise (stale-snapshot requeues visit extra attempt coordinates), but
  // the *results* above must not move at all.
  EXPECT_GE(report.duplicate_results, 1);
  EXPECT_EQ(report.agent_disconnects, 0);

  CampaignReport again = RunFabric(options, fabric);
  ExpectIdenticalResults(again, expected, "seeded random net faults, rerun");
  EXPECT_GE(again.duplicate_results, 1);
}

TEST(DistributedCampaignTest, JournalResumeBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);
  const std::string path = ::testing::TempDir() + "/fabric_resume.zj";
  std::remove(path.c_str());

  // First invocation "crashes" the coordinator after two folds; the journal
  // holds exactly those two unit results.
  DistributedCampaignOptions first;
  first.agents = 2;
  first.journal_path = path;
  first.abort_after_folds = 2;
  CampaignReport partial = RunFabric(options, first);
  EXPECT_LT(partial.total_unit_test_runs, expected.total_unit_test_runs);

  // The restarted coordinator replays the journal prefix, dispatches only
  // the remainder over a fresh fleet, and must fold bitwise-identically.
  DistributedCampaignOptions second;
  second.agents = 2;
  second.journal_path = path;
  second.resume = true;
  CampaignReport resumed = RunFabric(options, second);
  ExpectIdenticalResults(resumed, expected, "fabric journal resume");
  EXPECT_EQ(resumed.resumed_units, 2);
  std::remove(path.c_str());
}

TEST(DistributedCampaignTest, ResumeUnderAgentCrashBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);
  const std::string path = ::testing::TempDir() + "/fabric_resume_crash.zj";
  std::remove(path.c_str());

  DistributedCampaignOptions first;
  first.agents = 2;
  first.journal_path = path;
  first.abort_after_folds = 3;
  RunFabric(options, first);

  // The resumed run additionally loses an agent mid-flight.
  DistributedCampaignOptions second;
  second.agents = 2;
  second.journal_path = path;
  second.resume = true;
  NetFaultSpec crash;
  crash.kind = NetFaultKind::kAgentCrash;
  crash.test_id = "ministream.TestTwoJobsSequential";
  crash.attempt = 0;
  second.net_faults.specs.push_back(crash);
  CampaignReport resumed = RunFabric(options, second);
  ExpectIdenticalResults(resumed, expected, "resume + agent crash");
  EXPECT_EQ(resumed.resumed_units, 3);
  std::remove(path.c_str());
}

TEST(DistributedCampaignTest, BitwiseIdenticalAcrossPipelineDepths) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  // Depth 1 degenerates to the v1 lease discipline (one lease per thread);
  // deeper pipelines keep depth x threads leases in flight. None of it may
  // move results: a lease is a promise of execution, not of order.
  for (int depth : {1, 2, 4}) {
    DistributedCampaignOptions fabric;
    fabric.agents = 2;
    fabric.agent_threads = 2;
    fabric.pipeline_depth = depth;
    CampaignReport report = RunFabric(options, fabric);
    ExpectIdenticalResults(report, expected,
                           "pipeline depth " + std::to_string(depth));
    EXPECT_EQ(report.agent_disconnects, 0);
  }

  DistributedCampaignOptions invalid;
  invalid.agents = 1;
  invalid.pipeline_depth = 0;
  EXPECT_THROW(RunFabric(options, invalid), Error);
}

TEST(DistributedCampaignTest, EpochDesyncForcesFullResendBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  // The agent "forgets" its snapshot epoch at the moment this unit's
  // dispatch arrives: the unit (and any in-flight delta batches behind it)
  // must come back as kSnapshotNack, the coordinator must requeue them and
  // fall back to a full snapshot send, and the campaign must not notice.
  // The agent survives — a desync is a state problem, not a liveness one.
  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  fabric.agent_threads = 2;
  fabric.pipeline_depth = 2;
  NetFaultSpec desync;
  desync.kind = NetFaultKind::kEpochDesync;
  desync.test_id = "ministream.TestDataExchange";
  desync.attempt = 0;
  fabric.net_faults.specs.push_back(desync);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "epoch desync");
  EXPECT_GE(report.requeued_units, 1);
  EXPECT_GE(report.expired_leases, 1);
  EXPECT_EQ(report.agent_disconnects, 0);
}

TEST(DistributedCampaignTest, GarbledBatchedFrameAtDepthFourBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  // Same garble as GarbledFrameRetiresAgentBitwiseIdentical, but with a deep
  // pipeline: the corrupted kResultBatch takes a whole batch of sibling
  // leases down with the agent, and every one must be re-run elsewhere.
  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  fabric.agent_threads = 2;
  fabric.pipeline_depth = 4;
  NetFaultSpec garble;
  garble.kind = NetFaultKind::kGarbledFrame;
  garble.test_id = "minikv.TestRestStatus";
  garble.attempt = 0;
  fabric.net_faults.specs.push_back(garble);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "garbled batched frame, depth 4");
  EXPECT_GE(report.agent_disconnects, 1);
  EXPECT_GE(report.expired_leases, 1);
}

// --- Persistent agent cache -------------------------------------------------

TEST(DistributedCampaignTest, WarmAgentCacheBitwiseIdenticalWithCacheHits) {
  CampaignOptions options = SmallCampaign();
  options.enable_run_cache = true;
  CampaignReport expected = SequentialReference(options);

  const std::string dir = ::testing::TempDir() + "/fabric_warm_cache";
  ::mkdir(dir.c_str(), 0755);
  const std::string cache_file =
      dir + "/fabric-" + FabricSchemaHash(FullSchema(), FullCorpus(), options) +
      "-agent0.zc";
  std::remove(cache_file.c_str());

  DistributedCampaignOptions fabric;
  fabric.agents = 1;
  fabric.agent_threads = 2;
  fabric.agent_cache_dir = dir;

  // Cold run: populates and persists the agent's cache at shutdown.
  CampaignReport cold = RunFabric(options, fabric);
  ExpectIdenticalResults(cold, expected, "cold agent cache");
  EXPECT_EQ(cold.cache_load_failures, 0);
  struct stat st;
  ASSERT_EQ(::stat(cache_file.c_str(), &st), 0)
      << "agent did not persist its run cache to " << cache_file;
  EXPECT_GT(st.st_size, 0);

  // Warm restart: the coordinator restart gate. Same campaign, same cache
  // dir — results bitwise-identical, but runs the cold campaign had to
  // execute are now served from disk: hits up, misses strictly down.
  CampaignReport warm = RunFabric(options, fabric);
  ExpectIdenticalResults(warm, expected, "warm agent cache");
  EXPECT_EQ(warm.cache_load_failures, 0);
  EXPECT_GT(warm.cache_hits, 0);
  EXPECT_GT(warm.cache_hits, cold.cache_hits);
  EXPECT_LT(warm.cache_misses, cold.cache_misses);

  std::remove(cache_file.c_str());
}

TEST(DistributedCampaignTest, CorruptAgentCacheDegradesToColdStart) {
  CampaignOptions options = SmallCampaign();
  options.enable_run_cache = true;
  CampaignReport expected = SequentialReference(options);

  const std::string dir = ::testing::TempDir() + "/fabric_corrupt_cache";
  ::mkdir(dir.c_str(), 0755);
  const std::string cache_file =
      dir + "/fabric-" + FabricSchemaHash(FullSchema(), FullCorpus(), options) +
      "-agent0.zc";

  DistributedCampaignOptions fabric;
  fabric.agents = 1;
  fabric.agent_cache_dir = dir;

  // Outright garbage where the cache file should be.
  {
    std::ofstream out(cache_file, std::ios::binary | std::ios::trunc);
    const std::string junk("!!this is not a run cache!!\0\xff\x01garbage", 38);
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  CampaignReport garbage = RunFabric(options, fabric);
  ExpectIdenticalResults(garbage, expected, "garbage agent cache");
  EXPECT_GE(garbage.cache_load_failures, 1)
      << "a corrupt cache must be surfaced, not silently ignored";
  EXPECT_EQ(garbage.agent_disconnects, 0);

  // Truncation: the clean run above rewrote a valid cache at shutdown; chop
  // it mid-file and the next load must also degrade to a cold start.
  struct stat st;
  ASSERT_EQ(::stat(cache_file.c_str(), &st), 0);
  ASSERT_GT(st.st_size, 2);
  ASSERT_EQ(::truncate(cache_file.c_str(), st.st_size / 2), 0);
  CampaignReport truncated = RunFabric(options, fabric);
  ExpectIdenticalResults(truncated, expected, "truncated agent cache");
  EXPECT_GE(truncated.cache_load_failures, 1);
  EXPECT_EQ(truncated.agent_disconnects, 0);

  std::remove(cache_file.c_str());
}

// --- Executor wiring --------------------------------------------------------

TEST(DistributedExecutorTest, RegisteredAndBitwiseIdentical) {
  ASSERT_TRUE(ParseExecutorKind("distributed").has_value());
  EXPECT_EQ(*ParseExecutorKind("distributed"), ExecutorKind::kDistributed);
  EXPECT_EQ(std::string(ExecutorKindName(ExecutorKind::kDistributed)),
            "distributed");

  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  auto executor = MakeExecutor(ExecutorKind::kDistributed);
  EXPECT_EQ(std::string(executor->name()), "distributed");
  EXPECT_TRUE(executor->supports_journal());
  EXPECT_TRUE(executor->supports_fault_injection());

  ExecutorOptions exec;
  exec.workers = 2;  // agents, for the distributed backend
  exec.agent_threads = 2;
  CampaignReport report =
      executor->Run(FullSchema(), FullCorpus(), options, exec);
  ExpectIdenticalResults(report, expected, "distributed executor");
}

TEST(DistributedExecutorTest, SingleBoxBackendsRefuseFabricOptions) {
  CampaignOptions options = SmallCampaign();

  ExecutorOptions threads;
  threads.workers = 1;
  threads.agent_threads = 2;
  EXPECT_THROW(MakeExecutor(ExecutorKind::kSequential)
                   ->Run(FullSchema(), FullCorpus(), options, threads),
               Error);

  ExecutorOptions nets;
  nets.workers = 2;
  nets.net_faults.agent_crash_rate = 0.5;
  EXPECT_THROW(MakeExecutor(ExecutorKind::kThreadPool)
                   ->Run(FullSchema(), FullCorpus(), options, nets),
               Error);

  ExecutorOptions listen;
  listen.workers = 2;
  listen.listen_address = ":9009";
  EXPECT_THROW(MakeExecutor(ExecutorKind::kSharded)
                   ->Run(FullSchema(), FullCorpus(), options, listen),
               Error);

  ExecutorOptions depth;
  depth.workers = 2;
  depth.pipeline_depth = 2;
  EXPECT_THROW(MakeExecutor(ExecutorKind::kStealing)
                   ->Run(FullSchema(), FullCorpus(), options, depth),
               Error);

  ExecutorOptions cache_dir;
  cache_dir.workers = 2;
  cache_dir.agent_cache_dir = ::testing::TempDir();
  EXPECT_THROW(MakeExecutor(ExecutorKind::kThreadPool)
                   ->Run(FullSchema(), FullCorpus(), options, cache_dir),
               Error);
}

}  // namespace
}  // namespace zebra
