// Tests for the distributed campaign fabric: the checksummed TCP wire
// protocol, the deterministic network fault plane, and the coordinator/agent
// backend itself. The invariant mirrors fault_tolerance_test.cc: network
// faults change how often units re-run, how many agents die, and how long
// the campaign takes — never findings, Table-5 stage counts, or
// runs_to_first_detection, which must stay bitwise-identical to the
// uninterrupted sequential campaign at every fleet shape (CI-gated via the
// *BitwiseIdentical* / *Crash* / *Garbled* / *Resume* filters).
//
// Note on agent budgets: the fleet is fixed — a crash, drop, garble, or
// heartbeat retirement permanently removes one agent (the coordinator throws
// only when none remain) — so each fault test provisions one more agent than
// the faults it injects, exactly like the worker budgets in
// fault_tolerance_test.cc.

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/error.h"
#include "src/core/campaign_agent.h"
#include "src/core/campaign_executor.h"
#include "src/core/distributed_campaign.h"
#include "src/core/fabric_wire.h"
#include "src/core/fault_injection.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

// Full structural equality against the sequential reference (same contract
// as fault_tolerance_test.cc). Durations, wall-clock, and the fabric
// accounting counters themselves are bookkeeping, not results.
void ExpectIdenticalResults(const CampaignReport& actual,
                            const CampaignReport& expected,
                            const std::string& label) {
  SCOPED_TRACE(label);

  ASSERT_EQ(actual.per_app.size(), expected.per_app.size());
  for (const auto& [app, counts] : expected.per_app) {
    ASSERT_TRUE(actual.per_app.count(app) > 0) << app;
    const AppStageCounts& got = actual.per_app.at(app);
    EXPECT_EQ(got.original, counts.original) << app;
    EXPECT_EQ(got.after_static, counts.after_static) << app;
    EXPECT_EQ(got.after_prerun, counts.after_prerun) << app;
    EXPECT_EQ(got.after_uncertainty, counts.after_uncertainty) << app;
    EXPECT_EQ(got.executed_runs, counts.executed_runs) << app;
    EXPECT_EQ(got.tests_total, counts.tests_total) << app;
    EXPECT_EQ(got.tests_with_nodes, counts.tests_with_nodes) << app;
  }

  ASSERT_EQ(actual.findings.size(), expected.findings.size());
  for (const auto& [param, finding] : expected.findings) {
    ASSERT_TRUE(actual.findings.count(param) > 0) << param;
    const ParamFinding& got = actual.findings.at(param);
    EXPECT_EQ(got.owning_app, finding.owning_app) << param;
    EXPECT_EQ(got.witness_tests, finding.witness_tests) << param;
    EXPECT_EQ(got.example_failure, finding.example_failure) << param;
    EXPECT_EQ(got.best_p_value, finding.best_p_value) << param;
  }

  EXPECT_EQ(actual.first_trial_candidates, expected.first_trial_candidates);
  EXPECT_EQ(actual.filtered_by_hypothesis, expected.filtered_by_hypothesis);
  EXPECT_EQ(actual.total_unit_test_runs, expected.total_unit_test_runs);
  EXPECT_EQ(actual.runs_to_first_detection, expected.runs_to_first_detection);
  EXPECT_EQ(actual.first_detection_param, expected.first_detection_param);
}

CampaignOptions SmallCampaign() {
  CampaignOptions options;
  options.apps = {"minikv", "ministream"};
  return options;
}

CampaignReport SequentialReference(const CampaignOptions& options) {
  Campaign sequential(FullSchema(), FullCorpus(), options);
  return sequential.Run();
}

CampaignReport RunFabric(const CampaignOptions& options,
                         const DistributedCampaignOptions& fabric) {
  return RunDistributedCampaign(FullSchema(), FullCorpus(), options, fabric);
}

// --- Wire protocol ----------------------------------------------------------

TEST(FabricWireTest, FrameRoundTripOverPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  // Empty payload (the heartbeat shape) and a binary payload with embedded
  // NULs and newlines both survive intact.
  ASSERT_TRUE(WriteFabricFrame(fds[1], FabricMsg::kHeartbeat, ""));
  std::string binary("a\0b\nc\r\xff", 7);
  ASSERT_TRUE(WriteFabricFrame(fds[1], FabricMsg::kResult, binary));
  ::close(fds[1]);

  FabricMsg type;
  std::string payload;
  ASSERT_EQ(ReadFabricFrame(fds[0], &type, &payload), FabricRead::kOk);
  EXPECT_EQ(type, FabricMsg::kHeartbeat);
  EXPECT_TRUE(payload.empty());
  ASSERT_EQ(ReadFabricFrame(fds[0], &type, &payload), FabricRead::kOk);
  EXPECT_EQ(type, FabricMsg::kResult);
  EXPECT_EQ(payload, binary);

  // A close on a frame boundary is the one *clean* termination.
  EXPECT_EQ(ReadFabricFrame(fds[0], &type, &payload), FabricRead::kEof);
  ::close(fds[0]);
}

TEST(FabricWireTest, GarbledMagicAndChecksumAreRejected) {
  // Corrupt magic: anything not starting "ZFAB" is a broken peer.
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::string junk = "!!!NOT-A-FABRIC-FRAME!!!";
    ASSERT_EQ(::write(fds[1], junk.data(), junk.size()),
              static_cast<ssize_t>(junk.size()));
    ::close(fds[1]);
    FabricMsg type;
    std::string payload;
    EXPECT_EQ(ReadFabricFrame(fds[0], &type, &payload), FabricRead::kGarbled);
    ::close(fds[0]);
  }
  // Flipped payload byte: header parses but the FNV checksum must not.
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_TRUE(WriteFabricFrame(fds[1], FabricMsg::kDispatch, "0 0\nparam"));
    ::close(fds[1]);
    // Read the valid bytes back, corrupt the last payload byte, re-send.
    std::string wire(4096, '\0');
    ssize_t n = ::read(fds[0], wire.data(), wire.size());
    ASSERT_GT(n, 28);
    wire.resize(static_cast<size_t>(n));
    wire.back() ^= 0x5a;
    ::close(fds[0]);

    int fds2[2];
    ASSERT_EQ(::pipe(fds2), 0);
    ASSERT_EQ(::write(fds2[1], wire.data(), wire.size()),
              static_cast<ssize_t>(wire.size()));
    ::close(fds2[1]);
    FabricMsg type;
    std::string payload;
    EXPECT_EQ(ReadFabricFrame(fds2[0], &type, &payload), FabricRead::kGarbled);
    ::close(fds2[0]);
  }
  // EOF mid-frame (a torn header) is garbled, never a clean kEof.
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(::write(fds[1], "ZFAB", 4), 4);
    ::close(fds[1]);
    FabricMsg type;
    std::string payload;
    EXPECT_EQ(ReadFabricFrame(fds[0], &type, &payload), FabricRead::kGarbled);
    ::close(fds[0]);
  }
}

TEST(FabricWireTest, ParseHostPort) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseHostPort("127.0.0.1:9009", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9009);
  ASSERT_TRUE(ParseHostPort(":9009", &host, &port));
  EXPECT_EQ(host, "");
  EXPECT_EQ(port, 9009);
  EXPECT_FALSE(ParseHostPort("no-port-here", &host, &port));
  EXPECT_FALSE(ParseHostPort("host:", &host, &port));
  EXPECT_FALSE(ParseHostPort("host:0", &host, &port));
  EXPECT_FALSE(ParseHostPort("host:99999", &host, &port));
}

// --- Network fault plane ----------------------------------------------------

TEST(NetFaultPlanTest, DecisionsAreSeedDeterministicAndAgentIndependent) {
  NetFaultPlan plan;
  plan.seed = 42;
  plan.agent_crash_rate = 0.3;
  plan.duplicate_rate = 0.2;

  NetFaultSpec first;
  NetFaultSpec second;
  int fired = 0;
  for (int unit = 0; unit < 64; ++unit) {
    std::string test_id = "app.Test" + std::to_string(unit);
    bool a = plan.Decide(/*agent=*/0, test_id, /*attempt=*/0, &first);
    bool b = plan.Decide(/*agent=*/7, test_id, /*attempt=*/0, &second);
    // Replayable under any unit-to-agent assignment: the agent index must
    // not influence the decision (same contract as FaultPlan).
    ASSERT_EQ(a, b) << test_id;
    if (a) {
      EXPECT_EQ(first.kind, second.kind) << test_id;
      ++fired;
    }
  }
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);

  NetFaultPlan other = plan;
  other.seed = 43;
  int differences = 0;
  for (int unit = 0; unit < 64; ++unit) {
    std::string test_id = "app.Test" + std::to_string(unit);
    NetFaultSpec unused;
    if (plan.Decide(0, test_id, 0, &unused) !=
        other.Decide(0, test_id, 0, &unused)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(NetFaultPlanTest, ExplicitSpecsMatchWildcardsAndWinOverRandom) {
  NetFaultPlan plan;
  NetFaultSpec spec;
  spec.kind = NetFaultKind::kConnectionDrop;
  spec.test_id = "minikv.TestPutGet";
  spec.agent = -1;
  spec.attempt = -1;
  plan.specs.push_back(spec);
  plan.seed = 1;
  plan.agent_crash_rate = 1.0;  // would otherwise fire everywhere

  NetFaultSpec out;
  ASSERT_TRUE(plan.Decide(0, "minikv.TestPutGet", 0, &out));
  EXPECT_EQ(out.kind, NetFaultKind::kConnectionDrop);
  ASSERT_TRUE(plan.Decide(3, "minikv.TestPutGet", 2, &out));
  EXPECT_EQ(out.kind, NetFaultKind::kConnectionDrop);
  // Off-spec units fall through to random mode.
  ASSERT_TRUE(plan.Decide(0, "minikv.TestOther", 0, &out));
  EXPECT_EQ(out.kind, NetFaultKind::kAgentCrash);
}

// --- Handshake identity -----------------------------------------------------

TEST(FabricSchemaHashTest, SensitiveToResultAffectingOptions) {
  const std::string base =
      FabricSchemaHash(FullSchema(), FullCorpus(), SmallCampaign());
  EXPECT_EQ(base,
            FabricSchemaHash(FullSchema(), FullCorpus(), SmallCampaign()));

  CampaignOptions other_apps = SmallCampaign();
  other_apps.apps = {"minikv"};
  EXPECT_NE(base, FabricSchemaHash(FullSchema(), FullCorpus(), other_apps));

  CampaignOptions other_trials = SmallCampaign();
  other_trials.first_trials += 1;
  EXPECT_NE(base, FabricSchemaHash(FullSchema(), FullCorpus(), other_trials));
}

// --- The fabric itself ------------------------------------------------------

TEST(DistributedCampaignTest, BitwiseIdenticalAcrossFleetShapes) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  struct Shape {
    int agents;
    int threads;
  };
  for (const Shape& shape : std::vector<Shape>{{1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 2}}) {
    DistributedCampaignOptions fabric;
    fabric.agents = shape.agents;
    fabric.agent_threads = shape.threads;
    CampaignReport report = RunFabric(options, fabric);
    ExpectIdenticalResults(report, expected,
                           std::to_string(shape.agents) + " agents x " +
                               std::to_string(shape.threads) + " threads");
    EXPECT_EQ(report.agent_disconnects, 0);
    EXPECT_EQ(report.expired_leases, 0);
    EXPECT_EQ(report.duplicate_results, 0);
  }
}

TEST(DistributedCampaignTest, AgentCrashBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  NetFaultSpec crash;
  crash.kind = NetFaultKind::kAgentCrash;
  crash.test_id = "minikv.TestPutGet";
  crash.attempt = 0;
  fabric.net_faults.specs.push_back(crash);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "agent crash");
  EXPECT_GE(report.agent_disconnects, 1);
  EXPECT_GE(report.expired_leases, 1);
  EXPECT_GE(report.requeued_units, 1);
}

TEST(DistributedCampaignTest, ConnectionDropRecoversLostWork) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  // The drop fires *after* the unit executed: work done but the result lost
  // in flight. The lease expiry must re-run it as if it never happened.
  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  NetFaultSpec drop;
  drop.kind = NetFaultKind::kConnectionDrop;
  drop.test_id = "ministream.TestDataExchange";
  drop.attempt = 0;
  fabric.net_faults.specs.push_back(drop);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "connection drop");
  EXPECT_GE(report.agent_disconnects, 1);
  EXPECT_GE(report.expired_leases, 1);
}

TEST(DistributedCampaignTest, GarbledFrameRetiresAgentBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  NetFaultSpec garble;
  garble.kind = NetFaultKind::kGarbledFrame;
  garble.test_id = "minikv.TestRestStatus";
  garble.attempt = 0;
  fabric.net_faults.specs.push_back(garble);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "garbled frame");
  EXPECT_GE(report.agent_disconnects, 1);
  EXPECT_GE(report.expired_leases, 1);
}

TEST(DistributedCampaignTest, DelayedHeartbeatTripsLivenessTimeout) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  // Mute heartbeats for far longer than the coordinator's patience *while*
  // the same unit runs slowly — a live-but-silent host. The coordinator must
  // retire it on heartbeat silence and requeue its lease on the survivor.
  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  fabric.heartbeat_interval_seconds = 0.05;
  fabric.heartbeat_timeout_seconds = 0.5;
  NetFaultSpec mute;
  mute.kind = NetFaultKind::kDelayedHeartbeat;
  mute.test_id = "minikv.TestPutGet";
  mute.attempt = 0;
  mute.delay_seconds = 30.0;
  fabric.net_faults.specs.push_back(mute);
  FaultSpec slow;
  slow.kind = FaultKind::kSlowWorker;
  slow.test_id = "minikv.TestPutGet";
  slow.attempt = 0;
  slow.slow_seconds = 2.0;
  fabric.faults.specs.push_back(slow);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "delayed heartbeat");
  EXPECT_GE(report.agent_disconnects, 1);
  EXPECT_GE(report.expired_leases, 1);
}

TEST(DistributedCampaignTest, StaleDuplicateResultDroppedIdempotently) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  NetFaultSpec dup;
  dup.kind = NetFaultKind::kStaleDuplicateResult;
  dup.test_id = "minikv.TestPutGet";
  dup.attempt = -1;
  fabric.net_faults.specs.push_back(dup);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "stale duplicate result");
  EXPECT_GE(report.duplicate_results, 1);
  // The duplicate is dropped, not folded: no agent died for it.
  EXPECT_EQ(report.agent_disconnects, 0);
}

TEST(DistributedCampaignTest, HungUnitCaughtByLeaseWatchdog) {
  CampaignOptions options = SmallCampaign();
  // A hung worker thread on a heartbeating host: heartbeats keep flowing, so
  // only the per-lease watchdog deadline can catch it.
  options.watchdog_floor_seconds = 0.5;
  options.watchdog_multiplier = 8.0;
  CampaignOptions reference = options;
  CampaignReport expected = SequentialReference(reference);

  DistributedCampaignOptions fabric;
  fabric.agents = 2;
  FaultSpec hang;
  hang.kind = FaultKind::kHang;
  hang.test_id = "ministream.TestDataExchange";
  hang.attempt = 0;
  fabric.faults.specs.push_back(hang);

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "hung unit");
  EXPECT_GE(report.hung_workers, 1);
  EXPECT_GE(report.expired_leases, 1);
  EXPECT_GE(report.agent_disconnects, 1);
}

TEST(DistributedCampaignTest, SeededRandomNetFaultsBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  // Random mode uses the non-fatal kind: a fatal rate fires at *unit*
  // coordinates (agent-independent by design), so nothing bounds how many
  // agents a given seed retires — the explicit-spec tests above pin each
  // fatal kind deterministically instead.
  DistributedCampaignOptions fabric;
  fabric.agents = 3;
  fabric.net_faults.seed = 7;
  fabric.net_faults.duplicate_rate = 0.25;

  CampaignReport report = RunFabric(options, fabric);
  ExpectIdenticalResults(report, expected, "seeded random net faults");
  // Every unit's attempt-0 coordinate is always visited, so the seed's
  // attempt-0 firings are a guaranteed floor. The exact count is accounting
  // noise (stale-snapshot requeues visit extra attempt coordinates), but
  // the *results* above must not move at all.
  EXPECT_GE(report.duplicate_results, 1);
  EXPECT_EQ(report.agent_disconnects, 0);

  CampaignReport again = RunFabric(options, fabric);
  ExpectIdenticalResults(again, expected, "seeded random net faults, rerun");
  EXPECT_GE(again.duplicate_results, 1);
}

TEST(DistributedCampaignTest, JournalResumeBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);
  const std::string path = ::testing::TempDir() + "/fabric_resume.zj";
  std::remove(path.c_str());

  // First invocation "crashes" the coordinator after two folds; the journal
  // holds exactly those two unit results.
  DistributedCampaignOptions first;
  first.agents = 2;
  first.journal_path = path;
  first.abort_after_folds = 2;
  CampaignReport partial = RunFabric(options, first);
  EXPECT_LT(partial.total_unit_test_runs, expected.total_unit_test_runs);

  // The restarted coordinator replays the journal prefix, dispatches only
  // the remainder over a fresh fleet, and must fold bitwise-identically.
  DistributedCampaignOptions second;
  second.agents = 2;
  second.journal_path = path;
  second.resume = true;
  CampaignReport resumed = RunFabric(options, second);
  ExpectIdenticalResults(resumed, expected, "fabric journal resume");
  EXPECT_EQ(resumed.resumed_units, 2);
  std::remove(path.c_str());
}

TEST(DistributedCampaignTest, ResumeUnderAgentCrashBitwiseIdentical) {
  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);
  const std::string path = ::testing::TempDir() + "/fabric_resume_crash.zj";
  std::remove(path.c_str());

  DistributedCampaignOptions first;
  first.agents = 2;
  first.journal_path = path;
  first.abort_after_folds = 3;
  RunFabric(options, first);

  // The resumed run additionally loses an agent mid-flight.
  DistributedCampaignOptions second;
  second.agents = 2;
  second.journal_path = path;
  second.resume = true;
  NetFaultSpec crash;
  crash.kind = NetFaultKind::kAgentCrash;
  crash.test_id = "ministream.TestTwoJobsSequential";
  crash.attempt = 0;
  second.net_faults.specs.push_back(crash);
  CampaignReport resumed = RunFabric(options, second);
  ExpectIdenticalResults(resumed, expected, "resume + agent crash");
  EXPECT_EQ(resumed.resumed_units, 3);
  std::remove(path.c_str());
}

// --- Executor wiring --------------------------------------------------------

TEST(DistributedExecutorTest, RegisteredAndBitwiseIdentical) {
  ASSERT_TRUE(ParseExecutorKind("distributed").has_value());
  EXPECT_EQ(*ParseExecutorKind("distributed"), ExecutorKind::kDistributed);
  EXPECT_EQ(std::string(ExecutorKindName(ExecutorKind::kDistributed)),
            "distributed");

  CampaignOptions options = SmallCampaign();
  CampaignReport expected = SequentialReference(options);

  auto executor = MakeExecutor(ExecutorKind::kDistributed);
  EXPECT_EQ(std::string(executor->name()), "distributed");
  EXPECT_TRUE(executor->supports_journal());
  EXPECT_TRUE(executor->supports_fault_injection());

  ExecutorOptions exec;
  exec.workers = 2;  // agents, for the distributed backend
  exec.agent_threads = 2;
  CampaignReport report =
      executor->Run(FullSchema(), FullCorpus(), options, exec);
  ExpectIdenticalResults(report, expected, "distributed executor");
}

TEST(DistributedExecutorTest, SingleBoxBackendsRefuseFabricOptions) {
  CampaignOptions options = SmallCampaign();

  ExecutorOptions threads;
  threads.workers = 1;
  threads.agent_threads = 2;
  EXPECT_THROW(MakeExecutor(ExecutorKind::kSequential)
                   ->Run(FullSchema(), FullCorpus(), options, threads),
               Error);

  ExecutorOptions nets;
  nets.workers = 2;
  nets.net_faults.agent_crash_rate = 0.5;
  EXPECT_THROW(MakeExecutor(ExecutorKind::kThreadPool)
                   ->Run(FullSchema(), FullCorpus(), options, nets),
               Error);

  ExecutorOptions listen;
  listen.workers = 2;
  listen.listen_address = ":9009";
  EXPECT_THROW(MakeExecutor(ExecutorKind::kSharded)
                   ->Run(FullSchema(), FullCorpus(), options, listen),
               Error);
}

}  // namespace
}  // namespace zebra
