// Tests for the rolling-reconfiguration planner (§7.1 workarounds, §7.3
// lessons) and the live online reconfiguration of MiniDFS nodes.

#include "src/core/reconfig_planner.h"

#include <gtest/gtest.h>

#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"
#include "src/runtime/cluster.h"

namespace zebra {
namespace {

std::vector<NodeRef> DfsNodes() {
  return {{"nn-1", "NameNode"}, {"dn-1", "DataNode"}, {"dn-2", "DataNode"}};
}

TEST(ReconfigPlannerTest, HeartbeatDecreaseUpdatesSendersFirst) {
  ReconfigPlan plan =
      PlanReconfiguration("dfs.heartbeat.interval", "100", "1", DfsNodes());
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_EQ(plan.steps[0].node_type, "DataNode");
  EXPECT_EQ(plan.steps[1].node_type, "DataNode");
  EXPECT_EQ(plan.steps[2].node_type, "NameNode");
}

TEST(ReconfigPlannerTest, HeartbeatIncreaseUpdatesReceiversFirst) {
  ReconfigPlan plan =
      PlanReconfiguration("dfs.heartbeat.interval", "1", "100", DfsNodes());
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_EQ(plan.steps[0].node_type, "NameNode");
}

TEST(ReconfigPlannerTest, MaxLimitIncreaseAllowedDecreaseRefused) {
  std::vector<NodeRef> nodes{{"rm-1", "ResourceManager"}};
  ReconfigPlan grow = PlanReconfiguration("yarn.scheduler.maximum-allocation-mb",
                                          "1024", "8192", nodes);
  EXPECT_TRUE(grow.feasible);

  ReconfigPlan shrink = PlanReconfiguration("yarn.scheduler.maximum-allocation-mb",
                                            "8192", "1024", nodes);
  EXPECT_FALSE(shrink.feasible);
  EXPECT_NE(shrink.rationale.find("decrease"), std::string::npos);
}

TEST(ReconfigPlannerTest, WireFormatParamsHaveNoSafeOrder) {
  for (const char* param :
       {"dfs.encrypt.data.transfer", "dfs.checksum.type", "hadoop.rpc.protection",
        "hbase.regionserver.thrift.framed", "akka.ssl.enabled"}) {
    ReconfigPlan plan = PlanReconfiguration(param, "false", "true", DfsNodes());
    EXPECT_FALSE(plan.feasible) << param;
    EXPECT_EQ(plan.category, ReconfigCategory::kWireFormatLike) << param;
  }
}

TEST(ReconfigPlannerTest, CountParamsHaveNoSafeOrder) {
  ReconfigPlan plan = PlanReconfiguration("taskmanager.numberOfTaskSlots", "1", "4",
                                          {{"tm-1", "TaskManager"}});
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.rationale.find("§7.3"), std::string::npos);
}

TEST(ReconfigPlannerTest, ConsistencyParamsAllowAnyOrderWithNote) {
  ReconfigPlan plan = PlanReconfiguration("dfs.namenode.stale.datanode.interval",
                                          "30000", "5000", DfsNodes());
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.steps.size(), 3u);
  EXPECT_EQ(plan.category, ReconfigCategory::kConsistencyLike);
}

TEST(ReconfigPlannerTest, UnknownParamsAreSafe) {
  ReconfigPlan plan = PlanReconfiguration("dfs.replication", "2", "3", DfsNodes());
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.category, ReconfigCategory::kSafe);
}

TEST(ReconfigPlannerTest, GuidanceCoversEveryTableThreeCategoryExample) {
  const auto& guidance = ReconfigGuidance();
  EXPECT_GT(guidance.size(), 30u);
  EXPECT_EQ(guidance.at("dfs.heartbeat.interval").category,
            ReconfigCategory::kHeartbeatLike);
  EXPECT_EQ(guidance.at("mapreduce.job.maps").category, ReconfigCategory::kCountLike);
}

// ---- Live online reconfiguration on a running MiniDFS cluster ---------------

TEST(LiveReconfigTest, SenderFirstDecreaseKeepsTheClusterHealthy) {
  Cluster cluster;
  Configuration conf;
  conf.SetInt(kDfsHeartbeatRecheck, 1000);
  conf.SetInt(kDfsHeartbeatInterval, 100);
  NameNode nn(&cluster, conf);
  DataNode dn(&cluster, &nn, conf);

  // Planner says: decrease 100 -> 1 updates the sender (DataNode) first.
  dn.Reconfigure(kDfsHeartbeatInterval, "1");
  cluster.AdvanceTime(60000);  // transient heterogeneity: sender faster — fine
  nn.Reconfigure(kDfsHeartbeatInterval, "1");
  cluster.AdvanceTime(60000);
  EXPECT_EQ(nn.NumLiveDataNodes(), 1);
}

TEST(LiveReconfigTest, ReceiverFirstDecreaseKillsTheDataNode) {
  Cluster cluster;
  Configuration conf;
  conf.SetInt(kDfsHeartbeatRecheck, 1000);
  conf.SetInt(kDfsHeartbeatInterval, 100);
  NameNode nn(&cluster, conf);
  DataNode dn(&cluster, &nn, conf);

  // Wrong order: the receiver now expects 1 s beats while the sender still
  // beats every 100 s; the dead window (2 s + 10 s) expires first.
  nn.Reconfigure(kDfsHeartbeatInterval, "1");
  EXPECT_THROW(cluster.AdvanceTime(120000), RpcError);
}

TEST(LiveReconfigTest, BandwidthIsReconfigurableOnline) {
  Cluster cluster;
  Configuration conf;
  NameNode nn(&cluster, conf);
  DataNode dn(&cluster, &nn, conf);
  EXPECT_EQ(dn.BalanceBandwidthPerSec(), kDfsBalanceBandwidthDefault);
  dn.Reconfigure(kDfsBalanceBandwidth, "10485760");
  EXPECT_EQ(dn.BalanceBandwidthPerSec(), 10485760);
}

TEST(LiveReconfigTest, UnsupportedParamsAreRefused) {
  Cluster cluster;
  Configuration conf;
  NameNode nn(&cluster, conf);
  DataNode dn(&cluster, &nn, conf);
  EXPECT_THROW(dn.Reconfigure("dfs.checksum.type", "CRC32"), RpcError);
  EXPECT_THROW(nn.Reconfigure("dfs.http.policy", "HTTPS_ONLY"), RpcError);
}

}  // namespace
}  // namespace zebra
