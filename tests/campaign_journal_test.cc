// Tests for the crash-safe campaign journal: round-trip, torn-tail
// truncation, checksum rejection, and fingerprint compatibility. The
// end-to-end resume behavior (bitwise-identical reports after a simulated
// parent crash) lives in fault_tolerance_test.cc; this file covers the file
// format itself.

#include "src/core/campaign_journal.h"

#include <signal.h>
#include <sys/resource.h>
#include <sys/stat.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/common/error.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

UnitWorkResult MakeUnit(const std::string& test_id, int64_t executed) {
  UnitWorkResult unit;
  unit.app = "minikv";
  unit.test_id = test_id;
  unit.executed_runs = executed;
  unit.prerun_executions = 1;
  UnitConfirmation confirmation;
  confirmation.param = "kv.param." + test_id;
  confirmation.p_value = 0.0012345678901234567;
  confirmation.witness_failure = "line one\nline two";
  unit.confirmations.push_back(confirmation);
  unit.run_durations.push_back(0.25);
  return unit;
}

void ExpectUnitsEqual(const UnitWorkResult& got, const UnitWorkResult& want) {
  EXPECT_EQ(got.app, want.app);
  EXPECT_EQ(got.test_id, want.test_id);
  EXPECT_EQ(got.executed_runs, want.executed_runs);
  EXPECT_EQ(got.prerun_executions, want.prerun_executions);
  ASSERT_EQ(got.confirmations.size(), want.confirmations.size());
  for (size_t i = 0; i < want.confirmations.size(); ++i) {
    EXPECT_EQ(got.confirmations[i].param, want.confirmations[i].param);
    // Bitwise: the record format round-trips doubles at full precision.
    EXPECT_EQ(got.confirmations[i].p_value, want.confirmations[i].p_value);
    EXPECT_EQ(got.confirmations[i].witness_failure,
              want.confirmations[i].witness_failure);
  }
  EXPECT_EQ(got.run_durations, want.run_durations);
}

int64_t FileSize(const std::string& path) {
  struct stat info {};
  return ::stat(path.c_str(), &info) == 0 ? info.st_size : -1;
}

TEST(CampaignJournalTest, AppendThenResumeRoundTrips) {
  const std::string path = ::testing::TempDir() + "/journal_roundtrip.zj";
  UnitWorkResult first = MakeUnit("minikv.TestA", 7);
  UnitWorkResult second = MakeUnit("minikv.TestB", 11);
  {
    CampaignJournal journal(path, "fp-1", /*resume=*/false);
    EXPECT_TRUE(journal.Append(0, first));
    EXPECT_TRUE(journal.Append(1, second));
  }
  CampaignJournal resumed(path, "fp-1", /*resume=*/true);
  ASSERT_EQ(resumed.recovered().size(), 2u);
  EXPECT_EQ(resumed.recovered()[0].first, 0u);
  ExpectUnitsEqual(resumed.recovered()[0].second, first);
  EXPECT_EQ(resumed.recovered()[1].first, 1u);
  ExpectUnitsEqual(resumed.recovered()[1].second, second);
  std::remove(path.c_str());
}

TEST(CampaignJournalTest, ResumeOverMissingOrEmptyFileStartsFresh) {
  const std::string path = ::testing::TempDir() + "/journal_missing.zj";
  std::remove(path.c_str());
  CampaignJournal journal(path, "fp-1", /*resume=*/true);
  EXPECT_TRUE(journal.recovered().empty());
  EXPECT_TRUE(journal.Append(0, MakeUnit("minikv.TestA", 1)));
  std::remove(path.c_str());
}

TEST(CampaignJournalTest, FreshOpenDiscardsExistingRecords) {
  const std::string path = ::testing::TempDir() + "/journal_fresh.zj";
  {
    CampaignJournal journal(path, "fp-1", /*resume=*/false);
    EXPECT_TRUE(journal.Append(0, MakeUnit("minikv.TestA", 1)));
  }
  {
    CampaignJournal journal(path, "fp-1", /*resume=*/false);  // no --resume
    EXPECT_TRUE(journal.recovered().empty());
  }
  CampaignJournal resumed(path, "fp-1", /*resume=*/true);
  EXPECT_TRUE(resumed.recovered().empty());
  std::remove(path.c_str());
}

TEST(CampaignJournalTest, GroupCommitWritesIdenticalBytes) {
  // The sync policy changes only *when* fdatasync runs, never what is
  // written: a batch:4 journal must be byte-for-byte the file an
  // every-record journal produces, and resume from either recovers the
  // same records.
  const std::string every_path = ::testing::TempDir() + "/journal_every.zj";
  const std::string batch_path = ::testing::TempDir() + "/journal_batch.zj";
  {
    CampaignJournal every(every_path, "fp-1", /*resume=*/false,
                          CampaignJournal::SyncPolicy{1});
    CampaignJournal batch(batch_path, "fp-1", /*resume=*/false,
                          CampaignJournal::SyncPolicy{4});
    for (int i = 0; i < 5; ++i) {
      UnitWorkResult unit = MakeUnit("minikv.Test" + std::to_string(i), i + 1);
      EXPECT_TRUE(every.Append(static_cast<size_t>(i), unit));
      EXPECT_TRUE(batch.Append(static_cast<size_t>(i), unit));
    }
    EXPECT_EQ(every.append_failures(), 0);
    EXPECT_EQ(batch.append_failures(), 0);
    // Destructors flush the batched tail (record 5 rode past the 4-record
    // boundary un-synced).
  }
  std::ifstream every_file(every_path, std::ios::binary);
  std::ifstream batch_file(batch_path, std::ios::binary);
  std::string every_bytes((std::istreambuf_iterator<char>(every_file)),
                          std::istreambuf_iterator<char>());
  std::string batch_bytes((std::istreambuf_iterator<char>(batch_file)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(every_bytes, batch_bytes);

  CampaignJournal resumed(batch_path, "fp-1", /*resume=*/true,
                          CampaignJournal::SyncPolicy{4});
  ASSERT_EQ(resumed.recovered().size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(resumed.recovered()[i].first, i);
    ExpectUnitsEqual(resumed.recovered()[i].second,
                     MakeUnit("minikv.Test" + std::to_string(i),
                              static_cast<int64_t>(i) + 1));
  }
  std::remove(every_path.c_str());
  std::remove(batch_path.c_str());
}

TEST(CampaignJournalTest, AppendFailureCountsAndDisablesJournaling) {
  const std::string path = ::testing::TempDir() + "/journal_enospc.zj";
  CampaignJournal journal(path, "fp-1", /*resume=*/false);
  UnitWorkResult unit = MakeUnit("minikv.TestA", 7);
  EXPECT_TRUE(journal.Append(0, unit));
  EXPECT_EQ(journal.append_failures(), 0);

  // Simulate a full disk: cap the file at its current size so the next
  // append's write fails with EFBIG (SIGXFSZ ignored for the duration).
  struct rlimit old_limit {};
  ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  struct sigaction ignore {};
  struct sigaction old_action {};
  ignore.sa_handler = SIG_IGN;
  ASSERT_EQ(::sigaction(SIGXFSZ, &ignore, &old_action), 0);
  struct rlimit tiny = old_limit;
  tiny.rlim_cur = static_cast<rlim_t>(FileSize(path));
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &tiny), 0);

  EXPECT_FALSE(journal.Append(1, MakeUnit("minikv.TestB", 11)));
  EXPECT_EQ(journal.append_failures(), 1);
  // Journaling is disabled, not retried: later appends fail without
  // inflating the counter past the first event.
  EXPECT_FALSE(journal.Append(2, MakeUnit("minikv.TestC", 13)));
  EXPECT_EQ(journal.append_failures(), 1);

  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  ASSERT_EQ(::sigaction(SIGXFSZ, &old_action, nullptr), 0);

  // The record synced before the failure is still a valid resume prefix.
  CampaignJournal resumed(path, "fp-1", /*resume=*/true);
  ASSERT_EQ(resumed.recovered().size(), 1u);
  ExpectUnitsEqual(resumed.recovered()[0].second, unit);
  std::remove(path.c_str());
}

TEST(CampaignJournalTest, TornTailIsTruncatedAndRecoveryKeepsPrefix) {
  const std::string path = ::testing::TempDir() + "/journal_torn.zj";
  UnitWorkResult first = MakeUnit("minikv.TestA", 7);
  {
    CampaignJournal journal(path, "fp-1", /*resume=*/false);
    EXPECT_TRUE(journal.Append(0, first));
    EXPECT_TRUE(journal.Append(1, MakeUnit("minikv.TestB", 11)));
  }
  // Tear the second record: chop bytes off the end, then smear garbage on,
  // as a crash mid-append (page-cache tail, partial flush) would.
  int64_t full_size = FileSize(path);
  ASSERT_GT(full_size, 40);
  {
    std::ofstream out(path, std::ios::in | std::ios::out);
    out.seekp(full_size - 25);
    out << "@@@@ torn tail @@@@";
  }
  {
    CampaignJournal resumed(path, "fp-1", /*resume=*/true);
    ASSERT_EQ(resumed.recovered().size(), 1u);
    ExpectUnitsEqual(resumed.recovered()[0].second, first);
  }
  // The torn tail was truncated: a second resume sees a clean one-record
  // journal, and appends land on a clean boundary.
  CampaignJournal again(path, "fp-1", /*resume=*/true);
  ASSERT_EQ(again.recovered().size(), 1u);
  EXPECT_TRUE(again.Append(1, MakeUnit("minikv.TestB", 11)));
  std::remove(path.c_str());
}

TEST(CampaignJournalTest, ChecksumMismatchEndsRecoveryAtLastGoodRecord) {
  const std::string path = ::testing::TempDir() + "/journal_bitflip.zj";
  {
    CampaignJournal journal(path, "fp-1", /*resume=*/false);
    EXPECT_TRUE(journal.Append(0, MakeUnit("minikv.TestA", 7)));
    EXPECT_TRUE(journal.Append(1, MakeUnit("minikv.TestB", 11)));
  }
  // Flip one payload byte inside the *second* record (well past the first
  // record's frame) without changing any length header.
  int64_t full_size = FileSize(path);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(full_size - 2);
    char byte = 0;
    file.get(byte);
    file.seekp(full_size - 2);
    file.put(byte == 'x' ? 'y' : 'x');
  }
  CampaignJournal resumed(path, "fp-1", /*resume=*/true);
  EXPECT_EQ(resumed.recovered().size(), 1u);
  std::remove(path.c_str());
}

TEST(CampaignJournalTest, FingerprintMismatchThrows) {
  const std::string path = ::testing::TempDir() + "/journal_fingerprint.zj";
  {
    CampaignJournal journal(path, "fp-1", /*resume=*/false);
    EXPECT_TRUE(journal.Append(0, MakeUnit("minikv.TestA", 7)));
  }
  EXPECT_THROW(CampaignJournal(path, "fp-2", /*resume=*/true), Error);
  std::remove(path.c_str());
}

TEST(CampaignJournalTest, NonJournalFileRefusesToResume) {
  const std::string path = ::testing::TempDir() + "/journal_notajournal.zj";
  {
    std::ofstream out(path);
    out << "this is not a journal at all\n";
  }
  EXPECT_THROW(CampaignJournal(path, "fp-1", /*resume=*/true), Error);
  std::remove(path.c_str());
}

TEST(CampaignJournalTest, FingerprintTracksResultAffectingOptionsOnly) {
  CampaignOptions base;
  base.apps = {"minikv"};
  std::string fingerprint = CampaignJournal::Fingerprint(base, FullCorpus());
  EXPECT_FALSE(fingerprint.empty());

  // Result-affecting knobs change the fingerprint...
  CampaignOptions pooling = base;
  pooling.enable_pooling = false;
  EXPECT_NE(CampaignJournal::Fingerprint(pooling, FullCorpus()), fingerprint);

  CampaignOptions trials = base;
  trials.first_trials += 1;
  EXPECT_NE(CampaignJournal::Fingerprint(trials, FullCorpus()), fingerprint);

  CampaignOptions apps = base;
  apps.apps = {"minikv", "ministream"};
  EXPECT_NE(CampaignJournal::Fingerprint(apps, FullCorpus()), fingerprint);

  // ...while watchdog/backoff tuning (which can never change findings) does
  // not: an operator may tighten deadlines on resume.
  CampaignOptions watchdog = base;
  watchdog.watchdog_floor_seconds = 1.0;
  watchdog.watchdog_multiplier = 2.0;
  watchdog.unit_attempt_limit = 9;
  EXPECT_EQ(CampaignJournal::Fingerprint(watchdog, FullCorpus()), fingerprint);
}

}  // namespace
}  // namespace zebra
