// Tests for the automatic dependency-rule miner (§4 future work).

#include "src/core/dependency_miner.h"

#include <set>

#include <gtest/gtest.h>

#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

TEST(DependencyMinerTest, RecoversTheHandWrittenHttpPolicyRules) {
  DependencyMiner miner(FullSchema(), FullCorpus());
  const ParamSpec* spec = FullSchema().Find("dfs.http.policy");
  ASSERT_NE(spec, nullptr);

  int64_t executions = 0;
  std::vector<MinedRule> rules = miner.MineParam("minidfs", *spec, &executions);
  EXPECT_GT(executions, 0);

  std::set<MinedRule> rule_set(rules.begin(), rules.end());
  EXPECT_TRUE(rule_set.count(
      MinedRule{"dfs.http.policy", "HTTPS_ONLY", "dfs.namenode.https-address"}) > 0)
      << "the https address must be identified as HTTPS_ONLY-conditional";
  EXPECT_TRUE(rule_set.count(
      MinedRule{"dfs.http.policy", "HTTP_ONLY", "dfs.namenode.http-address"}) > 0)
      << "the http address must be identified as HTTP_ONLY-conditional";
}

TEST(DependencyMinerTest, UnconditionalParamsProduceNoRules) {
  DependencyMiner miner(FullSchema(), FullCorpus());
  const ParamSpec* spec = FullSchema().Find("dfs.checksum.type");
  ASSERT_NE(spec, nullptr);

  int64_t executions = 0;
  std::vector<MinedRule> rules = miner.MineParam("minidfs", *spec, &executions);
  // The checksum type never gates which *other* parameters are read.
  for (const MinedRule& rule : rules) {
    EXPECT_NE(rule.dep_param, "dfs.bytes-per-checksum") << "read under every value";
    EXPECT_NE(rule.dep_param, "dfs.encrypt.data.transfer") << "read under every value";
  }
}

TEST(DependencyMinerTest, MineAppCoversYarnHttpPolicy) {
  DependencyMiner miner(FullSchema(), FullCorpus());
  int64_t executions = 0;
  std::vector<MinedRule> rules = miner.MineApp("miniyarn", &executions);

  std::set<MinedRule> rule_set(rules.begin(), rules.end());
  EXPECT_TRUE(rule_set.count(MinedRule{"yarn.http.policy", "HTTPS_ONLY",
                                       "yarn.timeline-service.webapp.https.address"}) >
              0);
  EXPECT_GT(executions, 0);
}

TEST(DependencyMinerTest, InstallRulesMakesThemQueryable) {
  ConfSchema schema;
  schema.AddParam({"p", "app", ParamType::kEnum, "a", {"a", "b"}, "gate"});
  schema.AddParam({"dep", "app", ParamType::kString, "x", {"x", "y"}, "gated"});

  DependencyMiner::InstallRules({MinedRule{"p", "b", "dep"}}, schema);
  auto overrides = schema.DependencyOverrides("p", "b");
  ASSERT_EQ(overrides.size(), 1u);
  EXPECT_EQ(overrides[0].first, "dep");
  EXPECT_EQ(overrides[0].second, "x") << "installed with the dependency's default";
  EXPECT_TRUE(schema.DependencyOverrides("p", "a").empty());
}

TEST(DependencyMinerTest, RuleOrderingAndEquality) {
  MinedRule a{"p", "v", "d1"};
  MinedRule b{"p", "v", "d2"};
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE((a == MinedRule{"p", "v", "d1"}));
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace zebra
