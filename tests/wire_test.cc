// Tests for the wire layer: checksums, codecs, encryption, framing, and —
// crucially — the failure modes under mismatched sender/receiver configs.

#include "src/sim/wire.h"

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "src/common/error.h"

namespace zebra {
namespace {

Bytes SamplePayload() {
  return BytesFromString("the quick brown fox jumps over the lazy dog 0123456789");
}

TEST(ChecksumTest, KnownCrc32Vector) {
  // CRC-32 of "123456789" is 0xCBF43926 (standard check value).
  Bytes data = BytesFromString("123456789");
  EXPECT_EQ(Crc32(data.data(), data.size()), 0xCBF43926u);
}

TEST(ChecksumTest, KnownCrc32cVector) {
  // CRC-32C of "123456789" is 0xE3069283 (standard check value).
  Bytes data = BytesFromString("123456789");
  EXPECT_EQ(Crc32c(data.data(), data.size()), 0xE3069283u);
}

TEST(ChecksumTest, TypesProduceDifferentValues) {
  Bytes data = SamplePayload();
  EXPECT_NE(Crc32(data.data(), data.size()), Crc32c(data.data(), data.size()));
  EXPECT_EQ(ComputeChecksum(ChecksumType::kNone, data.data(), data.size()), 0u);
}

TEST(ChecksumTest, ParseNamesAndRoundTrip) {
  EXPECT_EQ(ParseChecksumType("NONE"), ChecksumType::kNone);
  EXPECT_EQ(ParseChecksumType("crc32"), ChecksumType::kCrc32);
  EXPECT_EQ(ParseChecksumType("CRC32C"), ChecksumType::kCrc32c);
  EXPECT_EQ(ParseChecksumType("garbage"), ChecksumType::kCrc32);  // HDFS fallback
  EXPECT_STREQ(ChecksumTypeName(ChecksumType::kCrc32c), "CRC32C");
}

class CodecRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CodecRoundTripTest, RoundTrips) {
  Bytes payload = SamplePayload();
  Bytes compressed = CompressPayload(GetParam(), payload);
  EXPECT_EQ(DecompressPayload(GetParam(), compressed), payload);
}

TEST_P(CodecRoundTripTest, EmptyPayloadRoundTrips) {
  Bytes empty;
  EXPECT_EQ(DecompressPayload(GetParam(), CompressPayload(GetParam(), empty)), empty);
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecRoundTripTest,
                         ::testing::Values("none", "rle", "xor8"));

TEST(CodecTest, RleActuallyCompressesRuns) {
  Bytes runs(1000, 0x42);
  Bytes compressed = CompressPayload("rle", runs);
  EXPECT_LT(compressed.size(), runs.size());
}

TEST(CodecTest, MismatchedCodecFailsToDecode) {
  Bytes payload = SamplePayload();
  EXPECT_THROW(DecompressPayload("rle", CompressPayload("xor8", payload)), DecodeError);
  EXPECT_THROW(DecompressPayload("xor8", CompressPayload("rle", payload)), DecodeError);
  EXPECT_THROW(DecompressPayload("rle", CompressPayload("none", payload)), DecodeError);
}

TEST(CodecTest, UnknownCodecIsAnInternalError) {
  EXPECT_THROW(CompressPayload("zstd", SamplePayload()), InternalError);
  EXPECT_THROW(DecompressPayload("zstd", SamplePayload()), InternalError);
}

TEST(EncryptionTest, RoundTripsWithSameKey) {
  Bytes payload = SamplePayload();
  Bytes encrypted = EncryptPayload(payload, kClusterDataKey);
  EXPECT_NE(encrypted, payload);
  EXPECT_EQ(DecryptPayload(encrypted, kClusterDataKey), payload);
}

TEST(EncryptionTest, WrongKeyProducesGarbage) {
  Bytes payload = SamplePayload();
  Bytes encrypted = EncryptPayload(payload, kClusterDataKey);
  EXPECT_NE(DecryptPayload(encrypted, kClusterDataKey + 1), payload);
}

// Frame round-trips across every (encrypt, codec, checksum, bytes/checksum)
// combination — the matched-config property.
class FrameRoundTripTest
    : public ::testing::TestWithParam<
          std::tuple<bool, const char*, ChecksumType, int64_t>> {};

TEST_P(FrameRoundTripTest, MatchedConfigsRoundTrip) {
  WireConfig config;
  config.encrypt = std::get<0>(GetParam());
  config.compression = std::get<1>(GetParam());
  config.checksum = std::get<2>(GetParam());
  config.bytes_per_checksum = std::get<3>(GetParam());

  Bytes payload = SamplePayload();
  EXPECT_EQ(DecodeFrame(config, EncodeFrame(config, payload)), payload);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, FrameRoundTripTest,
    ::testing::Combine(::testing::Bool(), ::testing::Values("none", "rle", "xor8"),
                       ::testing::Values(ChecksumType::kNone, ChecksumType::kCrc32,
                                         ChecksumType::kCrc32c),
                       ::testing::Values(16, 512, 4096)));

TEST(FrameMismatchTest, EncryptionMismatchFails) {
  WireConfig sender;
  sender.encrypt = true;
  WireConfig receiver;
  receiver.encrypt = false;
  Bytes frame = EncodeFrame(sender, SamplePayload());
  EXPECT_THROW(DecodeFrame(receiver, frame), Error);

  // And the other polarity.
  WireConfig sender2;
  WireConfig receiver2;
  receiver2.encrypt = true;
  EXPECT_THROW(DecodeFrame(receiver2, EncodeFrame(sender2, SamplePayload())), Error);
}

TEST(FrameMismatchTest, ChecksumTypeMismatchFails) {
  WireConfig sender;
  sender.checksum = ChecksumType::kCrc32;
  WireConfig receiver;
  receiver.checksum = ChecksumType::kCrc32c;
  EXPECT_THROW(DecodeFrame(receiver, EncodeFrame(sender, SamplePayload())),
               ChecksumError);
}

TEST(FrameMismatchTest, BytesPerChecksumMismatchFails) {
  WireConfig sender;
  sender.bytes_per_checksum = 128;
  WireConfig receiver;
  receiver.bytes_per_checksum = 512;
  // The payload must span more than one chunk under the smaller setting for
  // the chunk counts to diverge (single-chunk frames decode identically).
  Bytes large(1000, 0x5A);
  EXPECT_THROW(DecodeFrame(receiver, EncodeFrame(sender, large)), ChecksumError);
}

TEST(FrameMismatchTest, BytesPerChecksumAgreesOnTinyPayloads) {
  WireConfig sender;
  sender.bytes_per_checksum = 128;
  WireConfig receiver;
  receiver.bytes_per_checksum = 512;
  Bytes tiny = BytesFromString("tiny");
  EXPECT_EQ(DecodeFrame(receiver, EncodeFrame(sender, tiny)), tiny);
}

TEST(FrameMismatchTest, CompressionMismatchFails) {
  WireConfig sender;
  sender.compression = "rle";
  WireConfig receiver;
  receiver.compression = "none";
  EXPECT_THROW(DecodeFrame(receiver, EncodeFrame(sender, SamplePayload())), Error);
}

TEST(FrameMismatchTest, NoneChecksumSenderFailsCrcReceiver) {
  WireConfig sender;
  sender.checksum = ChecksumType::kNone;
  WireConfig receiver;
  receiver.checksum = ChecksumType::kCrc32;
  EXPECT_THROW(DecodeFrame(receiver, EncodeFrame(sender, SamplePayload())),
               ChecksumError);
}

TEST(FrameTest, CorruptedByteDetected) {
  WireConfig config;
  Bytes frame = EncodeFrame(config, SamplePayload());
  frame[frame.size() / 2] ^= 0xFF;
  EXPECT_THROW(DecodeFrame(config, frame), Error);
}

TEST(FrameTest, TruncatedFrameDetected) {
  WireConfig config;
  Bytes frame = EncodeFrame(config, SamplePayload());
  frame.resize(frame.size() - 8);
  EXPECT_THROW(DecodeFrame(config, frame), Error);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  WireConfig config;
  Bytes empty;
  EXPECT_EQ(DecodeFrame(config, EncodeFrame(config, empty)), empty);
}

TEST(HandshakeTest, TokensAreOpaqueAndStable) {
  EXPECT_EQ(WireToken("privacy"), WireToken("privacy"));
  EXPECT_NE(WireToken("privacy"), WireToken("authentication"));
  EXPECT_EQ(WireToken("privacy").size(), 16u);
}

TEST(HandshakeTest, MatchingTokensPass) {
  EXPECT_NO_THROW(RequireMatchingTokens("svc", WireToken("a"), WireToken("a")));
}

TEST(HandshakeTest, MismatchedTokensThrow) {
  EXPECT_THROW(RequireMatchingTokens("svc", WireToken("a"), WireToken("b")),
               HandshakeError);
}

TEST(PacedWaitTest, FastOperationNeverTimesOut) {
  EXPECT_NO_THROW(SimulatePacedWait("op", 500, 1000, 30000));
}

TEST(PacedWaitTest, PacedServerKeepsSlowOperationAlive) {
  EXPECT_NO_THROW(SimulatePacedWait("op", 5000, 1000, 500));
}

TEST(PacedWaitTest, MismatchedPacingTimesOut) {
  EXPECT_THROW(SimulatePacedWait("op", 5000, 1000, 30000), TimeoutError);
}

TEST(PacedWaitTest, DisabledTimeoutNeverFires) {
  EXPECT_NO_THROW(SimulatePacedWait("op", 1000000, 0, 1000000));
}

}  // namespace
}  // namespace zebra
