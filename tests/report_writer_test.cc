// Tests for the markdown report writer.

#include "src/core/report_writer.h"

#include <gtest/gtest.h>

namespace zebra {
namespace {

CampaignReport SampleReport() {
  CampaignReport report;
  AppStageCounts counts;
  counts.original = 1000;
  counts.after_prerun = 100;
  counts.after_uncertainty = 95;
  counts.executed_runs = 40;
  report.per_app["minikv"] = counts;

  ParamFinding finding;
  finding.param = "hbase.regionserver.thrift.compact";
  finding.owning_app = "minikv";
  finding.witness_tests.insert("minikv.TestThriftAdminCreateTable");
  finding.example_failure = "DecodeError: thrift: expected compact protocol id";
  finding.best_p_value = 5.4e-5;
  report.findings[finding.param] = finding;

  report.first_trial_candidates = 3;
  report.filtered_by_hypothesis = 1;
  report.total_unit_test_runs = 41;
  report.wall_seconds = 0.5;
  report.run_durations_seconds.assign(41, 0.01);
  return report;
}

TEST(ReportWriterTest, ContainsStagesFindingsAndCost) {
  std::string markdown = RenderMarkdownReport(SampleReport());
  EXPECT_NE(markdown.find("| minikv | 1000 | 100 | 95 | 40 |"), std::string::npos);
  EXPECT_NE(markdown.find("### `hbase.regionserver.thrift.compact`"),
            std::string::npos);
  EXPECT_NE(markdown.find("`minikv.TestThriftAdminCreateTable`"), std::string::npos);
  EXPECT_NE(markdown.find("5.40e-05"), std::string::npos);
  EXPECT_NE(markdown.find("first-trial candidates: 3"), std::string::npos);
  EXPECT_NE(markdown.find("unit-test executions: 41"), std::string::npos);
}

TEST(ReportWriterTest, GroundTruthAnnotationIsOptIn) {
  std::string plain = RenderMarkdownReport(SampleReport());
  EXPECT_EQ(plain.find("ground truth:"), std::string::npos);

  ReportWriterOptions options;
  options.annotate_ground_truth = true;
  std::string annotated = RenderMarkdownReport(SampleReport(), options);
  EXPECT_NE(annotated.find("ground truth: true-unsafe"), std::string::npos);
}

TEST(ReportWriterTest, FleetEstimateIsOptIn) {
  ReportWriterOptions options;
  options.fleet_machines = 10;
  options.fleet_containers = 2;
  std::string markdown = RenderMarkdownReport(SampleReport(), options);
  EXPECT_NE(markdown.find("fleet (10 x 2 slots)"), std::string::npos);

  std::string without = RenderMarkdownReport(SampleReport());
  EXPECT_EQ(without.find("fleet ("), std::string::npos);
}

TEST(ReportWriterTest, UnknownParamsAreUnclassified) {
  CampaignReport report = SampleReport();
  ParamFinding odd;
  odd.param = "made.up.parameter";
  odd.owning_app = "minikv";
  odd.example_failure = "x";
  report.findings[odd.param] = odd;

  ReportWriterOptions options;
  options.annotate_ground_truth = true;
  std::string markdown = RenderMarkdownReport(report, options);
  EXPECT_NE(markdown.find("ground truth: unclassified"), std::string::npos);
}

TEST(ReportWriterTest, EmptyReportRenders) {
  CampaignReport report;
  std::string markdown = RenderMarkdownReport(report);
  EXPECT_NE(markdown.find("Heterogeneous-unsafe parameters (0)"), std::string::npos);
}

}  // namespace
}  // namespace zebra
