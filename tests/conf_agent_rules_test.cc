// Tests for ConfAgent's mapping rules — each scenario in Figure 2 of the
// paper is reproduced here directly.

#include "src/conf/conf_agent.h"

#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/conf/configuration.h"
#include "src/runtime/node_init.h"

namespace zebra {
namespace {

constexpr char kApp[] = "testapp";

TestPlan PlanFor(const std::string& param, ValueAssigner assigner) {
  TestPlan plan;
  ParamPlan p;
  p.param = param;
  p.assigner = std::move(assigner);
  plan.Add(std::move(p));
  return plan;
}

// A Server in the style of Figure 2b: init function brackets, a ref-to-clone
// of the shared conf, and a sub-component creating its own blank conf.
class Server {
 public:
  Server(const Configuration& conf, bool create_component = true)
      : init_scope_(kApp, this, "Server", __FILE__, __LINE__),
        conf_(AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__)) {
    if (create_component) {
      component_conf_ = std::make_unique<Configuration>();  // Figure 2c line 5
    }
    init_scope_.Finish();
  }

  const Configuration& conf() const { return conf_; }
  const Configuration& component_conf() const { return *component_conf_; }

  // funA of Figure 2b/2d: node code invoked from the unit-test thread.
  std::string FunA(const std::string& name) { return conf_.Get(name, "default"); }

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  std::unique_ptr<Configuration> component_conf_;
};

TEST(ConfAgentRulesTest, Rule12_ConfBeforeAnyNodeBelongsToUnitTest) {
  ConfAgentSession session(TestPlan{});
  Configuration conf;  // Figure 2d line 2
  EXPECT_EQ(ConfAgent::Instance().EntityOf(conf.id()), kClientEntity);
  session.End();
}

TEST(ConfAgentRulesTest, Rule2_RefToCloneMapsCloneToNodeAndOriginalToTest) {
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  Server server1(conf, /*create_component=*/false);
  EXPECT_EQ(ConfAgent::Instance().EntityOf(server1.conf().id()), "Server");
  EXPECT_EQ(ConfAgent::Instance().EntityOf(conf.id()), kClientEntity);
  session.End();
}

TEST(ConfAgentRulesTest, Rule11_BlankConfDuringInitBelongsToNode) {
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  Server server1(conf);  // creates a Component conf inside its init function
  EXPECT_EQ(ConfAgent::Instance().EntityOf(server1.component_conf().id()), "Server");
  session.End();
}

TEST(ConfAgentRulesTest, Rule3_CloneFollowsItsOriginal) {
  ConfAgentSession session(TestPlan{});
  Configuration test_conf;
  Configuration test_clone(test_conf);
  EXPECT_EQ(ConfAgent::Instance().EntityOf(test_clone.id()), kClientEntity);

  Server server1(test_conf);
  Configuration node_clone(server1.conf());
  EXPECT_EQ(ConfAgent::Instance().EntityOf(node_clone.id()), "Server");
  session.End();
}

TEST(ConfAgentRulesTest, BlankConfAfterNodesOutsideInitIsUncertain) {
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  Server server1(conf);
  Configuration orphan;  // after nodes exist, outside any init function
  EXPECT_EQ(ConfAgent::Instance().EntityOf(orphan.id()), "@uncertain");

  orphan.Get("some.param", "v");
  SessionReport report = session.End();
  EXPECT_EQ(report.uncertain_conf_count, 1);
  EXPECT_TRUE(report.uncertain_params.count("some.param") > 0)
      << "params read through uncertain confs must be excluded";
}

TEST(ConfAgentRulesTest, NodeIndexFollowsStartOrder) {
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  Server server1(conf);
  Server server2(conf);
  EXPECT_EQ(ConfAgent::Instance().NodeIndexOf(server1.conf().id()), 0);
  EXPECT_EQ(ConfAgent::Instance().NodeIndexOf(server2.conf().id()), 1);

  SessionReport report = session.End();
  EXPECT_EQ(report.node_counts.at("Server"), 2);
}

TEST(ConfAgentRulesTest, Step7_InternalCallFromTestThreadUsesNodeConf) {
  // The scenario the thread-based attempt (§6.1) gets wrong: funA runs on the
  // unit-test thread but must observe server1's configuration.
  TestPlan plan = PlanFor("p", ValueAssigner::UniformGroup("Server", "server-value",
                                                           "client-value"));
  ConfAgentSession session(plan);
  Configuration conf;
  Server server1(conf);
  EXPECT_EQ(server1.FunA("p"), "server-value");
  EXPECT_EQ(conf.Get("p", "default"), "client-value");
  session.End();
}

TEST(ConfAgentRulesTest, RoundRobinAssignsWithinGroupByIndex) {
  TestPlan plan = PlanFor("p", ValueAssigner::RoundRobinGroup("Server", "even", "odd"));
  ConfAgentSession session(plan);
  Configuration conf;
  Server server1(conf);
  Server server2(conf);
  Server server3(conf);
  EXPECT_EQ(server1.FunA("p"), "even");
  EXPECT_EQ(server2.FunA("p"), "odd");
  EXPECT_EQ(server3.FunA("p"), "even");
  session.End();
}

TEST(ConfAgentRulesTest, InterceptSetWritesBackToParentConf) {
  // Figure 2d line 8: the unit test expects the node to fill values into the
  // shared conf; the ref-to-clone replacement would break that without the
  // interceptSet write-back.
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  Server server1(conf);
  const_cast<Configuration&>(server1.conf()).Set("filled.by.node", "42");
  EXPECT_EQ(conf.Get("filled.by.node", ""), "42");
  session.End();
}

TEST(ConfAgentRulesTest, InitOnSpawnedThreadStillMapsConfs) {
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  std::unique_ptr<Server> server;
  std::thread t([&] { server = std::make_unique<Server>(conf); });
  t.join();
  EXPECT_EQ(ConfAgent::Instance().EntityOf(server->conf().id()), "Server");
  EXPECT_EQ(ConfAgent::Instance().EntityOf(server->component_conf().id()), "Server");
  session.End();
}

TEST(ConfAgentRulesTest, ThreadContextIsPerThread) {
  // A conf created on an unrelated thread while another thread runs an init
  // function must not inherit that node.
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  Server anchor(conf);  // nodeTable is non-empty now

  std::optional<std::string> other_entity;
  std::thread t([&] {
    Configuration other;
    other_entity = ConfAgent::Instance().EntityOf(other.id());
  });
  t.join();
  EXPECT_EQ(other_entity, "@uncertain");
  session.End();
}

TEST(ConfAgentRulesTest, SharingDetectedWhenTestConfHandedToNodes) {
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  Server server1(conf);
  SessionReport report = session.End();
  EXPECT_TRUE(report.conf_sharing_detected);
  EXPECT_GE(report.ref_to_clones, 1);
}

TEST(ConfAgentRulesTest, NoSharingWithoutNodes) {
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  conf.Get("x", "y");
  SessionReport report = session.End();
  EXPECT_FALSE(report.conf_sharing_detected);
  EXPECT_TRUE(report.any_conf_usage);
  EXPECT_FALSE(report.StartedAnyNode());
}

TEST(ConfAgentRulesTest, ReadsRecordedPerEntity) {
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  conf.Get("client.param", "x");
  Server server1(conf);
  server1.FunA("server.param");
  SessionReport report = session.End();
  EXPECT_TRUE(report.ParamsReadBy(kClientEntity).count("client.param") > 0);
  EXPECT_TRUE(report.ParamsReadBy("Server").count("server.param") > 0);
  EXPECT_FALSE(report.ParamsReadBy("Server").count("client.param") > 0);
}

TEST(ConfAgentRulesTest, HooksAreNoOpsOutsideSessions) {
  Configuration conf;
  conf.Set("a", "1");
  EXPECT_EQ(conf.Get("a"), "1");
  EXPECT_FALSE(ConfAgent::Instance().InSession());
  EXPECT_EQ(ConfAgent::Instance().EntityOf(conf.id()), std::nullopt);
}

TEST(ConfAgentRulesTest, RefToCloneOutsideInitIsUncertain) {
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  // Developer misuse: refToCloneConf outside any node init function. The
  // clone cannot be mapped and must land in uncertainConfIDs.
  Configuration stray = Configuration::RefToClone(conf);
  EXPECT_EQ(ConfAgent::Instance().EntityOf(stray.id()), "@uncertain");
  stray.Get("stray.param", "x");
  SessionReport report = session.End();
  EXPECT_TRUE(report.uncertain_params.count("stray.param") > 0);
}

TEST(ConfAgentRulesTest, UnbalancedStopInitIsTolerated) {
  ConfAgentSession session(TestPlan{});
  ConfAgent::Instance().StopInit();  // no matching StartInit: warns, no crash
  Configuration conf;
  EXPECT_EQ(ConfAgent::Instance().EntityOf(conf.id()), kClientEntity);
  session.End();
}

TEST(ConfAgentRulesTest, CloneChainsPromoteTransitively) {
  ConfAgentSession session(TestPlan{});
  Configuration root;
  Server anchor(root);  // nodeTable non-empty from here on

  // A chain of clones starting from an unmappable conf...
  Configuration orphan;            // uncertain (nodes exist, no init running)
  Configuration child(orphan);     // uncertain via Rule 3
  EXPECT_EQ(ConfAgent::Instance().EntityOf(child.id()), "@uncertain");

  // ...until a node ref-clones the tip: Rule 2 promotes the ancestors.
  Server adopter(child);
  EXPECT_EQ(ConfAgent::Instance().EntityOf(child.id()), kClientEntity);
  EXPECT_EQ(ConfAgent::Instance().EntityOf(orphan.id()), kClientEntity);
  session.End();
}

TEST(ConfAgentRulesTest, ConcurrentNodeInitsMapCorrectly) {
  // Stress Rule 1.1's per-thread context: many threads each run a node
  // initialization concurrently; every node's confs must map to that node
  // and indexes must be a permutation of 0..N-1.
  TestPlan plan = PlanFor("p", ValueAssigner::RoundRobinGroup("Server", "even", "odd"));
  ConfAgentSession session(plan);
  Configuration conf;

  constexpr int kThreads = 16;
  std::vector<std::unique_ptr<Server>> servers(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&servers, &conf, i] { servers[i] = std::make_unique<Server>(conf); });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  std::set<int> indexes;
  for (const auto& server : servers) {
    EXPECT_EQ(ConfAgent::Instance().EntityOf(server->conf().id()), "Server");
    EXPECT_EQ(ConfAgent::Instance().EntityOf(server->component_conf().id()), "Server");
    int index = ConfAgent::Instance().NodeIndexOf(server->conf().id());
    indexes.insert(index);
    // The round-robin plan value must match the node's index parity.
    EXPECT_EQ(server->FunA("p"), index % 2 == 0 ? "even" : "odd");
  }
  EXPECT_EQ(indexes.size(), static_cast<size_t>(kThreads))
      << "indexes must be unique";
  EXPECT_EQ(*indexes.begin(), 0);
  EXPECT_EQ(*indexes.rbegin(), kThreads - 1);

  SessionReport report = session.End();
  EXPECT_EQ(report.node_counts.at("Server"), kThreads);
  EXPECT_EQ(report.uncertain_conf_count, 0);
}

TEST(ConfAgentRulesTest, NestedSessionsAreRejected) {
  ConfAgentSession session(TestPlan{});
  EXPECT_THROW(ConfAgent::Instance().BeginSession(TestPlan{}), InternalError);
  session.End();
}

}  // namespace
}  // namespace zebra
