// Tests for the deployment safety checker.

#include "src/core/deployment_checker.h"

#include <gtest/gtest.h>

namespace zebra {
namespace {

DeploymentChecker KnownBase() {
  return DeploymentChecker(std::map<std::string, std::string>{
      {"dfs.checksum.type", "checksum verification fails on DataNode"},
      {"dfs.heartbeat.interval", "NameNode falsely declares DataNodes dead"},
  });
}

TEST(DeploymentCheckerTest, HomogeneousDeploymentIsSafe) {
  ConfFileSet proposal;
  proposal.AddFile("nn-1", "dfs.checksum.type = CRC32C\ndfs.replication = 2\n");
  proposal.AddFile("dn-1", "dfs.checksum.type = CRC32C\ndfs.replication = 2\n");
  DeploymentVerdict verdict = KnownBase().Check(proposal);
  EXPECT_TRUE(verdict.safe);
  EXPECT_TRUE(verdict.warnings.empty());
  EXPECT_TRUE(verdict.unknown_heterogeneous.empty());
}

TEST(DeploymentCheckerTest, KnownUnsafeHeterogeneityIsFlagged) {
  ConfFileSet proposal;
  proposal.AddFile("dn-1", "dfs.checksum.type = CRC32\n");
  proposal.AddFile("dn-2", "dfs.checksum.type = CRC32C\n");
  DeploymentVerdict verdict = KnownBase().Check(proposal);
  EXPECT_FALSE(verdict.safe);
  ASSERT_EQ(verdict.warnings.size(), 1u);
  EXPECT_EQ(verdict.warnings[0].param, "dfs.checksum.type");
  EXPECT_EQ(verdict.warnings[0].values.at("dn-1"), "CRC32");
  EXPECT_EQ(verdict.warnings[0].values.at("dn-2"), "CRC32C");
  EXPECT_NE(verdict.warnings[0].reason.find("checksum"), std::string::npos);
}

TEST(DeploymentCheckerTest, UnknownHeterogeneityIsSeparated) {
  ConfFileSet proposal;
  proposal.AddFile("dn-1", "dfs.datanode.data.dir = /disk1\n");
  proposal.AddFile("dn-2", "dfs.datanode.data.dir = /disk2\n");
  DeploymentVerdict verdict = KnownBase().Check(proposal);
  EXPECT_TRUE(verdict.safe) << "unknown parameters do not fail the check";
  EXPECT_EQ(verdict.unknown_heterogeneous.size(), 1u);
  EXPECT_TRUE(verdict.unknown_heterogeneous.count("dfs.datanode.data.dir") > 0);
}

TEST(DeploymentCheckerTest, BuildsFromCampaignReport) {
  CampaignReport report;
  ParamFinding finding;
  finding.param = "akka.ssl.enabled";
  finding.owning_app = "ministream";
  finding.example_failure = "HandshakeError: akka-control-plane";
  report.findings[finding.param] = finding;

  DeploymentChecker checker(report);
  EXPECT_EQ(checker.knowledge_base_size(), 1);

  ConfFileSet proposal;
  proposal.AddFile("jm-1", "akka.ssl.enabled = true\n");
  proposal.AddFile("tm-1", "akka.ssl.enabled = false\n");
  DeploymentVerdict verdict = checker.Check(proposal);
  EXPECT_FALSE(verdict.safe);
  ASSERT_EQ(verdict.warnings.size(), 1u);
  EXPECT_NE(verdict.warnings[0].reason.find("HandshakeError"), std::string::npos);
}

TEST(DeploymentCheckerTest, MultipleWarningsReported) {
  ConfFileSet proposal;
  proposal.AddFile("a", "dfs.checksum.type = CRC32\ndfs.heartbeat.interval = 1\n");
  proposal.AddFile("b", "dfs.checksum.type = CRC32C\ndfs.heartbeat.interval = 100\n");
  DeploymentVerdict verdict = KnownBase().Check(proposal);
  EXPECT_FALSE(verdict.safe);
  EXPECT_EQ(verdict.warnings.size(), 2u);
}

}  // namespace
}  // namespace zebra
