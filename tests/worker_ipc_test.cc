// Tests for the hardened pipe plumbing both campaign runners share — frame
// round-trips, malformed-header rejection, and the SIGPIPE regression: a
// worker that dies between dispatch and the parent's write must surface as a
// WriteFrame/WriteAll return-value failure, never as parent process death.

#include "src/core/worker_ipc.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>

namespace zebra {
namespace {

class PipePair {
 public:
  PipePair() { EXPECT_EQ(::pipe(fds_), 0); }
  ~PipePair() {
    CloseRead();
    CloseWrite();
  }
  int read_fd() const { return fds_[0]; }
  int write_fd() const { return fds_[1]; }
  void CloseRead() {
    if (fds_[0] >= 0) {
      ::close(fds_[0]);
      fds_[0] = -1;
    }
  }
  void CloseWrite() {
    if (fds_[1] >= 0) {
      ::close(fds_[1]);
      fds_[1] = -1;
    }
  }

 private:
  int fds_[2] = {-1, -1};
};

TEST(WorkerIpcTest, FrameRoundTrip) {
  PipePair pipe;
  const std::string payload = "run 42 0\nparam.a,param.b";
  ASSERT_TRUE(WriteFrame(pipe.write_fd(), payload));
  std::string got;
  ASSERT_TRUE(ReadFrame(pipe.read_fd(), &got));
  EXPECT_EQ(got, payload);
}

TEST(WorkerIpcTest, EmptyAndBinaryPayloadsRoundTrip) {
  PipePair pipe;
  ASSERT_TRUE(WriteFrame(pipe.write_fd(), ""));
  std::string binary("\x00\x01\xff\n\x1f", 5);
  ASSERT_TRUE(WriteFrame(pipe.write_fd(), binary));
  std::string got;
  ASSERT_TRUE(ReadFrame(pipe.read_fd(), &got));
  EXPECT_EQ(got, "");
  ASSERT_TRUE(ReadFrame(pipe.read_fd(), &got));
  EXPECT_EQ(got, binary);
}

TEST(WorkerIpcTest, ReadFrameFailsOnEof) {
  PipePair pipe;
  pipe.CloseWrite();
  std::string got;
  EXPECT_FALSE(ReadFrame(pipe.read_fd(), &got));
}

TEST(WorkerIpcTest, ReadFrameRejectsGarbledHeader) {
  // Exactly what a kGarbledFrame fault injects: 16 junk bytes where the
  // zero-padded decimal length header belongs.
  PipePair pipe;
  ASSERT_TRUE(WriteAll(pipe.write_fd(), "!GARBLED-FRAME!!", 16));
  pipe.CloseWrite();
  std::string got;
  EXPECT_FALSE(ReadFrame(pipe.read_fd(), &got));
}

TEST(WorkerIpcTest, ReadFrameRejectsTruncatedPayload) {
  PipePair pipe;
  // A valid header promising more bytes than ever arrive (torn write).
  ASSERT_TRUE(WriteAll(pipe.write_fd(), "0000000000000100", 16));
  ASSERT_TRUE(WriteAll(pipe.write_fd(), "short", 5));
  pipe.CloseWrite();
  std::string got;
  EXPECT_FALSE(ReadFrame(pipe.read_fd(), &got));
}

TEST(WorkerIpcTest, WriteToDeadReaderFailsWithoutKillingProcess) {
  // Regression test for the dispatch-time race: the worker exits (its read
  // end closes) after the parent decided to dispatch but before the write.
  // With SIGPIPE ignored the write must return false — reaching the
  // assertions below *is* the test; an unhandled SIGPIPE would kill us.
  ScopedIgnoreSigPipe guard;

  PipePair pipe;
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child plays the worker that dies immediately without reading.
    std::_Exit(0);
  }
  pipe.CloseRead();  // parent's copy; the child's copy dies with the child
  ASSERT_TRUE(ReapAll({pid}));

  // Fill past the pipe buffer if needed: the first small write after the
  // reader is gone already fails with EPIPE.
  EXPECT_FALSE(WriteFrame(pipe.write_fd(), "run 0 0\n"));
  EXPECT_FALSE(WriteAll(pipe.write_fd(), "x", 1));
}

TEST(WorkerIpcTest, ZeroLengthTransfersAreNoOpSuccesses) {
  // size == 0 must succeed without touching the buffer or the fd: callers
  // pass payload.data() of an empty std::string, which may be any pointer
  // the implementation must not dereference — and a read(fd, buf, 0) would
  // be indistinguishable from EOF if it were attempted.
  PipePair pipe;
  EXPECT_TRUE(WriteAll(pipe.write_fd(), nullptr, 0));
  EXPECT_TRUE(ReadExact(pipe.read_fd(), nullptr, 0));

  // Even on a closed-down pipe: a no-op has no failure mode.
  pipe.CloseRead();
  ScopedIgnoreSigPipe guard;
  EXPECT_TRUE(WriteAll(pipe.write_fd(), nullptr, 0));
}

TEST(WorkerIpcTest, EpipeOnHalfClosedSocketSurfacesAsWriteFailure) {
  // The fabric variant of the dead-reader race: on a TCP-style socket the
  // peer's close is asymmetric — our first write after the half-close may
  // succeed into the kernel buffer (triggering an RST), and only a *later*
  // write surfaces EPIPE. Every write must report failure by return value
  // eventually, never by SIGPIPE process death.
  ScopedIgnoreSigPipe guard;

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);  // peer vanishes (agent crash)

  // Drive writes until the failure surfaces; with AF_UNIX the very first
  // write to a closed peer already fails, but the loop documents the
  // contract for transports where it takes two.
  bool failed = false;
  for (int i = 0; i < 4 && !failed; ++i) {
    failed = !WriteAll(fds[0], "x", 1);
  }
  EXPECT_TRUE(failed);
  // Once broken, always broken: subsequent writes keep failing cleanly.
  EXPECT_FALSE(WriteFrame(fds[0], "run 0 0\n"));
  ::close(fds[0]);
}

TEST(WorkerIpcTest, ReapAllReportsNonZeroExit) {
  pid_t ok = ::fork();
  ASSERT_GE(ok, 0);
  if (ok == 0) {
    std::_Exit(0);
  }
  EXPECT_TRUE(ReapAll({ok}));

  pid_t bad = ::fork();
  ASSERT_GE(bad, 0);
  if (bad == 0) {
    std::_Exit(13);
  }
  EXPECT_FALSE(ReapAll({bad}));
}

}  // namespace
}  // namespace zebra
