// Tests for the MiniMR substrate: partitioning, shuffle wire formats,
// committer versions, output naming — each Table 3 mechanism directly.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/minimr/job_history_server.h"
#include "src/apps/minimr/map_task.h"
#include "src/apps/minimr/mr_job.h"
#include "src/apps/minimr/mr_params.h"
#include "src/apps/minimr/reduce_task.h"
#include "src/common/error.h"
#include "src/common/strings.h"
#include "src/runtime/cluster.h"

namespace zebra {
namespace {

const std::vector<std::string>& Records() {
  static const auto* kRecords = new std::vector<std::string>{
      "alpha beta alpha", "beta gamma", "alpha delta gamma gamma"};
  return *kRecords;
}

class MiniMrTest : public ::testing::Test {
 protected:
  Cluster cluster_;
};

TEST_F(MiniMrTest, WordCountProducesCorrectTotals) {
  Configuration conf;
  WordCountResult result = RunWordCountJob(cluster_, conf, Records());
  EXPECT_EQ(result.counts.at("alpha"), 3);
  EXPECT_EQ(result.counts.at("beta"), 2);
  EXPECT_EQ(result.counts.at("gamma"), 3);
  EXPECT_EQ(result.counts.at("delta"), 1);
  EXPECT_EQ(result.output_files.size(), 1u);
}

class WordCountConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool, bool, int>> {};

TEST_P(WordCountConfigSweep, HomogeneousConfigsAllWork) {
  auto [maps, reduces, compress, encrypted, committer] = GetParam();
  Cluster cluster;
  Configuration conf;
  conf.SetInt(kMrJobMaps, maps);
  conf.SetInt(kMrJobReduces, reduces);
  conf.SetBool(kMrMapOutputCompress, compress);
  conf.SetBool(kMrEncryptedIntermediate, encrypted);
  conf.SetInt(kMrCommitterVersion, committer);

  WordCountResult result = RunWordCountJob(cluster, conf, Records());
  EXPECT_EQ(result.counts.at("alpha"), 3);
  EXPECT_EQ(result.counts.at("gamma"), 3);
  EXPECT_EQ(result.output_files.size(), static_cast<size_t>(reduces));
  EXPECT_TRUE(result.store.temporary.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, WordCountConfigSweep,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1, 2, 4),
                       ::testing::Bool(), ::testing::Bool(), ::testing::Values(1, 2)));

TEST_F(MiniMrTest, ReducerWithLargerJobMapsFailsToCopy) {
  Configuration driver_conf;
  driver_conf.SetInt(kMrJobMaps, 2);
  std::vector<std::unique_ptr<MapTask>> maps;
  for (int m = 0; m < 2; ++m) {
    maps.push_back(std::make_unique<MapTask>(&cluster_, driver_conf, m));
    maps.back()->Run(Records());
  }
  std::vector<MapTask*> map_ptrs{maps[0].get(), maps[1].get()};

  Configuration reducer_conf;
  reducer_conf.SetInt(kMrJobMaps, 4);  // believes 4 mappers ran
  ReduceTask reducer(&cluster_, reducer_conf, 0);
  MrOutputStore store;
  EXPECT_THROW(reducer.Run(map_ptrs, &store), RpcError);
}

TEST_F(MiniMrTest, ReducerWithSmallerJobMapsLosesData) {
  Configuration driver_conf;
  driver_conf.SetInt(kMrJobMaps, 2);
  std::vector<std::unique_ptr<MapTask>> maps;
  for (int m = 0; m < 2; ++m) {
    maps.push_back(std::make_unique<MapTask>(&cluster_, driver_conf, m));
    maps.back()->Run({Records()[m]});
  }
  std::vector<MapTask*> map_ptrs{maps[0].get(), maps[1].get()};

  Configuration reducer_conf;
  reducer_conf.SetInt(kMrJobMaps, 1);  // copies only mapper 0
  ReduceTask reducer(&cluster_, reducer_conf, 0);
  MrOutputStore store;
  reducer.Run(map_ptrs, &store);
  // "alpha beta alpha" alone: alpha=2 (missing mapper 1's contribution).
  EXPECT_EQ(reducer.counts().at("alpha"), 2);
  EXPECT_EQ(reducer.counts().count("gamma"), 0u);
}

TEST_F(MiniMrTest, PartitionCountMismatchBreaksShuffle) {
  Configuration map_conf;
  map_conf.SetInt(kMrJobReduces, 1);  // mapper produces one partition
  MapTask map(&cluster_, map_conf, 0);
  map.Run(Records());

  Configuration reducer_conf;
  reducer_conf.SetInt(kMrJobMaps, 1);
  reducer_conf.SetInt(kMrJobReduces, 2);
  ReduceTask reducer(&cluster_, reducer_conf, 1);  // asks for partition 1
  MrOutputStore store;
  EXPECT_THROW(reducer.Run({&map}, &store), RpcError);
}

TEST_F(MiniMrTest, CompressionMismatchBreaksShuffleDecode) {
  Configuration map_conf;
  map_conf.SetBool(kMrMapOutputCompress, true);
  MapTask map(&cluster_, map_conf, 0);
  map.Run(Records());

  Configuration reducer_conf;  // expects uncompressed
  reducer_conf.SetInt(kMrJobMaps, 1);
  ReduceTask reducer(&cluster_, reducer_conf, 0);
  MrOutputStore store;
  EXPECT_THROW(reducer.Run({&map}, &store), Error);
}

TEST_F(MiniMrTest, CodecMismatchBreaksShuffleDecode) {
  Configuration map_conf;
  map_conf.SetBool(kMrMapOutputCompress, true);
  map_conf.Set(kMrMapOutputCodec, "rle");
  MapTask map(&cluster_, map_conf, 0);
  map.Run(Records());

  Configuration reducer_conf;
  reducer_conf.SetInt(kMrJobMaps, 1);
  reducer_conf.SetBool(kMrMapOutputCompress, true);
  reducer_conf.Set(kMrMapOutputCodec, "xor8");
  ReduceTask reducer(&cluster_, reducer_conf, 0);
  MrOutputStore store;
  EXPECT_THROW(reducer.Run({&map}, &store), DecodeError);
}

TEST_F(MiniMrTest, EncryptionMismatchBreaksShuffleDecode) {
  Configuration map_conf;
  map_conf.SetBool(kMrEncryptedIntermediate, true);
  MapTask map(&cluster_, map_conf, 0);
  map.Run(Records());

  Configuration reducer_conf;
  reducer_conf.SetInt(kMrJobMaps, 1);
  ReduceTask reducer(&cluster_, reducer_conf, 0);
  MrOutputStore store;
  EXPECT_THROW(reducer.Run({&map}, &store), Error);
}

TEST_F(MiniMrTest, ShuffleSslMismatchFailsHandshake) {
  Configuration map_conf;
  map_conf.SetBool(kMrShuffleSsl, true);
  MapTask map(&cluster_, map_conf, 0);
  map.Run(Records());

  Configuration reducer_conf;  // SSL off
  EXPECT_THROW(map.FetchShuffle(0, reducer_conf), HandshakeError);
}

TEST_F(MiniMrTest, MixedCommitterVersionsFailArchiveValidation) {
  // Reducer commits v1 (stages in _temporary); the driver commits v2 (never
  // relocates) -> the archive step reports the missing part file.
  Configuration driver_conf;
  driver_conf.SetInt(kMrCommitterVersion, 2);
  driver_conf.SetInt(kMrJobMaps, 1);
  MapTask map(&cluster_, driver_conf, 0);
  map.Run(Records());

  Configuration reducer_conf;
  reducer_conf.SetInt(kMrCommitterVersion, 1);
  reducer_conf.SetInt(kMrJobMaps, 1);
  ReduceTask reducer(&cluster_, reducer_conf, 0);
  MrOutputStore store;
  reducer.Run({&map}, &store);
  EXPECT_EQ(store.final_dir.size(), 0u);
  EXPECT_EQ(store.temporary.size(), 1u);
}

TEST_F(MiniMrTest, OutputFileNamesFollowReducerCompressionFlag) {
  Configuration reducer_conf;
  reducer_conf.SetBool(kMrOutputCompress, true);
  reducer_conf.SetInt(kMrJobMaps, 1);
  Configuration map_conf;
  MapTask map(&cluster_, map_conf, 0);
  map.Run(Records());

  ReduceTask reducer(&cluster_, reducer_conf, 0);
  MrOutputStore store;
  reducer.Run({&map}, &store);
  EXPECT_TRUE(EndsWith(reducer.output_file(), ".rle")) << reducer.output_file();
}

TEST_F(MiniMrTest, HistoryServerCountsJobs) {
  Configuration conf;
  JobHistoryServer history(&cluster_, conf);
  history.RecordJob("a");
  history.RecordJob("b");
  history.RecordJob("c");
  EXPECT_EQ(history.NumJobs(conf), 3);
}

TEST_F(MiniMrTest, EmptyInputStillProducesOutputFiles) {
  Configuration conf;
  WordCountResult result = RunWordCountJob(cluster_, conf, {});
  EXPECT_TRUE(result.counts.empty());
  EXPECT_EQ(result.output_files.size(), 1u);
}

TEST_F(MiniMrTest, WordsSplitConsistentlyAcrossPartitions) {
  Configuration conf;
  conf.SetInt(kMrJobReduces, 4);
  WordCountResult result = RunWordCountJob(cluster_, conf, Records());
  int total = 0;
  for (const auto& [word, count] : result.counts) {
    total += count;
  }
  EXPECT_EQ(total, 9) << "every token counted exactly once across partitions";
}

}  // namespace
}  // namespace zebra
