// Tests for the observational-equivalence layer (plan_equiv.h): plan
// canonicalization against a pre-run read surface, trace prediction, and the
// restriction-matching soundness check. The edge cases here are exactly the
// ones where collapsing would be unsound — each must stay distinct.

#include "src/conf/plan_equiv.h"

#include <gtest/gtest.h>

#include "src/conf/conf_agent.h"
#include "src/conf/configuration.h"
#include "src/runtime/node_init.h"

namespace zebra {
namespace {

constexpr char kApp[] = "equivapp";

TestPlan PlanFor(const std::string& param, ValueAssigner assigner) {
  TestPlan plan;
  ParamPlan p;
  p.param = param;
  p.assigner = std::move(assigner);
  plan.Add(std::move(p));
  return plan;
}

// A pre-run surface that saw Server#0 read `a.read` and nothing else.
SessionReport PrerunReading(const std::string& param) {
  SessionReport prerun;
  prerun.trace_elements.insert(TraceReadElement("Server", 0, param, nullptr));
  return prerun;
}

std::string Join(std::initializer_list<std::string> elements) {
  std::string text;
  for (const std::string& element : elements) {
    if (!text.empty()) {
      text += '\x1e';
    }
    text += element;
  }
  return text;
}

TEST(PlanEquivTest, UnreadOverrideEntryDropped) {
  ReadSurface surface(PrerunReading("a.read"));
  ASSERT_TRUE(surface.usable());

  TestPlan plan = PlanFor("a.read", ValueAssigner::UniformGroup("Server", "7", "3"));
  plan.Add(
      PlanFor("b.unread", ValueAssigner::UniformGroup("Server", "1", "0")).params()[0]);

  CanonicalPlan canonical = surface.Canonicalize(plan);
  EXPECT_TRUE(canonical.changed);
  EXPECT_EQ(canonical.dropped_entries, 1);
  // The canonical fingerprint is the single-entry plan's own fingerprint.
  TestPlan kept = PlanFor("a.read", ValueAssigner::UniformGroup("Server", "7", "3"));
  EXPECT_EQ(canonical.fingerprint, kept.Fingerprint());
}

TEST(PlanEquivTest, FullyUnreadPlanCollapsesToBaseline) {
  ReadSurface surface(PrerunReading("a.read"));
  TestPlan plan = PlanFor("b.unread", ValueAssigner::UniformGroup("Server", "1", "0"));

  CanonicalPlan canonical = surface.Canonicalize(plan);
  EXPECT_TRUE(canonical.changed);
  EXPECT_EQ(canonical.dropped_entries, 1);
  // Collapses to the homogeneous baseline: the empty plan's fingerprint.
  EXPECT_EQ(canonical.fingerprint, TestPlan{}.Fingerprint());
}

TEST(PlanEquivTest, UnreadDependencyOverrideDroppedEntryKept) {
  ReadSurface surface(PrerunReading("a.read"));
  TestPlan plan = PlanFor("a.read", ValueAssigner::UniformGroup("Server", "7", "3"));
  plan.mutable_params()[0].extra_overrides.emplace_back("b.unread", "off");

  CanonicalPlan canonical = surface.Canonicalize(plan);
  EXPECT_TRUE(canonical.changed);
  EXPECT_EQ(canonical.dropped_entries, 0);
  EXPECT_EQ(canonical.dropped_overrides, 1);
  TestPlan kept = PlanFor("a.read", ValueAssigner::UniformGroup("Server", "7", "3"));
  EXPECT_EQ(canonical.fingerprint, kept.Fingerprint());
}

TEST(PlanEquivTest, EntryOrderDoesNotSplitEquivalenceClasses) {
  SessionReport prerun;
  prerun.trace_elements.insert(TraceReadElement("Server", 0, "a.read", nullptr));
  prerun.trace_elements.insert(TraceReadElement("Server", 0, "b.read", nullptr));
  ReadSurface surface(prerun);

  TestPlan forward = PlanFor("a.read", ValueAssigner::UniformGroup("Server", "7", "3"));
  forward.Add(
      PlanFor("b.read", ValueAssigner::UniformGroup("Server", "1", "0")).params()[0]);
  TestPlan reversed;
  reversed.Add(forward.params()[1]);
  reversed.Add(forward.params()[0]);
  ASSERT_NE(forward.Fingerprint(), reversed.Fingerprint());

  EXPECT_EQ(surface.Canonicalize(forward).fingerprint,
            surface.Canonicalize(reversed).fingerprint);
}

TEST(PlanEquivTest, HasOnlyParamIsNeverCollapsed) {
  // The pre-run only presence-checked the parameter. Has() ignores plan
  // overrides, but two plans assigning it differently may still diverge
  // downstream — the poisoned trace element must keep them distinct, and
  // neither may alias the baseline.
  SessionReport prerun;
  prerun.trace_elements.insert(TraceHasElement("Server", 0, "p.flag", nullptr));
  ReadSurface surface(prerun);
  ASSERT_TRUE(surface.usable());

  TestPlan assign_on = PlanFor("p.flag", ValueAssigner::UniformGroup("Server", "on", "off"));
  TestPlan assign_off = PlanFor("p.flag", ValueAssigner::UniformGroup("Server", "off", "on"));

  // Canonicalization must keep the entry: the parameter *was* observed.
  EXPECT_FALSE(surface.Canonicalize(assign_on).changed);

  std::string baseline_trace, on_trace, off_trace;
  ASSERT_TRUE(surface.PredictTrace(TestPlan{}, &baseline_trace));
  ASSERT_TRUE(surface.PredictTrace(assign_on, &on_trace));
  ASSERT_TRUE(surface.PredictTrace(assign_off, &off_trace));
  EXPECT_NE(on_trace, baseline_trace);
  EXPECT_NE(off_trace, baseline_trace);
  EXPECT_NE(on_trace, off_trace);
}

TEST(PlanEquivTest, SubComponentCloneReadKeepsParamObserved) {
  // Figure 2c shape: a node's sub-component creates its own blank conf during
  // init; reads through it resolve to the owning node entity. A plan
  // targeting a parameter read *only* that way must not be collapsed.
  class Server {
   public:
    explicit Server(const Configuration& conf)
        : init_scope_(kApp, this, "Server", __FILE__, __LINE__),
          conf_(AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__)) {
      init_scope_.Finish();
    }
    std::string ReadComponent(const std::string& name) {
      return component_conf_.Get(name, "default");
    }

   private:
    NodeInitScope init_scope_;
    Configuration conf_;
    Configuration component_conf_;  // blank conf created during init
  };

  SessionReport prerun;
  {
    ConfAgentSession session(TestPlan{});
    Configuration conf;
    Server server(conf);
    server.ReadComponent("component.only.param");
    prerun = session.End();
  }
  ASSERT_EQ(prerun.ParamsReadBy("Server").count("component.only.param"), 1u);

  ReadSurface surface(prerun);
  ASSERT_TRUE(surface.usable());
  TestPlan plan =
      PlanFor("component.only.param", ValueAssigner::UniformGroup("Server", "7", "3"));
  CanonicalPlan canonical = surface.Canonicalize(plan);
  EXPECT_FALSE(canonical.changed);
  EXPECT_EQ(canonical.dropped_entries, 0);

  // And the prediction serves the plan's value at the clone's read site.
  std::string trace;
  ASSERT_TRUE(surface.PredictTrace(plan, &trace));
  std::string assigned = "7";
  EXPECT_EQ(trace, TraceReadElement("Server", 0, "component.only.param", &assigned));
}

TEST(PlanEquivTest, UncertainReadsArePlanInvariant) {
  SessionReport prerun;
  prerun.trace_elements.insert(TraceUncertainElement("u.param"));
  prerun.trace_elements.insert(TraceReadElement("Server", 0, "a.read", nullptr));
  ReadSurface surface(prerun);

  // A plan targeting the uncertain parameter cannot reach it (uncertain confs
  // never receive overrides), so its predicted trace keeps the bare marker.
  TestPlan plan = PlanFor("u.param", ValueAssigner::UniformGroup("Server", "7", "3"));
  std::string trace;
  ASSERT_TRUE(surface.PredictTrace(plan, &trace));
  EXPECT_NE(trace.find(TraceUncertainElement("u.param")), std::string::npos);
  EXPECT_TRUE(PlanMatchesElement(plan, TraceUncertainElement("u.param")));
}

TEST(PlanEquivTest, ReproducesObservedPrefixOfPromise) {
  // Early-stopped execution: the observed trace is a strict subset of the
  // plan's full promise. Every observed element appears verbatim in the
  // prediction, so the plan provably reproduces the stored run.
  TestPlan plan = PlanFor("a.read", ValueAssigner::UniformGroup("Server", "7", "3"));
  std::string assigned = "7";
  std::string observed = TraceReadElement("Server", 0, "a.read", &assigned);
  std::string predicted = Join({observed, TraceReadElement("Server", 0, "b.read", nullptr)});
  EXPECT_TRUE(PlanReproducesObservedTrace(plan, observed, predicted));
}

TEST(PlanEquivTest, ReproducesValueGatedReadOutsidePromise) {
  // The stored run observed a read the pre-run never promised (value-gated).
  // It is not in the predicted trace, so it falls back to re-derivation —
  // which succeeds when this plan serves the same (absent) override.
  TestPlan plan = PlanFor("a.read", ValueAssigner::UniformGroup("Server", "7", "3"));
  std::string assigned = "7";
  std::string promised = TraceReadElement("Server", 0, "a.read", &assigned);
  std::string gated = TraceReadElement("Server", 1, "x.gated", nullptr);
  EXPECT_TRUE(PlanReproducesObservedTrace(plan, Join({promised, gated}), promised));
}

TEST(PlanEquivTest, RejectsContradictedObservation) {
  // The stored run was served the stored value for a.read; this plan would
  // override it — the executions diverge at that read, so no match.
  TestPlan plan = PlanFor("a.read", ValueAssigner::UniformGroup("Server", "7", "3"));
  std::string observed = TraceReadElement("Server", 0, "a.read", nullptr);
  std::string assigned = "7";
  std::string predicted = TraceReadElement("Server", 0, "a.read", &assigned);
  EXPECT_FALSE(PlanReproducesObservedTrace(plan, observed, predicted));
}

TEST(PlanEquivTest, RejectsUnparseableElement) {
  TestPlan plan;
  EXPECT_FALSE(PlanMatchesElement(plan, "not-an-element"));
  EXPECT_FALSE(PlanReproducesObservedTrace(plan, "not-an-element", ""));
}

}  // namespace
}  // namespace zebra
