// Tests for TestGenerator: value pairs, assignment strategies, pre-run
// filtering, uncertainty exclusion, and the stage counts of Table 5.

#include "src/core/test_generator.h"

#include <set>

#include <gtest/gtest.h>

#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

class TestGeneratorTest : public ::testing::Test {
 protected:
  TestGeneratorTest() : generator_(FullSchema(), FullCorpus()) {}

  PreRunRecord PreRunOne(const std::string& id) {
    const UnitTestDef* test = FullCorpus().Find(id);
    EXPECT_NE(test, nullptr);
    PreRunRecord record;
    record.test = test;
    record.result = RunUnitTest(*test, TestPlan{}, 0);
    return record;
  }

  TestGenerator generator_;
};

TEST_F(TestGeneratorTest, ValuePairsAreAllUnorderedPairs) {
  ParamSpec spec;
  spec.test_values = {"a", "b", "c"};
  auto pairs = TestGenerator::ValuePairs(spec);
  EXPECT_EQ(pairs.size(), 3u);  // C(3,2)

  spec.test_values = {"true", "false"};
  EXPECT_EQ(TestGenerator::ValuePairs(spec).size(), 1u);

  spec.test_values = {"1", "2", "3", "4"};
  EXPECT_EQ(TestGenerator::ValuePairs(spec).size(), 6u);
}

TEST_F(TestGeneratorTest, OriginalCountsAreLargeAndPositive) {
  for (const char* app :
       {"minidfs", "minimr", "miniyarn", "ministream", "minikv", "apptools"}) {
    EXPECT_GT(generator_.OriginalInstanceCount(app), 1000) << app;
  }
}

TEST_F(TestGeneratorTest, NoNodeTestGeneratesNothing) {
  PreRunRecord record = PreRunOne("minidfs.TestBlockIdUtilsNoNodes");
  int64_t before = -1;
  auto instances = generator_.Generate(record, &before);
  EXPECT_TRUE(instances.empty());
  EXPECT_EQ(before, 0);
}

TEST_F(TestGeneratorTest, InstancesOnlyTargetReadingEntities) {
  PreRunRecord record = PreRunOne("minidfs.TestWriteReadSmallFile");
  int64_t before = -1;
  auto instances = generator_.Generate(record, &before);
  ASSERT_FALSE(instances.empty());
  EXPECT_EQ(before, static_cast<int64_t>(instances.size()))
      << "no uncertainty in this test";

  for (const GeneratedInstance& instance : instances) {
    const std::string& group = instance.plan.assigner.group_type;
    const std::set<std::string> reads =
        record.result.report.ParamsReadBy(group);
    EXPECT_TRUE(reads.count(instance.plan.param) > 0)
        << group << " never read " << instance.plan.param;
  }

  // dfs.datanode.balance.bandwidthPerSec is never read in this test: no
  // instance may target it (the NameNode example from §4).
  for (const GeneratedInstance& instance : instances) {
    EXPECT_NE(instance.plan.param, "dfs.datanode.balance.bandwidthPerSec");
  }
}

TEST_F(TestGeneratorTest, RoundRobinOnlyForGroupsWithMultipleNodes) {
  PreRunRecord record = PreRunOne("minidfs.TestWriteReadSmallFile");
  auto instances = generator_.Generate(record, nullptr);
  for (const GeneratedInstance& instance : instances) {
    if (instance.plan.assigner.strategy == AssignStrategy::kRoundRobinGroup) {
      EXPECT_EQ(instance.plan.assigner.group_type, "DataNode")
          << "only the DataNode group has two nodes in this test";
    }
  }
  // And round-robin instances do exist for the DataNode group.
  bool found_rr = false;
  for (const GeneratedInstance& instance : instances) {
    found_rr |= instance.plan.assigner.strategy == AssignStrategy::kRoundRobinGroup;
  }
  EXPECT_TRUE(found_rr);
}

TEST_F(TestGeneratorTest, BothPolaritiesGenerated) {
  PreRunRecord record = PreRunOne("minikv.TestThriftAdminCreateTable");
  auto instances = generator_.Generate(record, nullptr);
  int compact_uniform = 0;
  for (const GeneratedInstance& instance : instances) {
    if (instance.plan.param == "hbase.regionserver.thrift.compact" &&
        instance.plan.assigner.group_type == "ThriftServer") {
      ++compact_uniform;
    }
  }
  EXPECT_EQ(compact_uniform, 2) << "one pair x two polarities (single-node group)";
}

TEST_F(TestGeneratorTest, DependencyOverridesAttachToHttpPolicy) {
  PreRunRecord record = PreRunOne("minidfs.TestFsckOverHttp");
  auto instances = generator_.Generate(record, nullptr);
  bool found_policy = false;
  for (const GeneratedInstance& instance : instances) {
    if (instance.plan.param == "dfs.http.policy") {
      found_policy = true;
      std::set<std::string> override_params;
      for (const auto& [param, value] : instance.plan.extra_overrides) {
        override_params.insert(param);
      }
      EXPECT_TRUE(override_params.count("dfs.namenode.http-address") > 0);
      EXPECT_TRUE(override_params.count("dfs.namenode.https-address") > 0);
    }
  }
  EXPECT_TRUE(found_policy);
}

TEST_F(TestGeneratorTest, PreRunAppCountsExecutions) {
  int64_t executions = 0;
  auto records = generator_.PreRunApp("minikv", &executions);
  EXPECT_EQ(static_cast<int64_t>(records.size()), executions);
  EXPECT_EQ(records.size(), FullCorpus().ForApp("minikv").size());
}

TEST_F(TestGeneratorTest, PreRunReducesInstancesByOrdersOfMagnitude) {
  int64_t original = generator_.OriginalInstanceCount("minikv");
  int64_t after = 0;
  int64_t executions = 0;
  for (const PreRunRecord& record : generator_.PreRunApp("minikv", &executions)) {
    int64_t before = 0;
    generator_.Generate(record, &before);
    after += before;
  }
  EXPECT_LT(after * 10, original) << "pre-running must cut at least 10x";
  EXPECT_GT(after, 0);
}

TEST_F(TestGeneratorTest, RoundRobinCanBeDisabled) {
  GeneratorOptions options;
  options.enable_round_robin = false;
  TestGenerator uniform_only(FullSchema(), FullCorpus(), options);

  PreRunRecord record = PreRunOne("minidfs.TestWriteReadSmallFile");
  for (const GeneratedInstance& instance : uniform_only.Generate(record, nullptr)) {
    EXPECT_NE(instance.plan.assigner.strategy, AssignStrategy::kRoundRobinGroup);
  }
  // And the instance count shrinks relative to the full strategy set.
  EXPECT_LT(uniform_only.Generate(record, nullptr).size(),
            generator_.Generate(record, nullptr).size());
}

TEST_F(TestGeneratorTest, SharedLibraryParamsGeneratedForApps) {
  PreRunRecord record = PreRunOne("minikv.TestPutGet");
  auto instances = generator_.Generate(record, nullptr);
  bool found_common = false;
  for (const GeneratedInstance& instance : instances) {
    if (instance.plan.param == "hadoop.rpc.protection") {
      found_common = true;
    }
  }
  EXPECT_TRUE(found_common)
      << "appcommon parameters must be testable through minikv tests";
}

}  // namespace
}  // namespace zebra
