// Tests for the value-assignment strategies of §4.

#include "src/conf/test_plan.h"

#include <gtest/gtest.h>

namespace zebra {
namespace {

TEST(ValueAssignerTest, HomogeneousGivesEveryoneTheSameValue) {
  ValueAssigner assigner = ValueAssigner::Homogeneous("v");
  EXPECT_EQ(assigner.ValueFor("DataNode", 0), "v");
  EXPECT_EQ(assigner.ValueFor("NameNode", 3), "v");
  EXPECT_EQ(assigner.ValueFor(kClientEntity, 0), "v");
  EXPECT_EQ(assigner.DistinctValues(), (std::vector<std::string>{"v"}));
}

TEST(ValueAssignerTest, UniformGroupSplitsByType) {
  ValueAssigner assigner = ValueAssigner::UniformGroup("DataNode", "a", "b");
  EXPECT_EQ(assigner.ValueFor("DataNode", 0), "a");
  EXPECT_EQ(assigner.ValueFor("DataNode", 5), "a");
  EXPECT_EQ(assigner.ValueFor("NameNode", 0), "b");
  EXPECT_EQ(assigner.ValueFor(kClientEntity, 0), "b");
  EXPECT_EQ(assigner.DistinctValues(), (std::vector<std::string>{"a", "b"}));
}

TEST(ValueAssignerTest, RoundRobinAlternatesWithinGroup) {
  ValueAssigner assigner = ValueAssigner::RoundRobinGroup("DataNode", "a", "b");
  EXPECT_EQ(assigner.ValueFor("DataNode", 0), "a");
  EXPECT_EQ(assigner.ValueFor("DataNode", 1), "b");
  EXPECT_EQ(assigner.ValueFor("DataNode", 2), "a");
  EXPECT_EQ(assigner.ValueFor("NameNode", 0), "b");
}

TEST(ValueAssignerTest, EqualValuesCollapseDistinctValues) {
  ValueAssigner assigner = ValueAssigner::UniformGroup("T", "x", "x");
  EXPECT_EQ(assigner.DistinctValues(), (std::vector<std::string>{"x"}));
}

TEST(TestPlanTest, LookupFindsParamAndOverrides) {
  TestPlan plan;
  ParamPlan p;
  p.param = "main";
  p.assigner = ValueAssigner::UniformGroup("NameNode", "1", "2");
  p.extra_overrides.emplace_back("dep", "d");
  plan.Add(p);

  EXPECT_EQ(plan.Lookup("main", "NameNode", 0), "1");
  EXPECT_EQ(plan.Lookup("main", "DataNode", 0), "2");
  EXPECT_EQ(plan.Lookup("dep", "DataNode", 0), "d");
  EXPECT_EQ(plan.Lookup("absent", "DataNode", 0), std::nullopt);
}

TEST(TestPlanTest, PooledPlanCoversAllParams) {
  TestPlan plan;
  for (int i = 0; i < 3; ++i) {
    ParamPlan p;
    p.param = "p" + std::to_string(i);
    p.assigner = ValueAssigner::Homogeneous(std::to_string(i));
    plan.Add(p);
  }
  EXPECT_EQ(plan.Lookup("p0", "X", 0), "0");
  EXPECT_EQ(plan.Lookup("p2", "X", 0), "2");
  EXPECT_FALSE(plan.empty());
}

TEST(TestPlanTest, DescribeIsStableAndDistinct) {
  TestPlan a;
  ParamPlan p;
  p.param = "x";
  p.assigner = ValueAssigner::UniformGroup("T", "1", "2");
  a.Add(p);

  TestPlan b = a;
  EXPECT_EQ(a.Describe(), b.Describe());

  b.mutable_params()[0].assigner = ValueAssigner::UniformGroup("T", "2", "1");
  EXPECT_NE(a.Describe(), b.Describe());

  TestPlan homo;
  p.assigner = ValueAssigner::Homogeneous("1");
  homo.mutable_params() = {p};
  EXPECT_NE(a.Describe(), homo.Describe());
}

TEST(AssignStrategyTest, Names) {
  EXPECT_STREQ(AssignStrategyName(AssignStrategy::kHomogeneous), "homogeneous");
  EXPECT_STREQ(AssignStrategyName(AssignStrategy::kUniformGroup), "uniform-group");
  EXPECT_STREQ(AssignStrategyName(AssignStrategy::kRoundRobinGroup),
               "round-robin-group");
}

}  // namespace
}  // namespace zebra
