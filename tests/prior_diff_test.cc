// StaticPriorDiff: the `zebralint --diff` primitive. An unchanged tree
// yields an empty diff; moved reads change the surface; verdict flips are
// retaints; schema growth/shrinkage shows up as added/removed; and the JSON
// artifact round-trips through LoadImpactedParams. The parser fails closed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/analysis/prior_diff.h"
#include "src/analysis/static_prior.h"

namespace zebra {
namespace analysis {
namespace {

constexpr char kParamsHeader[] = R"(
inline constexpr char kDiffHeartbeat[] = "diff.heartbeat.interval";
inline constexpr char kDiffHandlers[] = "diff.handler.count";
)";

constexpr char kNodeV1[] = R"(
#include "diff_params.h"
namespace zebra {

void GammaNode::Tick() {
  int interval = conf().GetInt(kDiffHeartbeat, 3);
  handlers_ = conf().GetInt(kDiffHandlers, 10);
}

}  // namespace zebra
)";

// v2: the heartbeat read moved into a new function (surface change) and now
// co-occurs with a wire primitive (verdict flip to wire-tainted).
constexpr char kNodeV2[] = R"(
#include "diff_params.h"
namespace zebra {

void GammaNode::Tick() {
  // the heartbeat read moved into Announce (same line kept for handlers)
  handlers_ = conf().GetInt(kDiffHandlers, 10);
}

Bytes GammaNode::Announce(const Bytes& payload) {
  int interval = conf().GetInt(kDiffHeartbeat, 3);
  return EncodeFrame(MakeWire(interval), payload);
}

}  // namespace zebra
)";

// v3: the handler read is gone; a brand-new parameter appears.
constexpr char kNodeV3[] = R"(
#include "diff_params.h"
namespace zebra {

void GammaNode::Tick() {
  int interval = conf().GetInt(kDiffHeartbeat, 3);
  retries_ = conf().GetInt("diff.retry.limit", 5);
}

}  // namespace zebra
)";

StaticPriorReport AnalyzeFixture(const char* node_source) {
  StaticAnalyzer analyzer;
  analyzer.AddSource("src/apps/fixdiff/diff_params.h", kParamsHeader);
  analyzer.AddSource("src/apps/fixdiff/gamma_node.cc", node_source);
  return analyzer.Analyze(nullptr);
}

PriorSnapshot SnapshotOf(const StaticPriorReport& report) {
  PriorSnapshot snapshot;
  EXPECT_TRUE(ParsePriorJson(ReportToJson(report), &snapshot));
  return snapshot;
}

TEST(PriorDiff, UnchangedTreeYieldsEmptyDiff) {
  StaticPriorReport report = AnalyzeFixture(kNodeV1);
  StaticPriorDiff diff = DiffAgainstSnapshot(SnapshotOf(report), report);
  EXPECT_TRUE(diff.Empty()) << DiffToText(diff);
  EXPECT_TRUE(diff.ImpactedParams().empty());
}

TEST(PriorDiff, MovedReadChangesSurfaceAndFlipRetaints) {
  PriorSnapshot old_snapshot = SnapshotOf(AnalyzeFixture(kNodeV1));
  StaticPriorReport current = AnalyzeFixture(kNodeV2);
  StaticPriorDiff diff = DiffAgainstSnapshot(old_snapshot, current);

  ASSERT_EQ(diff.retainted,
            std::vector<std::string>{"diff.heartbeat.interval"});
  // The moved read changes the file:line:function fingerprint too.
  ASSERT_EQ(diff.read_surface_changed,
            std::vector<std::string>{"diff.heartbeat.interval"});
  EXPECT_TRUE(diff.added.empty());
  EXPECT_TRUE(diff.removed.empty());
  // The untouched parameter is not impacted.
  EXPECT_EQ(diff.ImpactedParams(),
            std::vector<std::string>{"diff.heartbeat.interval"});
}

TEST(PriorDiff, AddedAndRemovedParams) {
  PriorSnapshot old_snapshot = SnapshotOf(AnalyzeFixture(kNodeV1));
  StaticPriorDiff diff =
      DiffAgainstSnapshot(old_snapshot, AnalyzeFixture(kNodeV3));

  EXPECT_EQ(diff.added, std::vector<std::string>{"diff.retry.limit"});
  EXPECT_EQ(diff.removed, std::vector<std::string>{"diff.handler.count"});
  std::vector<std::string> impacted = diff.ImpactedParams();
  EXPECT_NE(std::find(impacted.begin(), impacted.end(), "diff.retry.limit"),
            impacted.end());
  EXPECT_NE(std::find(impacted.begin(), impacted.end(), "diff.handler.count"),
            impacted.end());
}

TEST(PriorDiff, JsonArtifactRoundTripsImpactedList) {
  PriorSnapshot old_snapshot = SnapshotOf(AnalyzeFixture(kNodeV1));
  StaticPriorDiff diff =
      DiffAgainstSnapshot(old_snapshot, AnalyzeFixture(kNodeV2));

  const std::string path = ::testing::TempDir() + "prior_diff.json";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << DiffToJson(diff);
  }
  std::vector<std::string> impacted;
  std::string error;
  ASSERT_TRUE(LoadImpactedParams(path, &impacted, &error)) << error;
  EXPECT_EQ(impacted, diff.ImpactedParams());
  std::remove(path.c_str());
}

TEST(PriorDiff, SerializationIsByteStable) {
  PriorSnapshot old_snapshot = SnapshotOf(AnalyzeFixture(kNodeV1));
  StaticPriorDiff a =
      DiffAgainstSnapshot(old_snapshot, AnalyzeFixture(kNodeV2));
  StaticPriorDiff b =
      DiffAgainstSnapshot(old_snapshot, AnalyzeFixture(kNodeV2));
  EXPECT_EQ(DiffToJson(a), DiffToJson(b));
  EXPECT_EQ(DiffToText(a), DiffToText(b));
}

TEST(PriorDiff, ParserFailsClosed) {
  PriorSnapshot snapshot;
  EXPECT_FALSE(ParsePriorJson("", &snapshot));
  EXPECT_FALSE(ParsePriorJson("{\"not\": \"a prior\"}", &snapshot));
  // A params list with a malformed entry is a parse error, not a silently
  // shorter snapshot.
  EXPECT_FALSE(ParsePriorJson(
      "\"params\": [\n{\"name\": \"x\", \"in_schema\": maybe}\n]", &snapshot));
  EXPECT_TRUE(snapshot.params.empty());

  StaticPriorReport current = AnalyzeFixture(kNodeV1);
  StaticPriorDiff diff;
  std::string error;
  EXPECT_FALSE(DiffAgainstFile("/nonexistent/prior.json", current, &diff,
                               &error));
  EXPECT_FALSE(error.empty());

  std::vector<std::string> impacted;
  EXPECT_FALSE(LoadImpactedParams("/nonexistent/diff.json", &impacted,
                                  &error));
}

}  // namespace
}  // namespace analysis
}  // namespace zebra
