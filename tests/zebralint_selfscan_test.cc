// Self-scan smoke tests: zebralint run over this repository's own sources
// (the tree the binary was built from) must reproduce the static profile the
// campaign relies on — read sites in every mini-app, ≥80% of the seeded
// het-unsafe minidfs parameters wire-tainted, node-local safe parameters
// non-wire, and a clean drift gate that trips when a schema parameter is
// deleted while its read sites remain.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/static_prior.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/ground_truth.h"

#ifndef ZEBRALINT_SOURCE_ROOT
#error "ZEBRALINT_SOURCE_ROOT must be defined by the build"
#endif

namespace zebra {
namespace analysis {
namespace {

const StaticPriorReport& SelfScan() {
  static const StaticPriorReport* kReport = [] {
    StaticAnalyzer analyzer;
    int files = analyzer.AddTree(ZEBRALINT_SOURCE_ROOT);
    EXPECT_GT(files, 0) << "no sources under " << ZEBRALINT_SOURCE_ROOT;
    return new StaticPriorReport(analyzer.Analyze(&FullSchema()));
  }();
  return *kReport;
}

TEST(ZebralintSelfScan, EveryMiniAppHasReadSites) {
  const StaticPriorReport& report = SelfScan();
  for (const char* app : {"minidfs", "minimr", "miniyarn", "ministream",
                          "minikv", "appcommon"}) {
    auto it = report.read_sites_per_app.find(app);
    ASSERT_NE(it, report.read_sites_per_app.end()) << app;
    EXPECT_GE(it->second, 1) << app;
  }
}

TEST(ZebralintSelfScan, CleanTreeHasNoDrift) {
  const StaticPriorReport& report = SelfScan();
  EXPECT_FALSE(report.HasErrors()) << ReportToText(report);
}

TEST(ZebralintSelfScan, WireTaintCoversSeededUnsafeMiniDfsParams) {
  const StaticPriorReport& report = SelfScan();
  int dfs_total = 0, dfs_tainted = 0;
  std::vector<std::string> missed;
  for (const auto& [param, why] : ExpectedUnsafeParams()) {
    if (param.rfind("dfs.", 0) != 0) continue;
    ++dfs_total;
    if (report.IsWireTainted(param)) {
      ++dfs_tainted;
    } else {
      missed.push_back(param);
    }
  }
  ASSERT_GT(dfs_total, 0);
  std::string missed_list;
  for (const std::string& param : missed) missed_list += param + " ";
  // Acceptance bar: ≥80% of the seeded het-unsafe minidfs parameters.
  EXPECT_GE(dfs_tainted * 100, dfs_total * 80) << "missed: " << missed_list;

  // The issue's named examples must all be caught.
  EXPECT_TRUE(report.IsWireTainted("dfs.encrypt.data.transfer"));
  EXPECT_TRUE(report.IsWireTainted("dfs.checksum.type"));
  EXPECT_TRUE(report.IsWireTainted("dfs.heartbeat.interval"));
}

TEST(ZebralintSelfScan, NodeLocalSafeParamsAreNotWireTainted) {
  const StaticPriorReport& report = SelfScan();
  for (const char* param :
       {"dfs.datanode.handler.count", "dfs.namenode.handler.count",
        "dfs.datanode.data.dir", "dfs.datanode.max.transfer.threads",
        "hbase.regionserver.handler.count"}) {
    const ParamProfile* profile = report.Find(param);
    ASSERT_NE(profile, nullptr) << param;
    EXPECT_FALSE(profile->read_sites.empty()) << param;
    EXPECT_FALSE(profile->wire_tainted)
        << param << ": " << (profile->taint_reasons.empty()
                                 ? ""
                                 : profile->taint_reasons.front());
  }
}

TEST(ZebralintSelfScan, ReadSiteLinesAreClickable) {
  const StaticPriorReport& report = SelfScan();
  const ParamProfile* profile = report.Find("dfs.heartbeat.interval");
  ASSERT_NE(profile, nullptr);
  ASSERT_FALSE(profile->read_sites.empty());
  for (const SiteRef& site : profile->read_sites) {
    EXPECT_NE(site.file.find("src/"), std::string::npos);
    EXPECT_GT(site.line, 0);
    EXPECT_FALSE(site.function.empty());
  }
}

TEST(ZebralintSelfScan, DeletingSchemaParamWithLiveReadsTripsCheck) {
  // Rebuild the schema without dfs.heartbeat.interval: the read sites in
  // data_node.cc/name_node.cc must now surface as read-not-in-schema drift —
  // this is what `zebralint --check` exits nonzero on.
  ConfSchema pruned;
  for (const ParamSpec& spec : FullSchema().params()) {
    if (spec.name == "dfs.heartbeat.interval") continue;
    pruned.AddParam(spec);
  }
  StaticAnalyzer analyzer;
  ASSERT_GT(analyzer.AddTree(ZEBRALINT_SOURCE_ROOT), 0);
  StaticPriorReport report = analyzer.Analyze(&pruned);
  ASSERT_TRUE(report.HasErrors());
  bool found = false;
  for (const DriftFinding& finding : report.errors) {
    if (finding.kind == DriftKind::kReadNotInSchema &&
        finding.subject == "dfs.heartbeat.interval") {
      found = true;
      EXPECT_GT(finding.line, 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ZebralintSelfScan, ProtocolSurfacesIncludeKnownHandshakePaths) {
  const StaticPriorReport& report = SelfScan();
  EXPECT_TRUE(report.protocol_surfaces.count("NameNode::RegisterDataNode"))
      << "cross-node-called registration should be a protocol surface";
}

}  // namespace
}  // namespace analysis
}  // namespace zebra
