// End-to-end tests of the ZebraConf campaign on the smaller applications.
// (The full five-application run is the Table 3 bench.)

#include "src/core/campaign.h"

#include <gtest/gtest.h>

#include "src/testkit/full_schema.h"
#include "src/testkit/ground_truth.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {
namespace {

CampaignReport RunFor(const std::vector<std::string>& apps, bool pooling = true) {
  CampaignOptions options;
  options.apps = apps;
  options.enable_pooling = pooling;
  Campaign campaign(FullSchema(), FullCorpus(), options);
  return campaign.Run();
}

TEST(CampaignTest, FindsBothThriftParamsInMiniKv) {
  CampaignReport report = RunFor({"minikv"});
  EXPECT_TRUE(report.findings.count("hbase.regionserver.thrift.compact") > 0);
  EXPECT_TRUE(report.findings.count("hbase.regionserver.thrift.framed") > 0);
}

TEST(CampaignTest, FindsAllThreeStreamParams) {
  CampaignReport report = RunFor({"ministream"});
  EXPECT_TRUE(report.findings.count("akka.ssl.enabled") > 0);
  EXPECT_TRUE(report.findings.count("taskmanager.data.ssl.enabled") > 0);
  EXPECT_TRUE(report.findings.count("taskmanager.numberOfTaskSlots") > 0);
}

TEST(CampaignTest, NeverReportsGenuinelySafeLocalParams) {
  CampaignReport report = RunFor({"minikv", "ministream"});
  for (const auto& [param, finding] : report.findings) {
    bool expected = IsExpectedUnsafe(param) || ProbabilisticUnsafeParams().count(param) > 0;
    bool known_fp = KnownFalsePositiveSources().count(param) > 0;
    EXPECT_TRUE(expected || known_fp)
        << param << " reported but neither seeded-unsafe nor a known FP source "
        << "(witness: " << finding.example_failure << ")";
  }
}

TEST(CampaignTest, StageCountsAreMonotone) {
  CampaignReport report = RunFor({"minidfs"});
  const AppStageCounts& counts = report.per_app.at("minidfs");
  EXPECT_GT(counts.original, 10 * counts.after_prerun)
      << "pre-running must cut the instance count by at least 10x";
  EXPECT_GT(counts.after_prerun, counts.after_uncertainty)
      << "the lazy-conf corpus test must lose some instances to uncertainty";
  EXPECT_GT(counts.after_uncertainty, 0);
  EXPECT_LT(2 * counts.executed_runs, counts.after_uncertainty)
      << "pooling must execute fewer runs than verifying every instance";
  EXPECT_GT(counts.executed_runs, 0);
}

TEST(CampaignTest, MiniDfsFindsAllTwentyOneTableThreeParams) {
  CampaignReport report = RunFor({"minidfs"});
  int found_expected = 0;
  for (const auto& [param, why] : ExpectedUnsafeParams()) {
    if (param.rfind("dfs.", 0) == 0) {
      EXPECT_TRUE(report.findings.count(param) > 0) << "missed " << param;
      found_expected += report.findings.count(param) > 0 ? 1 : 0;
    }
  }
  EXPECT_EQ(found_expected, 21);
}

TEST(CampaignTest, FindingsCarryWitnessesAndOwningApp) {
  CampaignReport report = RunFor({"minikv"});
  const ParamFinding& finding =
      report.findings.at("hbase.regionserver.thrift.compact");
  EXPECT_EQ(finding.owning_app, "minikv");
  EXPECT_FALSE(finding.witness_tests.empty());
  EXPECT_FALSE(finding.example_failure.empty());
  EXPECT_LT(finding.best_p_value, 1e-4);
}

TEST(CampaignTest, HypothesisTestingStatsAreTracked) {
  CampaignReport report = RunFor({"minikv", "ministream"});
  EXPECT_GT(report.first_trial_candidates, 0);
  EXPECT_GE(report.first_trial_candidates, report.filtered_by_hypothesis);
}

TEST(CampaignTest, SharingStatsMatchTheCorpus) {
  CampaignReport report = RunFor({"ministream"});
  const SharingStats& sharing = report.sharing.at("ministream");
  EXPECT_GT(sharing.tests_with_conf_usage, 0);
  EXPECT_GT(sharing.tests_with_sharing, 0);
  EXPECT_LE(sharing.tests_with_sharing, sharing.tests_with_conf_usage);
}

TEST(CampaignTest, DisablingPoolingFindsTheSameParams) {
  CampaignReport pooled = RunFor({"ministream"});
  CampaignReport individual = RunFor({"ministream"}, /*pooling=*/false);

  for (const auto& [param, finding] : pooled.findings) {
    if (IsExpectedUnsafe(param)) {
      EXPECT_TRUE(individual.findings.count(param) > 0)
          << param << " lost without pooling";
    }
  }
  EXPECT_GT(individual.per_app.at("ministream").executed_runs,
            pooled.per_app.at("ministream").executed_runs)
      << "pooling must reduce the number of executed runs";
}

TEST(CampaignTest, OnlyParamsFocusesTheCampaign) {
  CampaignOptions options;
  options.apps = {"minikv"};
  options.only_params = {"hbase.regionserver.thrift.framed"};
  Campaign campaign(FullSchema(), FullCorpus(), options);
  CampaignReport report = campaign.Run();
  EXPECT_EQ(report.findings.size(), 1u);
  EXPECT_TRUE(report.findings.count("hbase.regionserver.thrift.framed") > 0);
  // Focused runs are much cheaper than the full per-app campaign.
  EXPECT_LT(report.per_app.at("minikv").executed_runs, 80);
}

TEST(CampaignTest, ExcludeParamsSkipsTriagedFindings) {
  CampaignOptions options;
  options.apps = {"minikv"};
  options.exclude_params = {"ipc.ping.interval", "ipc.client.connect.max.retries"};
  Campaign campaign(FullSchema(), FullCorpus(), options);
  CampaignReport report = campaign.Run();
  EXPECT_EQ(report.findings.count("ipc.ping.interval"), 0u)
      << "triaged false positives stay out of the report";
  EXPECT_TRUE(report.findings.count("hbase.regionserver.thrift.compact") > 0)
      << "everything else is still tested";
}

TEST(CampaignTest, EmptyAppsDefaultsToWholeCorpus) {
  CampaignOptions options;
  options.apps = {"minikv"};  // keep the test fast; just check defaulting logic
  Campaign campaign(FullSchema(), FullCorpus(), options);
  CampaignReport report = campaign.Run();
  EXPECT_EQ(report.per_app.size(), 1u);
  EXPECT_EQ(report.total_unit_test_runs, report.TotalExecuted());
}

}  // namespace
}  // namespace zebra
