// Reproduces the §5 false-negative discussion: "if a heterogeneous
// configuration has a probability to fail but does not fail in one test, then
// we may miss a heterogeneous-unsafe configuration parameter... To reduce
// false negatives, a developer would need to run the test instances multiple
// times."
//
// The extension parameter yarn.resourcemanager.work-preserving-recovery.enabled
// fails heterogeneously in only ~60% of runs. This bench sweeps the number of
// first trials and reports how many of the parameter's generated instances
// detect it — plus the redundancy argument ("most parameters are tested by
// multiple test instances, reducing the chances of false negatives").

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/test_generator.h"
#include "src/core/test_runner.h"

namespace zebra {
namespace {

constexpr char kParam[] = "yarn.resourcemanager.work-preserving-recovery.enabled";

std::vector<GeneratedInstance> InstancesForParam() {
  TestGenerator generator(FullSchema(), FullCorpus());
  int64_t executions = 0;
  std::vector<GeneratedInstance> result;
  for (const PreRunRecord& record : generator.PreRunApp("miniyarn", &executions)) {
    for (GeneratedInstance& instance : generator.Generate(record, nullptr)) {
      if (instance.plan.param == kParam) {
        result.push_back(std::move(instance));
      }
    }
  }
  return result;
}

void PrintReport() {
  PrintHeader("§5 — False negatives under probabilistic heterogeneous failures");
  std::printf(
      "Parameter under test: %s\n"
      "(heterogeneous failure manifests in ~60%% of runs)\n\n",
      kParam);

  std::vector<GeneratedInstance> instances = InstancesForParam();
  std::printf("generated instances for the parameter: %zu\n\n", instances.size());
  std::printf("%14s %22s %22s\n", "first trials", "instances detecting",
              "parameter detected");
  PrintRule('-', 62);

  for (int first_trials : {1, 2, 3, 5}) {
    TestRunner runner(1e-4, first_trials);
    int detecting = 0;
    for (const GeneratedInstance& instance : instances) {
      int64_t executions = 0;
      Verdict verdict = runner.Verify(instance, &executions);
      if (verdict.kind == Verdict::Kind::kConfirmedUnsafe) {
        ++detecting;
      }
    }
    std::printf("%14d %19d/%zu %22s\n", first_trials, detecting, instances.size(),
                detecting > 0 ? "yes" : "MISSED");
  }
  PrintRule('-', 62);
  std::printf(
      "\nTwo §5 mechanisms are visible: extra first trials raise the per-instance\n"
      "detection rate toward certainty, and even at one trial the parameter is\n"
      "usually caught because several independent instances test it (\"most\n"
      "parameters are tested by multiple test instances, reducing the chances of\n"
      "false negatives\").\n\n");
}

void BM_VerifyProbabilistic(benchmark::State& state) {
  std::vector<GeneratedInstance> instances = InstancesForParam();
  if (instances.empty()) {
    state.SkipWithError("no instances");
    return;
  }
  TestRunner runner(1e-4, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    int64_t executions = 0;
    Verdict verdict = runner.Verify(instances.front(), &executions);
    benchmark::DoNotOptimize(verdict.hetero_trials);
  }
}
BENCHMARK(BM_VerifyProbabilistic)->Arg(1)->Arg(3)->Arg(5);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
