// Regenerates the §7.1 dfs.datanode.balance.bandwidthPerSec case study: a
// DataNode with a high bandwidth limit overloads one with a low limit, whose
// throttling then starves its own progress reports until the Balancer times
// out. Matched limits — high or low — are harmless.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/apps/minidfs/balancer.h"
#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"

namespace zebra {
namespace {

struct TransferOutcome {
  int64_t max_delay_ms = 0;
  bool timed_out = false;
};

TransferOutcome RunTransfer(int64_t src_bw, int64_t dst_bw) {
  Cluster cluster;
  Configuration nn_conf;
  NameNode nn(&cluster, nn_conf);
  Configuration src_conf;
  src_conf.SetInt(kDfsBalanceBandwidth, src_bw);
  DataNode src(&cluster, &nn, src_conf);
  Configuration dst_conf;
  dst_conf.SetInt(kDfsBalanceBandwidth, dst_bw);
  DataNode dst(&cluster, &nn, dst_conf);
  Balancer balancer(&cluster, &nn, nn_conf);

  TransferOutcome outcome;
  try {
    outcome.max_delay_ms = balancer.RunThrottledTransfer(&src, &dst, src_bw * 5);
  } catch (const TimeoutError&) {
    outcome.timed_out = true;
    outcome.max_delay_ms = Balancer::kProgressTimeoutMs;
  }
  return outcome;
}

void PrintCaseStudy() {
  PrintHeader("§7.1 case study — dfs.datanode.balance.bandwidthPerSec");
  const int64_t mib = 1048576;
  std::printf("%-34s %22s %10s\n", "(sender limit, receiver limit)",
              "max progress-report delay", "balancer");
  PrintRule();
  struct Case {
    int64_t src, dst;
  };
  for (const Case& c : {Case{mib, mib}, Case{10 * mib, 10 * mib},
                        Case{mib, 10 * mib}, Case{10 * mib, mib},
                        Case{100 * mib, mib}}) {
    TransferOutcome outcome = RunTransfer(c.src, c.dst);
    std::printf("(%3lld MiB/s -> %3lld MiB/s) %21s ms %12s\n",
                static_cast<long long>(c.src / mib),
                static_cast<long long>(c.dst / mib),
                outcome.timed_out ? ">5000" : WithCommas(outcome.max_delay_ms).c_str(),
                outcome.timed_out ? "TIMEOUT" : "ok");
  }
  PrintRule();
  std::printf(
      "\nOnly the fast-sender/slow-receiver direction fails: the receiver's inbound\n"
      "queue grows by (sender - receiver) bytes per second, and its periodic\n"
      "progress report is queued behind that backlog until the Balancer's %lld ms\n"
      "report deadline expires.\n"
      "Proposed fix (§7.1): reserve a small fraction of bandwidth for critical\n"
      "traffic like heartbeats and progress reports.\n\n",
      static_cast<long long>(Balancer::kProgressTimeoutMs));
}

void BM_ThrottledTransfer(benchmark::State& state) {
  const int64_t mib = 1048576;
  const int64_t src = state.range(0) * mib;
  const int64_t dst = state.range(1) * mib;
  for (auto _ : state) {
    TransferOutcome outcome = RunTransfer(src, dst);
    benchmark::DoNotOptimize(outcome.max_delay_ms);
  }
}
BENCHMARK(BM_ThrottledTransfer)->Args({1, 1})->Args({10, 1})->Args({1, 10});

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintCaseStudy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
