// Regenerates Table 4 — the lines of code modified to apply ZebraConf to each
// application — from the annotation-site registry (sites register themselves
// the first time their code executes, so the corpus is pre-run first).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/conf/annotations.h"
#include "src/testkit/test_execution.h"

namespace zebra {
namespace {

void PrintTable4() {
  // Execute every corpus test once so all annotation sites register.
  for (const UnitTestDef& test : FullCorpus().tests()) {
    RunUnitTest(test, TestPlan{}, 0);
  }

  PrintHeader("Table 4 — Modified lines of code to apply ZebraConf");
  std::printf("%-26s %14s %14s   %s\n", "Application", "node-class", "conf-class",
              "(sites: init brackets + ref-to-clones)");
  PrintRule();

  AnnotationCounts conf_class = GetAnnotationCounts("configuration");
  for (const char* app :
       {"ministream", "appcommon", "minikv", "minidfs", "minimr", "miniyarn"}) {
    AnnotationCounts counts = GetAnnotationCounts(app);
    std::printf("%-26s %11d LoC %11d LoC   (%d + %d)\n", PaperName(app).c_str(),
                counts.node_class_lines(), conf_class.conf_class_lines(),
                counts.node_init_sites, counts.ref_to_clone_sites);
  }
  PrintRule();
  std::printf(
      "The conf-class column counts the hooks in the shared Configuration class\n"
      "(newConf / cloneConf / interceptGet / interceptSet); the paper modified each\n"
      "application's own configuration class (6-8 lines each), ours share one class.\n"
      "Paper values: Flink 30+8, Hadoop Common 0+6, HBase 16+7, HDFS 24+6,\n"
      "MapReduce 12+6, YARN 12+6. Note the same shape: ministream (Flink analog)\n"
      "needs the most node-class lines because its unit tests inline the\n"
      "TaskManager initialization code (annotations live in test code, paper §7.2).\n\n");
}

void BM_AnnotationRegistration(benchmark::State& state) {
  for (auto _ : state) {
    // After the first registration this is the steady-state cost paid by
    // every instrumented call site.
    ZC_ANNOTATION_SITE("bench-app", AnnotationKind::kConfHook);
  }
}
BENCHMARK(BM_AnnotationRegistration);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintTable4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
