// Per-run hot-path cost of the campaign engine: heap allocations and
// nanoseconds per logical unit-test run in the native regime, where PR 6's
// in-process thread pool removed the fork/IPC cost class and the bottleneck
// moved into our own bookkeeping (cache keys, plan fingerprints, result
// copies, journal syncs).
//
// The binary overrides the global operator new/delete with a counting
// interposer (this binary only — nothing links against it), runs the full
// corpus through the sequential and thread-pool engines, and reports
// allocations per logical run plus ns per run. "Logical runs" is
// CampaignReport::total_unit_test_runs — cache hits included — so the
// denominator is identical whatever fraction of runs the cache serves, and
// the allocations-per-run series is comparable across cache configurations.
//
// Three "legacy shape" micro arms reproduce per-op costs the hash-keyed
// refactor removes, so the artifact keeps the before/after visible the same
// way bench_conf_micro's materialized-name arm does:
//   legacy_string_keys    — building the four string cache keys
//                           (exact/wildcard/canonical/trace) per lookup,
//   fingerprint_recompute — TestPlan::Fingerprint() re-serialized per
//                           comparison (the plan_equiv sort comparator shape),
//   result_deep_copy      — TestResult copied out of the cache per hit.
//
// `--ci-gate` is the fast regression gate: the work-stealing and thread-pool
// engines bitwise-identical to the sequential campaign through the report
// serializer (they run its canonical fold); the sharded engine identical on
// the contract fields — finding set, stage counts, runs_to_first_detection —
// with run *attribution* exempt (per-app isolation re-executes shared
// appcommon parameters per shard; see docs/PARALLEL.md). Plus a ceiling on
// allocations per logical run in the cached sequential engine. Exits nonzero
// on the first violation.
//
// Results land in BENCH_hotpath.json next to BENCH_parallel.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/parallel_scheduler.h"
#include "src/core/report_io.h"
#include "src/core/sharded_campaign.h"
#include "src/core/thread_pool_scheduler.h"
#include "src/testkit/test_execution.h"

// ---------------------------------------------------------------------------
// Counting interposer. The replaceable allocation functions must have
// external linkage, so they live at global scope; the counters are
// file-local. Relaxed atomics: we want totals, not ordering.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* ptr = nullptr;
  if (posix_memalign(&ptr, align < sizeof(void*) ? sizeof(void*) : align,
                     size != 0 ? size : 1) != 0) {
    return nullptr;
  }
  return ptr;
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* ptr = CountedAlloc(size)) {
    return ptr;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* ptr = CountedAlignedAlloc(size, static_cast<std::size_t>(align))) {
    return ptr;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}

namespace zebra {
namespace {

// Allocations per logical run the cached sequential engine must stay under.
// Post-refactor the full corpus measures ~304 allocs/run (down from ~637 at
// the PR 8 pre-refactor baseline — the cache layer's string keys, per-alias
// deep copies, and copy-out hits used to *add* ~240 allocs/run on top of
// plain execution). 360 holds the ≥30% reduction (the bar is ≤445.8) while
// leaving headroom for legitimate growth of the corpus or the pipeline.
constexpr double kAllocsPerRunCeiling = 360.0;

// The PR 8 pre-refactor measurement (cached sequential engine, this corpus),
// recorded so the artifact carries its own baseline for the reduction claim.
constexpr double kPr8BaselineAllocsPerRun = 636.8;

uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
uint64_t AllocBytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}

int HardwareCores() {
  unsigned cores = std::thread::hardware_concurrency();
  return cores == 0 ? 1 : static_cast<int>(cores);
}

enum class Engine { kSequential, kSharded, kStealing, kThreadPool };

const char* EngineName(Engine engine) {
  switch (engine) {
    case Engine::kSequential:
      return "sequential";
    case Engine::kSharded:
      return "sharded";
    case Engine::kStealing:
      return "stealing";
    case Engine::kThreadPool:
      return "threadpool";
  }
  return "?";
}

CampaignReport RunEngine(Engine engine, bool cached, int workers) {
  CampaignOptions options;  // all apps
  options.enable_run_cache = cached;
  options.enable_equiv_cache = cached;
  switch (engine) {
    case Engine::kSequential: {
      Campaign campaign(FullSchema(), FullCorpus(), options);
      return campaign.Run();
    }
    case Engine::kSharded:
      return RunShardedCampaign(FullSchema(), FullCorpus(), options, workers);
    case Engine::kStealing:
      return RunWorkStealingCampaign(FullSchema(), FullCorpus(), options,
                                     workers);
    case Engine::kThreadPool:
      return RunThreadPoolCampaign(FullSchema(), FullCorpus(), options,
                                   workers);
  }
  return CampaignReport{};
}

struct CampaignSample {
  int64_t runs = 0;           // logical runs (cache hits included)
  double allocs_per_run = 0;  // in-process heap allocations / logical run
  double bytes_per_run = 0;
  double ns_per_run = 0;  // best-of-R wall clock / logical run
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  size_t findings = 0;
};

// Allocation counts come from the first (cold-cache-identical) run; the
// ns/run figure is best-of-`repetitions`, since allocator and scheduler
// jitter at this scale make the minimum the honest per-run cost.
CampaignSample MeasureCampaign(Engine engine, bool cached, int workers,
                               int repetitions) {
  CampaignSample sample;
  double best_seconds = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    uint64_t count_before = AllocCount();
    uint64_t bytes_before = AllocBytes();
    auto start = std::chrono::steady_clock::now();
    CampaignReport report = RunEngine(engine, cached, workers);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    uint64_t count_delta = AllocCount() - count_before;
    uint64_t bytes_delta = AllocBytes() - bytes_before;
    if (rep == 0) {
      sample.runs = report.total_unit_test_runs;
      sample.cache_hits = report.cache_hits;
      sample.cache_misses = report.cache_misses;
      sample.findings = report.findings.size();
      if (sample.runs > 0) {
        sample.allocs_per_run =
            static_cast<double>(count_delta) / static_cast<double>(sample.runs);
        sample.bytes_per_run =
            static_cast<double>(bytes_delta) / static_cast<double>(sample.runs);
      }
      best_seconds = seconds;
    } else if (seconds < best_seconds) {
      best_seconds = seconds;
    }
  }
  if (sample.runs > 0) {
    sample.ns_per_run = best_seconds * 1e9 / static_cast<double>(sample.runs);
  }
  return sample;
}

// ---------------------------------------------------------------------------
// Legacy-shape micro arms: per-op ns and allocations for the cost classes
// the hash-keyed refactor removes from the hot path.
// ---------------------------------------------------------------------------

struct MicroSample {
  double ns_per_op = 0;
  double allocs_per_op = 0;
};

template <typename Body>
MicroSample MeasureMicro(Body&& body, int iterations = 200000,
                         int repetitions = 5) {
  MicroSample sample;
  for (int rep = 0; rep < repetitions; ++rep) {
    uint64_t count_before = AllocCount();
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) {
      body();
    }
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count() /
                iterations;
    double allocs = static_cast<double>(AllocCount() - count_before) /
                    static_cast<double>(iterations);
    if (rep == 0 || ns < sample.ns_per_op) {
      sample.ns_per_op = ns;
      sample.allocs_per_op = allocs;
    }
  }
  return sample;
}

// A pooled plan of realistic size: three dotted HDFS-style parameters, one
// carrying a dependency override — the shape bisection re-probes all day.
TestPlan RepresentativePlan() {
  TestPlan plan;
  ParamPlan first;
  first.param = "dfs.namenode.replication.considerLoad.factor";
  first.assigner = ValueAssigner::UniformGroup("DataNode", "3.5", "2.0");
  plan.Add(first);
  ParamPlan second;
  second.param = "dfs.datanode.handler.count";
  second.assigner = ValueAssigner::RoundRobinGroup("DataNode", "10", "3");
  second.extra_overrides.emplace_back("dfs.datanode.max.transfer.threads",
                                      "4096");
  plan.Add(second);
  ParamPlan third;
  third.param = "dfs.client.socket-timeout";
  third.assigner = ValueAssigner::Homogeneous("60000");
  plan.Add(third);
  return plan;
}

struct MicroArms {
  MicroSample legacy_keys;
  MicroSample fingerprint;
  MicroSample result_copy;
};

MicroArms MeasureMicroArms() {
  MicroArms arms;

  const std::string test_id = "minidfs.TestReplicationPolicy";
  const TestPlan plan = RepresentativePlan();
  const std::string plan_fp = plan.Fingerprint();
  const uint64_t trial = 2;
  // A read trace of realistic size: one '\x1e'-joined element per observed
  // (entity, param, value) triple.
  std::string trace;
  for (int i = 0; i < 12; ++i) {
    if (!trace.empty()) {
      trace += '\x1e';
    }
    trace += "DataNode#" + std::to_string(i % 3) +
             "|dfs.namenode.replication.considerLoad.factor=3.5";
  }

  // The pre-PR 8 RunCache call shape: four string keys concatenated per
  // logical lookup/insert cycle.
  arms.legacy_keys = MeasureMicro([&] {
    std::string exact = test_id;
    exact += '\x1f';
    exact += plan_fp;
    exact += '\x1f';
    exact += std::to_string(trial);
    std::string wildcard = test_id;
    wildcard += '\x1f';
    wildcard += plan_fp;
    wildcard += "\x1f*";
    std::string canonical = "C\x1f";
    canonical += test_id;
    canonical += '\x1f';
    canonical += plan_fp;
    canonical += "\x1f*";
    std::string trace_key = "T\x1f";
    trace_key += test_id;
    trace_key += '\x1f';
    trace_key += trace;
    trace_key += "\x1f*";
    benchmark::DoNotOptimize(exact);
    benchmark::DoNotOptimize(wildcard);
    benchmark::DoNotOptimize(canonical);
    benchmark::DoNotOptimize(trace_key);
  });

  // The pre-PR 8 plan_equiv comparator shape: the plan fingerprint
  // re-serialized from its entries on every comparison. (TestPlan::
  // Fingerprint() itself is memoized now, so the legacy cost is reproduced
  // by rebuilding the concatenation the old implementation produced.)
  arms.fingerprint = MeasureMicro(
      [&] {
        std::string text;
        for (size_t i = 0; i < plan.params().size(); ++i) {
          if (i > 0) {
            text += ", ";
          }
          text += plan.params()[i].Fingerprint();
        }
        benchmark::DoNotOptimize(text);
      },
      /*iterations=*/100000);

  // The pre-PR 8 Lookup copy-out shape: a cached TestResult deep-copied per
  // hit, under the cache mutex.
  TestResult representative;
  {
    const UnitTestRegistry& corpus = FullCorpus();
    const UnitTestDef* test = nullptr;
    for (const auto& candidate : corpus.tests()) {
      if (candidate.app == "minidfs") {
        test = &candidate;
        break;
      }
    }
    if (test == nullptr && !corpus.tests().empty()) {
      test = &corpus.tests().front();
    }
    if (test != nullptr) {
      representative = RunUnitTest(*test, plan, /*trial=*/0);
    }
  }
  arms.result_copy = MeasureMicro([&] {
    TestResult copy = representative;
    benchmark::DoNotOptimize(copy);
  });

  return arms;
}

// ---------------------------------------------------------------------------
// Report + artifact
// ---------------------------------------------------------------------------

void PrintSample(const char* label, const CampaignSample& sample) {
  std::printf("%-24s %8s runs  %8.1f allocs/run  %9.1f B/run  %10.0f ns/run",
              label, WithCommas(sample.runs).c_str(), sample.allocs_per_run,
              sample.bytes_per_run, sample.ns_per_run);
  if (sample.cache_hits + sample.cache_misses > 0) {
    std::printf("  cache %lld/%lld", static_cast<long long>(sample.cache_hits),
                static_cast<long long>(sample.cache_misses));
  }
  std::printf("\n");
}

void JsonSample(JsonWriter& json, const char* key,
                const CampaignSample& sample) {
  json.BeginObject(key);
  json.Field("logical_runs", sample.runs);
  json.Field("allocs_per_run", sample.allocs_per_run, 2);
  json.Field("bytes_per_run", sample.bytes_per_run, 1);
  json.Field("ns_per_run", sample.ns_per_run, 1);
  json.Field("cache_hits", sample.cache_hits);
  json.Field("cache_misses", sample.cache_misses);
  json.Field("findings", static_cast<uint64_t>(sample.findings));
  json.EndObject();
}

void JsonMicro(JsonWriter& json, const char* key, const MicroSample& sample) {
  json.BeginObject(key);
  json.Field("ns_per_op", sample.ns_per_op, 2);
  json.Field("allocs_per_op", sample.allocs_per_op, 3);
  json.EndObject();
}

void PrintHotPath() {
  PrintHeader("campaign hot path: allocations and ns per logical run");
  const int cores = HardwareCores();
  const int pool_workers = std::clamp(cores, 2, 6);

  // Warm the schema/corpus singletons so their one-time construction does
  // not pollute the first sample.
  (void)FullSchema();
  (void)FullCorpus();

  CampaignSample seq_plain =
      MeasureCampaign(Engine::kSequential, /*cached=*/false, 1, 3);
  CampaignSample seq_cached =
      MeasureCampaign(Engine::kSequential, /*cached=*/true, 1, 3);
  CampaignSample pool_cached =
      MeasureCampaign(Engine::kThreadPool, /*cached=*/true, pool_workers, 3);

  PrintSample("sequential", seq_plain);
  PrintSample("sequential+cache", seq_cached);
  char pool_label[48];
  std::snprintf(pool_label, sizeof(pool_label), "threadpool+cache@%d",
                pool_workers);
  PrintSample(pool_label, pool_cached);

  MicroArms arms = MeasureMicroArms();
  std::printf(
      "\nlegacy shapes (per op): string keys %.0f ns / %.1f allocs, "
      "fingerprint %.0f ns / %.1f allocs, result copy %.0f ns / %.1f "
      "allocs\n",
      arms.legacy_keys.ns_per_op, arms.legacy_keys.allocs_per_op,
      arms.fingerprint.ns_per_op, arms.fingerprint.allocs_per_op,
      arms.result_copy.ns_per_op, arms.result_copy.allocs_per_op);
  std::printf(
      "ceiling: %.0f allocs/run (cached sequential; PR 8 baseline %.0f)\n\n",
      kAllocsPerRunCeiling, kPr8BaselineAllocsPerRun);

  WriteBenchJson("BENCH_hotpath.json", [&](JsonWriter& json) {
    json.Field("hardware_cores", cores);
    json.Field("pool_workers", pool_workers);
    json.Field("allocs_per_run_ceiling", kAllocsPerRunCeiling, 1);
    json.Field("pr8_baseline_allocs_per_run", kPr8BaselineAllocsPerRun, 1);
    JsonSample(json, "sequential", seq_plain);
    JsonSample(json, "sequential_cached", seq_cached);
    JsonSample(json, "threadpool_cached", pool_cached);
    json.BeginObject("legacy_shapes");
    JsonMicro(json, "legacy_string_keys", arms.legacy_keys);
    JsonMicro(json, "fingerprint_recompute", arms.fingerprint);
    JsonMicro(json, "result_deep_copy", arms.result_copy);
    json.EndObject();
  });
}

// Fast CI gate: all four engines serialize bitwise-identically to the
// sequential campaign (scheduling-dependent accounting zeroed out, as in
// bench_parallel_scaling's gate), and the cached sequential engine stays
// under the allocations-per-run ceiling. Exits nonzero on the first
// violation.
int RunCiGate() {
  PrintHeader("hot-path CI gate: four-engine identity + allocs/run ceiling");
  (void)FullSchema();
  (void)FullCorpus();

  CampaignReport sequential = RunEngine(Engine::kSequential, false, 1);
  const std::string expected = SerializeReport(sequential);

  const int workers = 3;
  for (Engine engine :
       {Engine::kSharded, Engine::kStealing, Engine::kThreadPool}) {
    for (bool cached : {false, true}) {
      CampaignReport report = RunEngine(engine, cached, workers);
      // Scheduling- and cache-dependent accounting differs legitimately;
      // align it so the comparison covers findings, stage counts, and
      // detection order.
      report.wall_seconds = sequential.wall_seconds;
      report.cache_hits = sequential.cache_hits;
      report.cache_misses = sequential.cache_misses;
      report.equiv_hits = sequential.equiv_hits;
      report.canonicalized_plans = sequential.canonicalized_plans;
      report.mispredictions = sequential.mispredictions;
      report.cache_evictions = sequential.cache_evictions;
      report.run_durations_seconds = sequential.run_durations_seconds;
      if (engine == Engine::kSharded) {
        // Per-app sharding isolates the shared appcommon parameters into
        // every shard, so each shard re-executes work the sequential
        // engine's cross-app accounting coalesces — run *attribution*
        // differs while findings, stage counts, and detection order do not
        // (the documented contract; see docs/PARALLEL.md). The stealing and
        // thread-pool engines run the sequential engine's own canonical
        // fold, so they are held to full bitwise identity below.
        for (auto& [app, counts] : report.per_app) {
          counts.executed_runs = sequential.per_app.at(app).executed_runs;
        }
        report.total_unit_test_runs = sequential.total_unit_test_runs;
        report.first_trial_candidates = sequential.first_trial_candidates;
        report.filtered_by_hypothesis = sequential.filtered_by_hypothesis;
        // Same isolation effect on per-finding attribution: a shared
        // parameter confirmed in several shards accumulates witnesses (and
        // a best p-value) from each, where the sequential engine confirms
        // it once. The finding *set* is the contract; check it explicitly,
        // then let the serialized comparison cover everything else.
        bool same_params =
            report.findings.size() == sequential.findings.size();
        for (const auto& [param, finding] : sequential.findings) {
          same_params = same_params && report.findings.count(param) > 0;
        }
        if (!same_params) {
          std::fprintf(stderr,
                       "FAIL: sharded%s at %d workers found a different "
                       "unsafe-parameter set than the sequential campaign\n",
                       cached ? "+cache" : "", workers);
          return 1;
        }
        report.findings = sequential.findings;
      }
      const std::string actual = SerializeReport(report);
      if (actual != expected) {
        std::fprintf(stderr,
                     "FAIL: %s%s at %d workers is not bitwise-identical to "
                     "the sequential campaign\n",
                     EngineName(engine), cached ? "+cache" : "", workers);
        // Point at the first divergent line so the failure is debuggable
        // from CI logs alone.
        size_t offset = 0;
        while (offset < expected.size() && offset < actual.size() &&
               expected[offset] == actual[offset]) {
          ++offset;
        }
        size_t line_start = expected.rfind('\n', offset);
        line_start = line_start == std::string::npos ? 0 : line_start + 1;
        auto line_at = [line_start](const std::string& text) {
          size_t end = text.find('\n', line_start);
          return text.substr(line_start, end == std::string::npos
                                             ? std::string::npos
                                             : end - line_start);
        };
        std::fprintf(stderr, "  expected: %s\n  actual:   %s\n",
                     line_at(expected).c_str(), line_at(actual).c_str());
        return 1;
      }
      std::printf("identity: %s%s at %d workers OK\n", EngineName(engine),
                  cached ? "+cache" : "", workers);
    }
  }

  CampaignSample cached =
      MeasureCampaign(Engine::kSequential, /*cached=*/true, 1, 1);
  std::printf("allocations: %.1f per logical run (ceiling %.1f)\n",
              cached.allocs_per_run, kAllocsPerRunCeiling);
  if (cached.allocs_per_run > kAllocsPerRunCeiling) {
    std::fprintf(stderr,
                 "FAIL: %.1f allocations per logical run exceeds the %.1f "
                 "ceiling\n",
                 cached.allocs_per_run, kAllocsPerRunCeiling);
    return 1;
  }
  std::printf("hot-path CI gate passed\n");
  return 0;
}

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ci-gate") == 0) {
      return zebra::RunCiGate();
    }
  }
  zebra::PrintHotPath();
  return 0;
}
