// Observational-equivalence run deduplication (plan_equiv.h + run_cache.h),
// measured on top of the 6-worker work-stealing + run-cache configuration —
// the best setup bench_parallel_scaling establishes.
//
// Two campaign regimes are compared, both in the paper-cost regime
// (SetSyntheticRunLatencyUs: every real execution carries the wait-dominated
// harness latency of a JUnit invocation, so removed executions translate
// into wall-clock):
//
//   pruned    — the default pipeline: the generator already drops (param,
//               entity) targets the pre-run proved unread, so almost every
//               surviving plan is observationally distinct. The equivalence
//               layer can only collapse the residue (homogeneous baselines,
//               early-failing bisection probes) — the honest small number.
//   unpruned  — generation without pre-run read pruning
//               (CampaignOptions.prune_unread_instances = false): the
//               paper's premise regime, where a user without pre-run
//               knowledge targets every started node group for every
//               parameter. Most generated plans differ only in override
//               entries no targeted conf ever reads; the equivalence cache
//               recovers the pruning dynamically, collapsing them onto the
//               homogeneous baseline or onto each other. This is where the
//               layer must pay: >= 25% fewer executed runs than the exact
//               cache alone.
//
// Findings are asserted identical between the exact-cache and equiv-cache
// arms of each regime (the cache layers never change results — the CI
// determinism gate proves the same bitwise). Results are printed and emitted
// machine-readable to BENCH_equiv.json through the shared deterministic
// writer in bench_common.h.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/parallel_scheduler.h"
#include "src/testkit/test_execution.h"

namespace zebra {
namespace {

constexpr int kWorkers = 6;
constexpr int kRepetitions = 3;
// Deeper than bench_parallel_scaling's 500us: that bench stresses the
// scheduler, this one measures run dedup, whose value is precisely the
// regime where per-run cost dominates (the paper's JUnit invocations take
// seconds to minutes — 5ms is still conservative by three orders of
// magnitude, while keeping the bench under a minute).
constexpr int64_t kPaperCostLatencyUs = 5000;

struct Arm {
  const char* regime;       // "pruned" | "unpruned"
  bool equiv;               // exact cache only vs + equivalence layer
  double seconds = 0;       // best-of-N wall-clock
  int64_t executed = 0;     // real executions = total runs - all cache serves
  int64_t cache_hits = 0;
  int64_t equiv_hits = 0;
  int64_t canonicalized = 0;
  int64_t mispredictions = 0;
  size_t findings = 0;
};

CampaignReport RunArm(bool prune, bool equiv, double* best_seconds) {
  CampaignOptions options;  // all apps
  options.prune_unread_instances = prune;
  options.enable_run_cache = true;
  options.enable_equiv_cache = equiv;
  CampaignReport report;
  for (int i = 0; i < kRepetitions; ++i) {
    auto start = std::chrono::steady_clock::now();
    CampaignReport run =
        RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, kWorkers);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (i == 0 || seconds < *best_seconds) {
      *best_seconds = seconds;
    }
    if (i == 0) {
      report = std::move(run);
    }
  }
  return report;
}

bool SameFindings(const CampaignReport& a, const CampaignReport& b) {
  if (a.findings.size() != b.findings.size()) {
    return false;
  }
  for (const auto& [param, finding] : a.findings) {
    auto it = b.findings.find(param);
    if (it == b.findings.end() ||
        it->second.witness_tests != finding.witness_tests) {
      return false;
    }
  }
  return true;
}

void RunComparison() {
  PrintHeader(
      "Observational-equivalence dedup on 6-worker stealing+cache "
      "(paper-cost regime)");
  SetSyntheticRunLatencyUs(kPaperCostLatencyUs);

  std::vector<Arm> arms;
  bool findings_identical = true;
  double unpruned_reduction_pct = 0;
  double unpruned_speedup = 0;

  for (bool prune : {true, false}) {
    const char* regime = prune ? "pruned" : "unpruned";
    CampaignReport reports[2];
    for (bool equiv : {false, true}) {
      Arm arm;
      arm.regime = regime;
      arm.equiv = equiv;
      CampaignReport report = RunArm(prune, equiv, &arm.seconds);
      arm.executed =
          report.total_unit_test_runs - report.cache_hits - report.equiv_hits;
      arm.cache_hits = report.cache_hits;
      arm.equiv_hits = report.equiv_hits;
      arm.canonicalized = report.canonicalized_plans;
      arm.mispredictions = report.mispredictions;
      arm.findings = report.findings.size();
      reports[equiv ? 1 : 0] = std::move(report);
      arms.push_back(arm);
    }
    findings_identical &= SameFindings(reports[0], reports[1]);

    const Arm& exact = arms[arms.size() - 2];
    const Arm& equiv = arms[arms.size() - 1];
    double reduction =
        exact.executed > 0
            ? 100.0 * static_cast<double>(exact.executed - equiv.executed) /
                  static_cast<double>(exact.executed)
            : 0.0;
    double speedup = equiv.seconds > 0 ? exact.seconds / equiv.seconds : 0.0;
    if (!prune) {
      unpruned_reduction_pct = reduction;
      unpruned_speedup = speedup;
    }

    std::printf("\n%s generation regime:\n", regime);
    std::printf("%18s %10s %10s %10s %12s %10s\n", "arm", "executed",
                "exact-h", "equiv-h", "mispredict", "wall");
    PrintRule('-', 76);
    for (const Arm* arm : {&exact, &equiv}) {
      std::printf("%18s %10s %10s %10s %12s %8.3f s\n",
                  arm->equiv ? "stealing+equiv" : "stealing+cache",
                  WithCommas(arm->executed).c_str(),
                  WithCommas(arm->cache_hits).c_str(),
                  WithCommas(arm->equiv_hits).c_str(),
                  WithCommas(arm->mispredictions).c_str(), arm->seconds);
    }
    std::printf(
        "  -> %.1f%% fewer executed runs, %.2fx wall-clock, findings %s\n",
        reduction, speedup,
        SameFindings(reports[0], reports[1]) ? "identical" : "DIFFER");
  }
  SetSyntheticRunLatencyUs(0);

  std::printf(
      "\nheadline: unpruned regime collapses %.1f%% of executions the exact "
      "cache\nmust run (acceptance floor: 25%%), findings %s across all "
      "arms.\n",
      unpruned_reduction_pct, findings_identical ? "identical" : "DIFFER");

  WriteBenchJson("BENCH_equiv.json", [&](JsonWriter& json) {
    json.Field("workers", kWorkers);
    json.Field("paper_cost_latency_us", kPaperCostLatencyUs);
    json.Field("unpruned_executed_run_reduction_pct", unpruned_reduction_pct,
               1);
    json.Field("unpruned_wall_clock_speedup", unpruned_speedup, 2);
    json.Field("findings_identical", findings_identical);
    json.BeginArray("arms");
    for (const Arm& arm : arms) {
      json.BeginObject();
      json.Field("regime", arm.regime);
      json.Field("mode", arm.equiv ? "stealing+equiv" : "stealing+cache");
      json.Field("executed_runs", arm.executed);
      json.Field("cache_hits", arm.cache_hits);
      json.Field("equiv_hits", arm.equiv_hits);
      json.Field("canonicalized_plans", arm.canonicalized);
      json.Field("mispredictions", arm.mispredictions);
      json.Field("findings", static_cast<uint64_t>(arm.findings));
      json.Field("seconds", arm.seconds, 6);
      json.EndObject();
    }
    json.EndArray();
  });
}

// Microbenchmark: one sequential equiv-cache campaign over the smallest app,
// native cost — tracks the overhead of trace prediction + restriction
// matching when there is almost nothing to collapse (the worst case for the
// layer).
void BM_EquivCacheCampaign(benchmark::State& state) {
  for (auto _ : state) {
    CampaignOptions options;
    options.apps = {"apptools"};
    options.enable_equiv_cache = true;
    Campaign campaign(FullSchema(), FullCorpus(), options);
    CampaignReport report = campaign.Run();
    benchmark::DoNotOptimize(report.findings.size());
  }
}
BENCHMARK(BM_EquivCacheCampaign)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::RunComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
