// Regenerates Table 1: statistics for each application (# unit tests,
// # app-specific parameters, shared-library parameters), plus a
// google-benchmark of the pre-run phase.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/test_generator.h"

namespace zebra {
namespace {

void PrintTable1() {
  PrintHeader("Table 1 — Statistics for each application");
  std::printf("%-26s %12s %26s\n", "", "#Unit tests", "#App-specific parameters");
  PrintRule();

  const ConfSchema& schema = FullSchema();
  auto test_counts = FullCorpus().CountsByApp();
  for (const std::string& app : PaperAppOrder()) {
    int tests = test_counts.count(app) > 0 ? test_counts.at(app) : 0;
    size_t own_params = schema.ParamsOwnedBy(app).size();
    if (app == "apptools") {
      std::printf("%-26s %12s %26s\n", PaperName(app).c_str(),
                  WithCommas(tests).c_str(), "N/A");
    } else {
      std::printf("%-26s %12s %26s\n", PaperName(app).c_str(),
                  WithCommas(tests).c_str(), WithCommas((int64_t)own_params).c_str());
    }
  }
  PrintRule();
  std::printf("Shared Hadoop-Common-analog library parameters: %zu\n",
              schema.ParamsOwnedBy("appcommon").size());
  std::printf("Total parameters across the schema: %zu\n", schema.params().size());
  std::printf(
      "\nPaper values for reference: Flink 26,226 tests / 447 params; Hadoop Tools\n"
      "1,518 / N/A; HBase 4,985 / 206; HDFS 6,445 / 579; MapReduce 1,423 / 210;\n"
      "YARN 4,806 / 465; Hadoop Common library: 336 params. Our corpus is a\n"
      "miniature of the same shape (tests per app, params per app, one shared\n"
      "library), scaled to what a deterministic in-process reproduction can run.\n\n");
}

void BM_PreRunApp(benchmark::State& state, const std::string& app) {
  TestGenerator generator(FullSchema(), FullCorpus());
  for (auto _ : state) {
    int64_t executions = 0;
    auto records = generator.PreRunApp(app, &executions);
    benchmark::DoNotOptimize(records);
  }
}

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintTable1();
  for (const std::string& app : zebra::PaperAppOrder()) {
    benchmark::RegisterBenchmark(("BM_PreRun/" + app).c_str(),
                                 [app](benchmark::State& state) {
                                   zebra::BM_PreRunApp(state, app);
                                 });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
