// Shared helpers for the per-artifact bench binaries.
//
// Every bench prints the paper artifact it regenerates (table rows / case
// study numbers) and, where timing is meaningful, also registers
// google-benchmark microbenchmarks which run after the report.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/campaign.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {

// The application order used by the paper's tables.
inline const std::vector<std::string>& PaperAppOrder() {
  static const auto* kOrder = new std::vector<std::string>{
      "ministream", "apptools", "minikv", "minidfs", "minimr", "miniyarn"};
  return *kOrder;
}

// Paper-name ("Flink", "Hadoop-Tools", ...) for each mini-application.
inline std::string PaperName(const std::string& app) {
  if (app == "ministream") {
    return "Flink (ministream)";
  }
  if (app == "apptools") {
    return "Hadoop-Tools (apptools)";
  }
  if (app == "minikv") {
    return "HBase (minikv)";
  }
  if (app == "minidfs") {
    return "HDFS (minidfs)";
  }
  if (app == "minimr") {
    return "MapReduce (minimr)";
  }
  if (app == "miniyarn") {
    return "YARN (miniyarn)";
  }
  if (app == "appcommon") {
    return "Hadoop Common (appcommon)";
  }
  return app;
}

inline void PrintRule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) {
    std::putchar(c);
  }
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  PrintRule('=');
  std::printf("%s\n", title.c_str());
  PrintRule('=');
}

// Thousands-separated rendering of counts.
inline std::string WithCommas(int64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0 && *it != '-') {
      out.insert(out.begin(), ',');
    }
    out.insert(out.begin(), *it);
    ++count;
  }
  return out;
}

inline CampaignReport RunCampaign(const std::vector<std::string>& apps,
                                  bool enable_pooling = true) {
  CampaignOptions options;
  options.apps = apps;
  options.enable_pooling = enable_pooling;
  Campaign campaign(FullSchema(), FullCorpus(), options);
  return campaign.Run();
}

inline CampaignReport RunFullCampaign() { return RunCampaign(PaperAppOrder()); }

}  // namespace zebra

#endif  // BENCH_BENCH_COMMON_H_
