// Shared helpers for the per-artifact bench binaries.
//
// Every bench prints the paper artifact it regenerates (table rows / case
// study numbers) and, where timing is meaningful, also registers
// google-benchmark microbenchmarks which run after the report.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/campaign.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {

// The application order used by the paper's tables.
inline const std::vector<std::string>& PaperAppOrder() {
  static const auto* kOrder = new std::vector<std::string>{
      "ministream", "apptools", "minikv", "minidfs", "minimr", "miniyarn"};
  return *kOrder;
}

// Paper-name ("Flink", "Hadoop-Tools", ...) for each mini-application.
inline std::string PaperName(const std::string& app) {
  if (app == "ministream") {
    return "Flink (ministream)";
  }
  if (app == "apptools") {
    return "Hadoop-Tools (apptools)";
  }
  if (app == "minikv") {
    return "HBase (minikv)";
  }
  if (app == "minidfs") {
    return "HDFS (minidfs)";
  }
  if (app == "minimr") {
    return "MapReduce (minimr)";
  }
  if (app == "miniyarn") {
    return "YARN (miniyarn)";
  }
  if (app == "appcommon") {
    return "Hadoop Common (appcommon)";
  }
  return app;
}

inline void PrintRule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) {
    std::putchar(c);
  }
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  PrintRule('=');
  std::printf("%s\n", title.c_str());
  PrintRule('=');
}

// Thousands-separated rendering of counts.
inline std::string WithCommas(int64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0 && *it != '-') {
      out.insert(out.begin(), ',');
    }
    out.insert(out.begin(), *it);
    ++count;
  }
  return out;
}

// Deterministic writer for the machine-readable BENCH_*.json artifacts:
// commas, two-space indentation, and number formatting are handled centrally
// so every bench emits byte-stable, diffable JSON. Keys and string values are
// emitted verbatim (they are ASCII identifiers; no escaping is needed).
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* file) : file_(file) {}

  void BeginObject(const char* key = nullptr) { Prefix(key); Push('{'); }
  void EndObject() { Pop('}'); }
  void BeginArray(const char* key = nullptr) { Prefix(key); Push('['); }
  void EndArray() { Pop(']'); }

  void Field(const char* key, const char* value) {
    Prefix(key);
    std::fprintf(file_, "\"%s\"", value);
  }
  void Field(const char* key, const std::string& value) { Field(key, value.c_str()); }
  void Field(const char* key, bool value) {
    Prefix(key);
    std::fputs(value ? "true" : "false", file_);
  }
  void Field(const char* key, int64_t value) {
    Prefix(key);
    std::fprintf(file_, "%" PRId64, value);
  }
  void Field(const char* key, uint64_t value) {
    Prefix(key);
    std::fprintf(file_, "%" PRIu64, value);
  }
  void Field(const char* key, int value) { Field(key, static_cast<int64_t>(value)); }
  void Field(const char* key, double value, int precision = 3) {
    Prefix(key);
    std::fprintf(file_, "%.*f", precision, value);
  }

 private:
  // Emits the separator + indentation owed before any value at the current
  // depth, and the key when inside an object.
  void Prefix(const char* key) {
    if (!items_at_depth_.empty()) {
      if (items_at_depth_.back() > 0) {
        std::fputc(',', file_);
      }
      ++items_at_depth_.back();
      std::fputc('\n', file_);
      Indent();
    }
    if (key != nullptr) {
      std::fprintf(file_, "\"%s\": ", key);
    }
  }
  void Push(char open) {
    std::fputc(open, file_);
    items_at_depth_.push_back(0);
  }
  void Pop(char close) {
    bool had_items = items_at_depth_.back() > 0;
    items_at_depth_.pop_back();
    if (had_items) {
      std::fputc('\n', file_);
      Indent();
    }
    std::fputc(close, file_);
    if (items_at_depth_.empty()) {
      std::fputc('\n', file_);
    }
  }
  void Indent() {
    for (size_t i = 0; i < items_at_depth_.size(); ++i) {
      std::fputs("  ", file_);
    }
  }

  std::FILE* file_;
  std::vector<int> items_at_depth_;
};

// Opens `path`, hands `body` a JsonWriter rooted at one top-level object, and
// announces the artifact on stdout. Returns false when the file cannot be
// opened (the bench still prints its report).
template <typename Body>
bool WriteBenchJson(const char* path, Body&& body) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  JsonWriter json(file);
  json.BeginObject();
  body(json);
  json.EndObject();
  std::fclose(file);
  std::printf("wrote %s\n", path);
  return true;
}

inline CampaignReport RunCampaign(const std::vector<std::string>& apps,
                                  bool enable_pooling = true) {
  CampaignOptions options;
  options.apps = apps;
  options.enable_pooling = enable_pooling;
  Campaign campaign(FullSchema(), FullCorpus(), options);
  return campaign.Run();
}

inline CampaignReport RunFullCampaign() { return RunCampaign(PaperAppOrder()); }

}  // namespace zebra

#endif  // BENCH_BENCH_COMMON_H_
