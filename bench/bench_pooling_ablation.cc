// Ablation: pooled testing on vs off (§4). With pooling off, every surviving
// instance is verified individually. Also ablates the IPC-sharing fix of
// §7.1 (the "one line of code" that removed the IPC false alarms).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/testkit/ground_truth.h"

namespace zebra {
namespace {

void PrintPoolingAblation() {
  PrintHeader("Ablation — pooled testing (paper §4)");
  std::printf("%-14s %18s %18s %10s %12s\n", "Application", "runs (pooled)",
              "runs (individual)", "saving", "same result");
  PrintRule();

  for (const char* app :
       {"ministream", "minikv", "miniyarn", "apptools", "minimr", "minidfs"}) {
    CampaignReport pooled = RunCampaign({app}, /*enable_pooling=*/true);
    CampaignReport individual = RunCampaign({app}, /*enable_pooling=*/false);

    bool same = true;
    for (const auto& [param, why] : ExpectedUnsafeParams()) {
      bool in_pooled = pooled.findings.count(param) > 0;
      bool in_individual = individual.findings.count(param) > 0;
      if (in_pooled != in_individual) {
        same = false;
      }
    }
    int64_t pooled_runs = pooled.per_app.at(app).executed_runs;
    int64_t individual_runs = individual.per_app.at(app).executed_runs;
    std::printf("%-14s %18s %18s %9.1fx %12s\n", app,
                WithCommas(pooled_runs).c_str(), WithCommas(individual_runs).c_str(),
                pooled_runs > 0
                    ? static_cast<double>(individual_runs) /
                          static_cast<double>(pooled_runs)
                    : 0.0,
                same ? "yes" : "NO");
  }
  PrintRule();
  std::printf(
      "\nPooling packs every surviving parameter of a unit test into one run and\n"
      "bisects only on failure, so the per-run cost is amortized across the whole\n"
      "pool — the paper reports this as the final 3-7x of its 2-4 orders of\n"
      "magnitude total reduction.\n\n");
}

void PrintIpcSharingNote() {
  PrintHeader("Ablation — shared IPC component (the §7.1 one-line fix)");
  CampaignReport report = RunCampaign({"miniyarn", "minikv"});
  int ipc_findings = 0;
  for (const auto& [param, finding] : report.findings) {
    if (KnownFalsePositiveSources().count(param) > 0 && param.rfind("ipc.", 0) == 0) {
      ++ipc_findings;
      std::printf("with sharing enabled, false alarm reported: %s\n", param.c_str());
    }
  }
  if (ipc_findings == 0) {
    std::printf("no IPC false alarms surfaced in this run\n");
  }
  std::printf(
      "\nThe corpus can disable component sharing per cluster\n"
      "(Cluster::SetFlag(\"%s\")), which gives every node a private\n"
      "IPC component whose configuration always matches its owner — removing these\n"
      "false alarms exactly as the paper's one-line Hadoop change did. See\n"
      "tests/ipc_component_test.cc for the direct demonstration.\n\n",
      "ipc.sharing.disabled");
}

void BM_CampaignPooled(benchmark::State& state) {
  for (auto _ : state) {
    CampaignReport report = RunCampaign({"minikv"}, true);
    benchmark::DoNotOptimize(report.total_unit_test_runs);
  }
}
BENCHMARK(BM_CampaignPooled)->Unit(benchmark::kMillisecond);

void BM_CampaignIndividual(benchmark::State& state) {
  for (auto _ : state) {
    CampaignReport report = RunCampaign({"minikv"}, false);
    benchmark::DoNotOptimize(report.total_unit_test_runs);
  }
}
BENCHMARK(BM_CampaignIndividual)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintPoolingAblation();
  zebra::PrintIpcSharingNote();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
