// Microbenchmarks of the Configuration hot path: Get/Has per-call cost in
// and out of a ConfAgent session. Every configuration read a unit test makes
// funnels through here, so per-call allocations multiply by the campaign's
// millions of intercepted reads.
//
// BM_ConfGet_MaterializedName reproduces the call shape before the
// string_view refactor (a std::string per call for the property-map key and
// a second by-value copy handed to InterceptGet); the delta against
// BM_ConfGet_* is the allocation cost the refactor removed. The in-session
// arm exercises the arena-interned memoized InterceptGet path: after a
// parameter's first read in a session, the interned name pointer keys a
// per-session memo so repeat reads skip plan application and trace updates.
// Parameter names are realistic dotted identifiers well past small-string
// optimization, so each legacy materialization was a heap round-trip.
//
// Before the google-benchmark pass, main() times the same three Get arms
// directly and emits BENCH_conf_micro.json with ns/op per arm plus the
// memoized-vs-legacy delta, so the InterceptGet hot-path cost is tracked as
// a machine-readable artifact like every other bench.

#include <chrono>
#include <string>
#include <string_view>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/conf/conf_agent.h"
#include "src/conf/configuration.h"

namespace zebra {
namespace {

// 44 characters: representative of HDFS-style names, never SSO-resident.
constexpr std::string_view kParam =
    "dfs.namenode.replication.considerLoad.factor";
constexpr std::string_view kDefault = "2.0";

void BM_ConfGet_NoSession(benchmark::State& state) {
  Configuration conf;
  conf.Set(kParam, "3.5");
  for (auto _ : state) {
    benchmark::DoNotOptimize(conf.Get(kParam, kDefault));
  }
}
BENCHMARK(BM_ConfGet_NoSession);

void BM_ConfGet_InSession(benchmark::State& state) {
  // The unit-test regime: an active session interns the name once, then
  // repeat reads hit the pointer-keyed memo — no per-call materialization,
  // plan application, or trace mutation.
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  conf.Set(kParam, "3.5");
  for (auto _ : state) {
    benchmark::DoNotOptimize(conf.Get(kParam, kDefault));
  }
  session.End();
}
BENCHMARK(BM_ConfGet_InSession);

void BM_ConfGet_MaterializedName(benchmark::State& state) {
  // Pre-refactor call shape: GetStored built std::string(name) to probe the
  // non-transparent property map, and InterceptGet took the name by value —
  // two heap strings per read. Kept as the comparison arm.
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  conf.Set(kParam, "3.5");
  for (auto _ : state) {
    std::string map_key(kParam);
    std::string intercept_copy(kParam);
    benchmark::DoNotOptimize(map_key);
    benchmark::DoNotOptimize(conf.Get(intercept_copy, kDefault));
  }
  session.End();
}
BENCHMARK(BM_ConfGet_MaterializedName);

void BM_ConfHas_InSession(benchmark::State& state) {
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  conf.Set(kParam, "3.5");
  for (auto _ : state) {
    benchmark::DoNotOptimize(conf.Has(kParam));
  }
  session.End();
}
BENCHMARK(BM_ConfHas_InSession);

// Best-of-R ns/op over a fixed iteration count: allocator and scheduler
// jitter at nanosecond scale make the minimum the honest per-call cost.
template <typename Body>
double MeasureNsPerOp(Body&& body, int iterations = 400000,
                      int repetitions = 5) {
  double best = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) {
      body();
    }
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count() /
                iterations;
    if (rep == 0 || ns < best) {
      best = ns;
    }
  }
  return best;
}

void WriteConfMicroJson() {
  double no_session_ns = 0;
  {
    Configuration conf;
    conf.Set(kParam, "3.5");
    no_session_ns = MeasureNsPerOp(
        [&] { benchmark::DoNotOptimize(conf.Get(kParam, kDefault)); });
  }

  double memoized_ns = 0;
  {
    ConfAgentSession session(TestPlan{});
    Configuration conf;
    conf.Set(kParam, "3.5");
    memoized_ns = MeasureNsPerOp(
        [&] { benchmark::DoNotOptimize(conf.Get(kParam, kDefault)); });
    session.End();
  }

  double legacy_ns = 0;
  {
    ConfAgentSession session(TestPlan{});
    Configuration conf;
    conf.Set(kParam, "3.5");
    legacy_ns = MeasureNsPerOp([&] {
      std::string map_key(kParam);
      std::string intercept_copy(kParam);
      benchmark::DoNotOptimize(map_key);
      benchmark::DoNotOptimize(conf.Get(intercept_copy, kDefault));
    });
    session.End();
  }

  std::printf(
      "InterceptGet hot path: %.1f ns/op memoized in-session "
      "(%.1f ns/op outside a session); legacy materialized-name shape "
      "%.1f ns/op — the memoized path saves %.1f ns per intercepted read "
      "(%.2fx).\n",
      memoized_ns, no_session_ns, legacy_ns, legacy_ns - memoized_ns,
      memoized_ns > 0 ? legacy_ns / memoized_ns : 0.0);

  WriteBenchJson("BENCH_conf_micro.json", [&](JsonWriter& json) {
    json.Field("param_name_length", static_cast<int>(kParam.size()));
    json.Field("get_no_session_ns_per_op", no_session_ns, 2);
    json.Field("get_in_session_memoized_ns_per_op", memoized_ns, 2);
    json.Field("get_in_session_materialized_legacy_ns_per_op", legacy_ns, 2);
    json.Field("memoized_saving_ns_per_op", legacy_ns - memoized_ns, 2);
    json.Field("memoized_speedup_vs_legacy",
               memoized_ns > 0 ? legacy_ns / memoized_ns : 0.0, 3);
  });
}

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::WriteConfMicroJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
