// Microbenchmarks of the Configuration hot path: Get/Has per-call cost in
// and out of a ConfAgent session. Every configuration read a unit test makes
// funnels through here, so per-call allocations multiply by the campaign's
// millions of intercepted reads.
//
// BM_ConfGet_MaterializedName reproduces the call shape before the
// string_view refactor (a std::string per call for the property-map key and
// a second by-value copy handed to InterceptGet); the delta against
// BM_ConfGet_* is the allocation cost the refactor removed. Parameter names
// are realistic dotted identifiers well past small-string optimization, so
// each materialization was a heap round-trip.

#include <string>
#include <string_view>

#include <benchmark/benchmark.h>

#include "src/conf/conf_agent.h"
#include "src/conf/configuration.h"

namespace zebra {
namespace {

// 44 characters: representative of HDFS-style names, never SSO-resident.
constexpr std::string_view kParam =
    "dfs.namenode.replication.considerLoad.factor";
constexpr std::string_view kDefault = "2.0";

void BM_ConfGet_NoSession(benchmark::State& state) {
  Configuration conf;
  conf.Set(kParam, "3.5");
  for (auto _ : state) {
    benchmark::DoNotOptimize(conf.Get(kParam, kDefault));
  }
}
BENCHMARK(BM_ConfGet_NoSession);

void BM_ConfGet_InSession(benchmark::State& state) {
  // The unit-test regime: an active session interns the name and records the
  // read into the trace (both O(log n) lookups against small sets after the
  // first call — no per-call name materialization).
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  conf.Set(kParam, "3.5");
  for (auto _ : state) {
    benchmark::DoNotOptimize(conf.Get(kParam, kDefault));
  }
  session.End();
}
BENCHMARK(BM_ConfGet_InSession);

void BM_ConfGet_MaterializedName(benchmark::State& state) {
  // Pre-refactor call shape: GetStored built std::string(name) to probe the
  // non-transparent property map, and InterceptGet took the name by value —
  // two heap strings per read. Kept as the comparison arm.
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  conf.Set(kParam, "3.5");
  for (auto _ : state) {
    std::string map_key(kParam);
    std::string intercept_copy(kParam);
    benchmark::DoNotOptimize(map_key);
    benchmark::DoNotOptimize(conf.Get(intercept_copy, kDefault));
  }
  session.End();
}
BENCHMARK(BM_ConfGet_MaterializedName);

void BM_ConfHas_InSession(benchmark::State& state) {
  ConfAgentSession session(TestPlan{});
  Configuration conf;
  conf.Set(kParam, "3.5");
  for (auto _ : state) {
    benchmark::DoNotOptimize(conf.Has(kParam));
  }
  session.End();
}
BENCHMARK(BM_ConfHas_InSession);

}  // namespace
}  // namespace zebra

BENCHMARK_MAIN();
