// Ablation of §4's representative value assignments: with only the
// uniform-per-type strategy (round-robin within groups disabled), every
// unsafety that manifests *between nodes of the same type* disappears —
// e.g. TaskManager-to-TaskManager data SSL, or DataNode-to-DataNode pipeline
// checksums in tests without a cross-type witness.

#include <set>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/testkit/ground_truth.h"

namespace zebra {
namespace {

CampaignReport RunWithStrategies(const std::vector<std::string>& apps,
                                 bool round_robin) {
  CampaignOptions options;
  options.apps = apps;
  options.enable_round_robin = round_robin;
  Campaign campaign(FullSchema(), FullCorpus(), options);
  return campaign.Run();
}

void PrintAblation() {
  PrintHeader("Ablation — §4 value-assignment strategies");
  std::vector<std::string> apps = PaperAppOrder();
  CampaignReport full = RunWithStrategies(apps, /*round_robin=*/true);
  CampaignReport uniform_only = RunWithStrategies(apps, /*round_robin=*/false);

  std::set<std::string> lost;
  for (const auto& [param, finding] : full.findings) {
    if (uniform_only.findings.count(param) == 0) {
      lost.insert(param);
    }
  }

  std::printf("findings with both strategies:        %zu\n", full.findings.size());
  std::printf("findings with uniform-per-type only:  %zu\n",
              uniform_only.findings.size());
  std::printf("lost without round-robin:             %zu\n", lost.size());
  for (const std::string& param : lost) {
    bool expected = IsExpectedUnsafe(param);
    std::printf("  %-55s %s\n", param.c_str(),
                expected ? "(TRUE unsafety missed!)" : "(was a false positive)");
  }
  std::printf(
      "\nInstance counts: %s (both) vs %s (uniform only) — round-robin buys the\n"
      "within-group coverage at a modest instance cost, exactly the trade §4\n"
      "argues for.\n\n",
      WithCommas(full.TotalAfterUncertainty()).c_str(),
      WithCommas(uniform_only.TotalAfterUncertainty()).c_str());
}

void BM_CampaignBothStrategies(benchmark::State& state) {
  for (auto _ : state) {
    CampaignReport report = RunWithStrategies({"ministream"}, true);
    benchmark::DoNotOptimize(report.findings.size());
  }
}
BENCHMARK(BM_CampaignBothStrategies)->Unit(benchmark::kMillisecond);

void BM_CampaignUniformOnly(benchmark::State& state) {
  for (auto _ : state) {
    CampaignReport report = RunWithStrategies({"ministream"}, false);
    benchmark::DoNotOptimize(report.findings.size());
  }
}
BENCHMARK(BM_CampaignUniformOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
