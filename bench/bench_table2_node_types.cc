// Regenerates Table 2: the node types investigated per application, verified
// against what the corpus pre-run actually starts; plus a google-benchmark of
// whole-cluster bring-up per application.

#include <set>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/name_node.h"
#include "src/apps/minikv/kv_store.h"
#include "src/apps/ministream/job_manager.h"
#include "src/apps/miniyarn/node_manager.h"
#include "src/apps/miniyarn/resource_manager.h"
#include "src/common/strings.h"
#include "src/runtime/node_types.h"
#include "src/testkit/test_execution.h"

namespace zebra {
namespace {

void PrintTable2() {
  PrintHeader("Table 2 — The types of nodes we investigated");
  std::printf("%-26s %s\n", "Application", "Types of nodes");
  PrintRule();

  // Registered inventory.
  for (const std::string& app : PaperAppOrder()) {
    if (app == "apptools") {
      continue;  // tools reuse other applications' nodes
    }
    std::vector<std::string> types = NodeTypesForApp(app);
    std::printf("%-26s %s\n", PaperName(app).c_str(), StrJoin(types, ", ").c_str());
  }
  PrintRule();

  // Cross-check: every node type the corpus actually starts is declared.
  std::map<std::string, std::set<std::string>> started;
  for (const UnitTestDef& test : FullCorpus().tests()) {
    TestResult result = RunUnitTest(test, TestPlan{}, 0);
    for (const auto& [type, count] : result.report.node_counts) {
      started[test.app].insert(type);
    }
  }
  bool all_declared = true;
  for (const auto& [app, types] : started) {
    std::vector<std::string> declared = NodeTypesForApp(app);
    for (const std::string& type : types) {
      bool found = false;
      for (const std::string& d : declared) {
        found |= d == type;
      }
      if (!found) {
        std::printf("WARNING: %s starts undeclared node type %s\n", app.c_str(),
                    type.c_str());
        all_declared = false;
      }
    }
  }
  std::printf("Corpus cross-check: %s\n\n",
              all_declared ? "every started node type is declared" : "MISMATCH");
}

void BM_MiniDfsClusterStartup(benchmark::State& state) {
  for (auto _ : state) {
    Cluster cluster;
    Configuration conf;
    NameNode nn(&cluster, conf);
    DataNode dn1(&cluster, &nn, conf);
    DataNode dn2(&cluster, &nn, conf);
    benchmark::DoNotOptimize(nn.NumRegisteredDataNodes());
  }
}
BENCHMARK(BM_MiniDfsClusterStartup);

void BM_MiniYarnClusterStartup(benchmark::State& state) {
  for (auto _ : state) {
    Cluster cluster;
    Configuration conf;
    ResourceManager rm(&cluster, conf);
    NodeManager nm(&cluster, &rm, conf);
    benchmark::DoNotOptimize(rm.NumRegisteredNodeManagers());
  }
}
BENCHMARK(BM_MiniYarnClusterStartup);

void BM_MiniKvClusterStartup(benchmark::State& state) {
  for (auto _ : state) {
    Cluster cluster;
    Configuration conf;
    HMaster master(&cluster, conf);
    HRegionServer rs(&cluster, &master, conf);
    benchmark::DoNotOptimize(master.NumRegionServers());
  }
}
BENCHMARK(BM_MiniKvClusterStartup);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
