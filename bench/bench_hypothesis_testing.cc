// Regenerates the §7.2 hypothesis-testing result: how many first-trial
// candidates (hetero failed, all homo controls passed) the multi-trial Fisher
// test subsequently filtered as nondeterministic false positives.
// Paper: 2,167 first-trial failures, 731 filtered.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/common/stats.h"

namespace zebra {
namespace {

void PrintHypothesisReport() {
  CampaignReport report = RunFullCampaign();

  PrintHeader("§7.2 — Effects of hypothesis testing (significance 1e-4)");
  std::printf("first-trial candidates (hetero failed, homos passed): %d\n",
              report.first_trial_candidates);
  std::printf("filtered by multi-trial hypothesis testing:           %d\n",
              report.filtered_by_hypothesis);
  std::printf("surviving (reported as heterogeneous-unsafe):         %d\n",
              report.first_trial_candidates - report.filtered_by_hypothesis);
  std::printf("\nPaper: 2,167 first-trial failures; 731 filtered as false positives.\n");
  std::printf("Shape check: a substantial fraction (ours %.0f%%, paper 34%%) of\n"
              "first-trial candidates are nondeterministic and must be filtered.\n\n",
              report.first_trial_candidates > 0
                  ? 100.0 * report.filtered_by_hypothesis /
                        report.first_trial_candidates
                  : 0.0);

  std::printf("Fisher exact p-values for (hetero n/n failed, homo 0/2n failed):\n");
  std::printf("%6s %14s %12s\n", "n", "p-value", "< 1e-4?");
  for (int64_t n : {1, 2, 3, 4, 5, 6, 8, 10}) {
    double p = FisherExactOneSided(n, n, 0, 2 * n);
    std::printf("%6lld %14.3e %12s\n", static_cast<long long>(n), p,
                p < 1e-4 ? "yes" : "no");
  }
  std::printf("\nA 30%%-flaky test instead produces balanced failure rates across the\n"
              "hetero and homo rows, which never reaches significance:\n");
  for (auto [hf, ht, mf, mt] :
       {std::tuple<int, int, int, int>{3, 10, 2, 20},
        std::tuple<int, int, int, int>{4, 10, 6, 20},
        std::tuple<int, int, int, int>{10, 10, 6, 20}}) {
    std::printf("  hetero %d/%d failed, homo %d/%d failed -> p = %.3e\n", hf, ht, mf,
                mt, FisherExactOneSided(hf, ht, mf, mt));
  }
  std::printf("\n");
}

void BM_FisherExact(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FisherExactOneSided(n, n, 0, 2 * n));
  }
}
BENCHMARK(BM_FisherExact)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintHypothesisReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
