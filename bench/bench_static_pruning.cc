// zebralint static pruning and prioritization (the §8 "static analysis can
// shrink the dynamic search space" extension):
//
//  * per-app instance counts with the static stage inserted between Table 5
//    row 1 (original) and row 2 (after pre-run),
//  * runs-to-first-true-detection for the wire-tainted-first order versus
//    the expected unprioritized order (mean over seeded shuffles),
//  * analyzer throughput microbenchmark (it rescans the whole tree).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/analysis/static_prior.h"
#include "src/testkit/ground_truth.h"

namespace zebra {
namespace {

const analysis::StaticPriorReport& Prior() {
  static const auto* kPrior = [] {
    analysis::StaticAnalyzer analyzer;
    analyzer.AddTree(ZEBRALINT_SOURCE_ROOT);
    return new analysis::StaticPriorReport(analyzer.Analyze(&FullSchema()));
  }();
  return *kPrior;
}

CampaignReport RunApp(const std::string& app,
                      const analysis::StaticPriorReport* prior,
                      uint64_t shuffle_seed, bool pooling) {
  CampaignOptions options;
  options.apps = {app};
  options.enable_pooling = pooling;
  options.static_prior = prior;
  options.shuffle_order_seed = shuffle_seed;
  Campaign campaign(FullSchema(), FullCorpus(), options);
  return campaign.Run();
}

void PrintStaticStage() {
  PrintHeader(
      "zebralint — static pruning stage (inserted before Table 5's pre-run)");
  std::printf("%-28s%14s%14s%14s%10s\n", "", "original", "after_static",
              "after_prerun", "pruned%");
  PrintRule('-', 80);
  for (const std::string& app : PaperAppOrder()) {
    CampaignReport report = RunApp(app, &Prior(), 0, /*pooling=*/true);
    const AppStageCounts& counts = report.per_app.at(app);
    double pct =
        counts.original > 0
            ? 100.0 *
                  static_cast<double>(counts.original - counts.after_static) /
                  static_cast<double>(counts.original)
            : 0.0;
    std::printf("%-28s%14s%14s%14s%9.2f%%\n", PaperName(app).c_str(),
                WithCommas(counts.original).c_str(),
                WithCommas(counts.after_static).c_str(),
                WithCommas(counts.after_prerun).c_str(), pct);
  }
  std::printf(
      "\nNever-read schema parameters pruned statically: %zu "
      "(zero dynamic cost: the pre-run\nwould also drop them, but only after "
      "enumerating their instances).\n",
      Prior().never_read.size());
}

void PrintPrioritization() {
  PrintHeader(
      "zebralint — wire-tainted-first ordering: unit-test runs to the first "
      "true detection");
  std::printf(
      "minidfs, individual verification (pooling shares one run across all\n"
      "parameters, so ordering only matters for the unpooled verifier):\n\n");

  CampaignReport prioritized =
      RunApp("minidfs", &Prior(), 0, /*pooling=*/false);
  std::printf("  prioritized (static prior):     %6s runs  (first: %s%s)\n",
              WithCommas(prioritized.runs_to_first_detection).c_str(),
              prioritized.first_detection_param.c_str(),
              IsExpectedUnsafe(prioritized.first_detection_param)
                  ? ", true positive"
                  : "");

  int64_t total = 0;
  const uint64_t kSeeds[] = {1, 2, 3, 4, 5};
  for (uint64_t seed : kSeeds) {
    CampaignReport baseline =
        RunApp("minidfs", nullptr, seed, /*pooling=*/false);
    std::printf("  unprioritized shuffle seed %llu:  %6s runs  (first: %s)\n",
                static_cast<unsigned long long>(seed),
                WithCommas(baseline.runs_to_first_detection).c_str(),
                baseline.first_detection_param.c_str());
    total += baseline.runs_to_first_detection;
  }
  double mean = static_cast<double>(total) / 5.0;
  std::printf(
      "\n  unprioritized mean: %.1f runs -> prioritized saves %.1f runs "
      "(%.1f%%)\n",
      mean, mean - static_cast<double>(prioritized.runs_to_first_detection),
      100.0 *
          (mean - static_cast<double>(prioritized.runs_to_first_detection)) /
          mean);
}

void BM_SelfScan(benchmark::State& state) {
  for (auto _ : state) {
    analysis::StaticAnalyzer analyzer;
    analyzer.AddTree(ZEBRALINT_SOURCE_ROOT);
    analysis::StaticPriorReport report = analyzer.Analyze(&FullSchema());
    benchmark::DoNotOptimize(report.params.size());
  }
}
BENCHMARK(BM_SelfScan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintStaticStage();
  zebra::PrintPrioritization();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
