// zebralint static pruning, prioritization, and incrementality (the §8
// "static analysis can shrink the dynamic search space" extension):
//
//  * per-app instance counts with the static stage inserted between Table 5
//    row 1 (original) and row 2 (after pre-run),
//  * runs-to-first-true-detection for the wire-tainted-first order versus
//    the expected unprioritized order (mean over seeded shuffles),
//  * cold versus incremental analysis wall time — a warm summary cache with
//    one touched TU must re-parse exactly that TU and come in at least an
//    order of magnitude under a cold scan,
//  * the coupling add-on's run overhead on a real app campaign,
//  * analyzer throughput microbenchmark (it rescans the whole tree).
//
// Everything is also emitted as BENCH_static.json for machine consumption.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/analysis/static_prior.h"
#include "src/analysis/summary_cache.h"
#include "src/testkit/ground_truth.h"

namespace zebra {
namespace {

const analysis::StaticPriorReport& Prior() {
  static const auto* kPrior = [] {
    analysis::StaticAnalyzer analyzer;
    analyzer.AddTree(ZEBRALINT_SOURCE_ROOT);
    return new analysis::StaticPriorReport(analyzer.Analyze(&FullSchema()));
  }();
  return *kPrior;
}

template <typename Fn>
double TimeMs(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

CampaignReport RunApp(const std::string& app,
                      const analysis::StaticPriorReport* prior,
                      uint64_t shuffle_seed, bool pooling,
                      bool coupling = true) {
  CampaignOptions options;
  options.apps = {app};
  options.enable_pooling = pooling;
  options.static_prior = prior;
  options.shuffle_order_seed = shuffle_seed;
  options.enable_coupling_plans = coupling;
  Campaign campaign(FullSchema(), FullCorpus(), options);
  return campaign.Run();
}

// ---------------------------------------------------------------------------
// Static pruning stage (Table 5 extension).

struct StageRow {
  std::string app;
  int64_t original = 0;
  int64_t after_static = 0;
  int64_t after_prerun = 0;
};

std::vector<StageRow> CollectStageRows() {
  std::vector<StageRow> rows;
  for (const std::string& app : PaperAppOrder()) {
    CampaignReport report = RunApp(app, &Prior(), 0, /*pooling=*/true);
    const AppStageCounts& counts = report.per_app.at(app);
    rows.push_back({app, counts.original, counts.after_static,
                    counts.after_prerun});
  }
  return rows;
}

void PrintStaticStage(const std::vector<StageRow>& rows) {
  PrintHeader(
      "zebralint — static pruning stage (inserted before Table 5's pre-run)");
  std::printf("%-28s%14s%14s%14s%10s\n", "", "original", "after_static",
              "after_prerun", "pruned%");
  PrintRule('-', 80);
  for (const StageRow& row : rows) {
    double pct = row.original > 0
                     ? 100.0 *
                           static_cast<double>(row.original - row.after_static) /
                           static_cast<double>(row.original)
                     : 0.0;
    std::printf("%-28s%14s%14s%14s%9.2f%%\n", PaperName(row.app).c_str(),
                WithCommas(row.original).c_str(),
                WithCommas(row.after_static).c_str(),
                WithCommas(row.after_prerun).c_str(), pct);
  }
  std::printf(
      "\nNever-read schema parameters pruned statically: %zu "
      "(zero dynamic cost: the pre-run\nwould also drop them, but only after "
      "enumerating their instances).\n",
      Prior().never_read.size());
}

// ---------------------------------------------------------------------------
// Prioritization: wire-tainted-first versus seeded shuffles.

struct PrioritizationResult {
  int64_t prioritized_runs = 0;
  std::string prioritized_first;
  bool prioritized_true_positive = false;
  std::vector<int64_t> shuffle_runs;  // one per seed
  double shuffle_mean = 0.0;
};

PrioritizationResult CollectPrioritization() {
  PrioritizationResult result;
  CampaignReport prioritized =
      RunApp("minidfs", &Prior(), 0, /*pooling=*/false);
  result.prioritized_runs = prioritized.runs_to_first_detection;
  result.prioritized_first = prioritized.first_detection_param;
  result.prioritized_true_positive =
      IsExpectedUnsafe(prioritized.first_detection_param);

  int64_t total = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    CampaignReport baseline =
        RunApp("minidfs", nullptr, seed, /*pooling=*/false);
    result.shuffle_runs.push_back(baseline.runs_to_first_detection);
    total += baseline.runs_to_first_detection;
  }
  result.shuffle_mean =
      static_cast<double>(total) / static_cast<double>(result.shuffle_runs.size());
  return result;
}

void PrintPrioritization(const PrioritizationResult& result) {
  PrintHeader(
      "zebralint — wire-tainted-first ordering: unit-test runs to the first "
      "true detection");
  std::printf(
      "minidfs, individual verification (pooling shares one run across all\n"
      "parameters, so ordering only matters for the unpooled verifier):\n\n");
  std::printf("  prioritized (static prior):     %6s runs  (first: %s%s)\n",
              WithCommas(result.prioritized_runs).c_str(),
              result.prioritized_first.c_str(),
              result.prioritized_true_positive ? ", true positive" : "");
  for (size_t i = 0; i < result.shuffle_runs.size(); ++i) {
    std::printf("  unprioritized shuffle seed %zu:  %6s runs\n", i + 1,
                WithCommas(result.shuffle_runs[i]).c_str());
  }
  std::printf(
      "\n  unprioritized mean: %.1f runs -> prioritized saves %.1f runs "
      "(%.1f%%)\n",
      result.shuffle_mean,
      result.shuffle_mean - static_cast<double>(result.prioritized_runs),
      100.0 *
          (result.shuffle_mean - static_cast<double>(result.prioritized_runs)) /
          result.shuffle_mean);
}

// ---------------------------------------------------------------------------
// Incremental analysis: cold scan versus warm summary cache with one TU
// touched. The touched TU keeps its declarations (same tables) and varies
// only a statement body, mirroring the common edit during a lint-fix loop.

struct IncrementalResult {
  int tus_total = 0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double speedup = 0.0;
  int warm_tus_parsed = 0;
  int warm_tus_from_cache = 0;
  bool table_hash_invalidated = false;
};

std::string TouchedTu(int revision) {
  std::string body = "\nnamespace zebra {\n\nvoid BenchTouch::Spin() {\n";
  body += "  int spins = " + std::to_string(1000 + revision) + ";\n";
  body += "  spins_ = spins;\n}\n\n}  // namespace zebra\n";
  return body;
}

void AddBenchTree(analysis::StaticAnalyzer* analyzer, int revision) {
  analyzer->AddTree(ZEBRALINT_SOURCE_ROOT);
  analyzer->AddSource("src/apps/minidfs/bench_touch.cc", TouchedTu(revision));
}

IncrementalResult MeasureIncremental() {
  IncrementalResult result;

  // Cold: full lex + extract of every TU. Best of three.
  result.cold_ms = 1e18;
  for (int i = 0; i < 3; ++i) {
    analysis::StaticAnalyzer cold;
    AddBenchTree(&cold, /*revision=*/0);
    double ms = TimeMs([&] {
      analysis::StaticPriorReport report = cold.Analyze(&FullSchema());
      benchmark::DoNotOptimize(report.params.size());
    });
    result.cold_ms = std::min(result.cold_ms, ms);
    result.tus_total = cold.stats().tus_total;
  }

  // Seed the cache with revision 0 of the touched TU, then time warm runs
  // where only that TU's body changed (a fresh revision each iteration so
  // exactly one TU misses the cache every time).
  analysis::SummaryCache cache;
  {
    analysis::StaticAnalyzer seed;
    AddBenchTree(&seed, /*revision=*/0);
    seed.UseSummaryCache(&cache);
    seed.Analyze(&FullSchema());
  }
  result.warm_ms = 1e18;
  for (int revision = 1; revision <= 5; ++revision) {
    analysis::StaticAnalyzer warm;
    AddBenchTree(&warm, revision);
    warm.UseSummaryCache(&cache);
    double ms = TimeMs([&] {
      analysis::StaticPriorReport report = warm.Analyze(&FullSchema());
      benchmark::DoNotOptimize(report.params.size());
    });
    result.warm_ms = std::min(result.warm_ms, ms);
    result.warm_tus_parsed = warm.stats().tus_parsed;
    result.warm_tus_from_cache = warm.stats().tus_from_cache;
    result.table_hash_invalidated = warm.stats().table_hash_invalidated;
  }
  result.speedup = result.warm_ms > 0.0 ? result.cold_ms / result.warm_ms : 0.0;
  return result;
}

void PrintIncremental(const IncrementalResult& result) {
  PrintHeader(
      "zebralint — incremental re-analysis (summary cache, one TU touched)");
  std::printf("  tree size:             %d TUs\n", result.tus_total);
  std::printf("  cold analysis:         %8.2f ms  (every TU parsed)\n",
              result.cold_ms);
  std::printf(
      "  incremental analysis:  %8.2f ms  (%d TU parsed, %d from cache%s)\n",
      result.warm_ms, result.warm_tus_parsed, result.warm_tus_from_cache,
      result.table_hash_invalidated ? ", TABLE HASH INVALIDATED" : "");
  std::printf("  speedup:               %8.1fx  (target: >= 10x)%s\n",
              result.speedup, result.speedup >= 10.0 ? "" : "  ** BELOW TARGET **");
}

// ---------------------------------------------------------------------------
// Coupling add-on overhead: the pairwise combination phase on a real app.

struct CouplingResult {
  double baseline_ms = 0.0;
  double coupled_ms = 0.0;
  int64_t coupling_runs = 0;
  int64_t coupling_confirmations = 0;
  int64_t baseline_executed = 0;
  int64_t coupled_executed = 0;
  size_t baseline_findings = 0;
  size_t coupled_findings = 0;
};

CouplingResult MeasureCoupling() {
  CouplingResult result;
  CampaignReport baseline;
  result.baseline_ms = TimeMs([&] {
    baseline = RunApp("minikv", &Prior(), 0, /*pooling=*/true,
                      /*coupling=*/false);
  });
  CampaignReport coupled;
  result.coupled_ms = TimeMs([&] {
    coupled = RunApp("minikv", &Prior(), 0, /*pooling=*/true,
                     /*coupling=*/true);
  });
  result.coupling_runs = coupled.coupling_runs;
  result.coupling_confirmations = coupled.coupling_confirmations;
  result.baseline_executed = baseline.TotalExecuted();
  result.coupled_executed = coupled.TotalExecuted();
  result.baseline_findings = baseline.findings.size();
  result.coupled_findings = coupled.findings.size();
  return result;
}

void PrintCoupling(const CouplingResult& result) {
  PrintHeader("zebralint — coupling add-on overhead (minikv, pooled)");
  std::printf("  coupling sets in prior:   %zu\n", Prior().coupling_sets.size());
  std::printf("  baseline (add-on off):    %6s runs  %8.2f ms  %zu findings\n",
              WithCommas(result.baseline_executed).c_str(), result.baseline_ms,
              result.baseline_findings);
  std::printf("  with coupling add-on:     %6s runs  %8.2f ms  %zu findings\n",
              WithCommas(result.coupled_executed).c_str(), result.coupled_ms,
              result.coupled_findings);
  std::printf(
      "  add-on cost:              %6s extra runs, %lld coupled "
      "confirmations\n",
      WithCommas(result.coupling_runs).c_str(),
      static_cast<long long>(result.coupling_confirmations));
}

// ---------------------------------------------------------------------------
// Machine-readable artifact.

void WriteArtifact(const std::vector<StageRow>& rows,
                   const PrioritizationResult& prioritization,
                   const IncrementalResult& incremental,
                   const CouplingResult& coupling) {
  WriteBenchJson("BENCH_static.json", [&](JsonWriter& json) {
    json.BeginArray("static_stage");
    for (const StageRow& row : rows) {
      json.BeginObject();
      json.Field("app", row.app);
      json.Field("original", row.original);
      json.Field("after_static", row.after_static);
      json.Field("after_prerun", row.after_prerun);
      json.EndObject();
    }
    json.EndArray();
    json.Field("never_read_pruned",
               static_cast<int64_t>(Prior().never_read.size()));

    json.BeginObject("prioritization");
    json.Field("prioritized_runs_to_first_detection",
               prioritization.prioritized_runs);
    json.Field("prioritized_first_param", prioritization.prioritized_first);
    json.Field("prioritized_first_is_true_positive",
               prioritization.prioritized_true_positive);
    json.Field("unprioritized_mean_runs", prioritization.shuffle_mean, 1);
    json.EndObject();

    json.BeginObject("incremental");
    json.Field("tus_total", incremental.tus_total);
    json.Field("cold_ms", incremental.cold_ms, 3);
    json.Field("incremental_ms", incremental.warm_ms, 3);
    json.Field("speedup", incremental.speedup, 1);
    json.Field("tus_parsed", incremental.warm_tus_parsed);
    json.Field("tus_from_cache", incremental.warm_tus_from_cache);
    json.Field("table_hash_invalidated", incremental.table_hash_invalidated);
    json.Field("meets_10x_target", incremental.speedup >= 10.0);
    json.EndObject();

    json.BeginObject("coupling");
    json.Field("coupling_sets", static_cast<int64_t>(Prior().coupling_sets.size()));
    json.Field("baseline_runs", coupling.baseline_executed);
    json.Field("coupled_runs_total", coupling.coupled_executed);
    json.Field("coupling_runs", coupling.coupling_runs);
    json.Field("coupling_confirmations", coupling.coupling_confirmations);
    json.Field("baseline_findings",
               static_cast<int64_t>(coupling.baseline_findings));
    json.Field("coupled_findings",
               static_cast<int64_t>(coupling.coupled_findings));
    json.Field("baseline_ms", coupling.baseline_ms, 3);
    json.Field("coupled_ms", coupling.coupled_ms, 3);
    json.EndObject();
  });
}

void BM_SelfScan(benchmark::State& state) {
  for (auto _ : state) {
    analysis::StaticAnalyzer analyzer;
    analyzer.AddTree(ZEBRALINT_SOURCE_ROOT);
    analysis::StaticPriorReport report = analyzer.Analyze(&FullSchema());
    benchmark::DoNotOptimize(report.params.size());
  }
}
BENCHMARK(BM_SelfScan)->Unit(benchmark::kMillisecond);

void BM_IncrementalScan(benchmark::State& state) {
  analysis::SummaryCache cache;
  {
    analysis::StaticAnalyzer seed;
    AddBenchTree(&seed, 0);
    seed.UseSummaryCache(&cache);
    seed.Analyze(&FullSchema());
  }
  int revision = 0;
  for (auto _ : state) {
    ++revision;
    analysis::StaticAnalyzer warm;
    AddBenchTree(&warm, revision);
    warm.UseSummaryCache(&cache);
    analysis::StaticPriorReport report = warm.Analyze(&FullSchema());
    benchmark::DoNotOptimize(report.params.size());
  }
}
BENCHMARK(BM_IncrementalScan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  std::vector<zebra::StageRow> rows = zebra::CollectStageRows();
  zebra::PrintStaticStage(rows);
  zebra::PrioritizationResult prioritization = zebra::CollectPrioritization();
  zebra::PrintPrioritization(prioritization);
  zebra::IncrementalResult incremental = zebra::MeasureIncremental();
  zebra::PrintIncremental(incremental);
  zebra::CouplingResult coupling = zebra::MeasureCoupling();
  zebra::PrintCoupling(coupling);
  zebra::WriteArtifact(rows, prioritization, incremental, coupling);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
