// Regenerates Table 3 — the heterogeneous-unsafe configuration parameters
// found — by running the full ZebraConf pipeline over all six applications,
// then scoring the report against the seeded ground truth.
//
// The paper reports 57 parameters of which manual analysis confirmed 41 true
// problems; our seeded ground truth mirrors those 41 one-for-one, so the
// pipeline is expected to rediscover all of them plus the seeded
// false-positive sources.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/fleet_model.h"
#include "src/testkit/ground_truth.h"

namespace zebra {
namespace {

void PrintTable3() {
  CampaignReport report = RunFullCampaign();

  PrintHeader("Table 3 — Heterogeneous-unsafe configuration parameters found");
  std::printf("%-62s %s\n", "Parameter", "Why (ground truth / witness)");
  PrintRule();

  int true_positives = 0;
  int false_positives = 0;
  std::string current_app;
  for (const char* app : {"ministream", "appcommon", "minikv", "minidfs",
                          "minimr", "miniyarn"}) {
    bool printed_app = false;
    for (const auto& [param, finding] : report.findings) {
      if (finding.owning_app != app) {
        continue;
      }
      if (!printed_app) {
        std::printf("-- %s\n", PaperName(app).c_str());
        printed_app = true;
      }
      auto truth = ExpectedUnsafeParams().find(param);
      auto probabilistic = ProbabilisticUnsafeParams().find(param);
      if (truth != ExpectedUnsafeParams().end()) {
        ++true_positives;
        std::printf("%-62s %s\n", param.c_str(), truth->second.c_str());
      } else if (probabilistic != ProbabilisticUnsafeParams().end()) {
        std::printf("%-62s EXTENSION (probabilistic): %s\n", param.c_str(),
                    probabilistic->second.c_str());
      } else {
        ++false_positives;
        auto fp = KnownFalsePositiveSources().find(param);
        std::printf("%-62s FALSE POSITIVE: %s\n", param.c_str(),
                    fp != KnownFalsePositiveSources().end() ? fp->second.c_str()
                                                            : finding.example_failure.c_str());
      }
    }
  }
  PrintRule();

  int false_negatives = 0;
  for (const auto& [param, why] : ExpectedUnsafeParams()) {
    if (report.findings.count(param) == 0) {
      ++false_negatives;
      std::printf("MISSED (false negative): %-50s %s\n", param.c_str(), why.c_str());
    }
  }

  std::printf("\nSummary\n");
  std::printf("  reported parameters:          %zu   (paper: 57 reported)\n",
              report.findings.size());
  std::printf("  true heterogeneous-unsafe:    %d   (paper: 41 true problems)\n",
              true_positives);
  std::printf("  false positives:              %d   (paper: 16, from unrealistic\n"
              "                                     settings / shared objects /\n"
              "                                     overly strict assertions)\n",
              false_positives);
  std::printf("  false negatives:              %d   (seeded-unsafe parameters the\n"
              "                                     pipeline failed to rediscover)\n",
              false_negatives);
  std::printf("  unit-test executions:         %s\n",
              WithCommas(report.total_unit_test_runs).c_str());
  std::printf("  wall-clock time:              %.2f s (single machine, sequential)\n",
              report.wall_seconds);

  // Fleet cost model: what this campaign would cost on the paper's testbed
  // (up to 100 machines x 20 Docker containers; paper: 4,652 machine-hours).
  FleetEstimate fleet = EstimateFleet(report.run_durations_seconds, 100, 20);
  std::printf("  fleet model (100 x 20 slots): makespan %.4f s, %.2f machine-seconds,\n"
              "                                utilization %.1f%% — the instances are\n"
              "                                embarrassingly parallel, as in the paper\n\n",
              fleet.makespan_seconds, fleet.machine_seconds,
              100.0 * fleet.utilization);

  std::printf("Witness examples (one per category):\n");
  int shown = 0;
  for (const auto& [param, finding] : report.findings) {
    if (shown >= 6) {
      break;
    }
    std::printf("  %s\n      test: %s\n      failure: %.120s\n", param.c_str(),
                finding.witness_tests.begin()->c_str(),
                finding.example_failure.c_str());
    ++shown;
  }
  std::printf("\n");
}

void BM_FullCampaign(benchmark::State& state) {
  for (auto _ : state) {
    CampaignReport report = RunFullCampaign();
    benchmark::DoNotOptimize(report.findings.size());
    state.counters["unit_test_runs"] =
        static_cast<double>(report.total_unit_test_runs);
    state.counters["findings"] = static_cast<double>(report.findings.size());
  }
}
BENCHMARK(BM_FullCampaign)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintTable3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
