// Regenerates the §6.1 measurement: configuration-object sharing occurs in
// 99.9%, 99.8%, 96.5%, 100%, and 88.5% of the unit tests that involve
// configuration usage (Flink, HBase, HDFS, MapReduce, YARN).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/testkit/test_execution.h"

namespace zebra {
namespace {

void PrintSharingReport() {
  PrintHeader("§6.1 — Configuration-object sharing prevalence");
  std::printf("%-26s %14s %14s %10s   %s\n", "Application", "w/ conf usage",
              "w/ sharing", "share", "(paper)");
  PrintRule();

  const char* paper_pct[] = {"99.9%", "-", "99.8%", "96.5%", "100%", "88.5%"};
  int index = 0;
  for (const std::string& app : PaperAppOrder()) {
    int with_usage = 0;
    int with_sharing = 0;
    for (const UnitTestDef* test : FullCorpus().ForApp(app)) {
      TestResult result = RunUnitTest(*test, TestPlan{}, 0);
      if (result.report.any_conf_usage) {
        ++with_usage;
        if (result.report.conf_sharing_detected) {
          ++with_sharing;
        }
      }
    }
    double pct = with_usage > 0 ? 100.0 * with_sharing / with_usage : 0.0;
    std::printf("%-26s %14d %14d %9.1f%%   (%s)\n", PaperName(app).c_str(),
                with_usage, with_sharing, pct, paper_pct[index]);
    ++index;
  }
  PrintRule();
  std::printf(
      "\nSharing = a unit-test-owned Configuration object handed into at least one\n"
      "node initialization function (Rule 2 fired). Tests without sharing are the\n"
      "pure function-level tests that create a conf only for themselves — exactly\n"
      "the pattern that keeps the paper's percentages below 100%%.\n\n");
}

void BM_SessionOverhead(benchmark::State& state) {
  const UnitTestDef* test = FullCorpus().Find("minikv.TestPutGet");
  for (auto _ : state) {
    TestResult result = RunUnitTest(*test, TestPlan{}, 0);
    benchmark::DoNotOptimize(result.passed);
  }
}
BENCHMARK(BM_SessionOverhead)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintSharingReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
