// Regenerates Table 5 — the number of test instances after each successively
// applied technique — for every application, and reports the uncertainty
// exclusion fractions of §6.2.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace zebra {
namespace {

void PrintTable5() {
  CampaignReport report = RunFullCampaign();

  PrintHeader("Table 5 — Test instances after successively applied methods");
  std::printf("%-28s", "");
  for (const std::string& app : PaperAppOrder()) {
    std::printf("%12s", app.c_str());
  }
  std::printf("\n");
  PrintRule('-', 28 + 12 * static_cast<int>(PaperAppOrder().size()));

  auto row = [&](const char* label, int64_t AppStageCounts::*field) {
    std::printf("%-28s", label);
    for (const std::string& app : PaperAppOrder()) {
      std::printf("%12s", WithCommas(report.per_app.at(app).*field).c_str());
    }
    std::printf("\n");
  };
  row("Original", &AppStageCounts::original);
  row("After pre-running tests", &AppStageCounts::after_prerun);
  row("After removing uncertainty", &AppStageCounts::after_uncertainty);
  row("Executed (pooled testing)", &AppStageCounts::executed_runs);
  PrintRule('-', 28 + 12 * static_cast<int>(PaperAppOrder().size()));

  std::printf("%-28s", "Reduction vs original");
  for (const std::string& app : PaperAppOrder()) {
    const AppStageCounts& counts = report.per_app.at(app);
    double factor = counts.executed_runs > 0
                        ? static_cast<double>(counts.original) /
                              static_cast<double>(counts.executed_runs)
                        : 0.0;
    std::printf("%11.0fx", factor);
  }
  std::printf("\n\n");

  std::printf("Uncertainty exclusion (instances dropped because a parameter was read\n"
              "through an unmappable configuration object, §6.2; paper: <5%% for four\n"
              "applications, ~10%% for one):\n");
  for (const std::string& app : PaperAppOrder()) {
    const AppStageCounts& counts = report.per_app.at(app);
    double pct = counts.after_prerun > 0
                     ? 100.0 *
                           static_cast<double>(counts.after_prerun -
                                               counts.after_uncertainty) /
                           static_cast<double>(counts.after_prerun)
                     : 0.0;
    std::printf("  %-12s %6.2f%%\n", app.c_str(), pct);
  }

  std::printf("\nTotals: original %s -> pre-run %s -> uncertainty %s -> executed %s\n",
              WithCommas(report.TotalOriginal()).c_str(),
              WithCommas(report.TotalAfterPrerun()).c_str(),
              WithCommas(report.TotalAfterUncertainty()).c_str(),
              WithCommas(report.TotalExecuted()).c_str());
  std::printf(
      "Paper totals: 9.5e9 -> 2.0e7 -> 1.97e7 -> 4.2e6 (two to four orders of\n"
      "magnitude); our corpus shows the same staged collapse at miniature scale.\n"
      "Executed runs include pooled runs, bisections, homogeneous controls and\n"
      "hypothesis-testing trials. Wall-clock: %.2f s sequential (%s runs).\n",
      report.wall_seconds, WithCommas(report.total_unit_test_runs).c_str());

  // What skipping the techniques would cost: every original instance needs a
  // hetero run plus ~2 homogeneous controls, at the measured mean run time.
  if (!report.run_durations_seconds.empty()) {
    double total_seconds = 0;
    for (double duration : report.run_durations_seconds) {
      total_seconds += duration;
    }
    double mean_run = total_seconds / static_cast<double>(
                                          report.run_durations_seconds.size());
    double naive_seconds = static_cast<double>(report.TotalOriginal()) * 3 * mean_run;
    std::printf(
        "Counterfactual: executing the original instance set naively (x3 for the\n"
        "homogeneous controls) at the measured %.2f ms mean run time would take\n"
        "~%.0f s sequential vs the pipeline's %.2f s — a %.0fx end-to-end saving.\n\n",
        mean_run * 1000.0, naive_seconds, report.wall_seconds,
        report.wall_seconds > 0 ? naive_seconds / report.wall_seconds : 0.0);
  }
}

void BM_GenerateInstances(benchmark::State& state) {
  TestGenerator generator(FullSchema(), FullCorpus());
  int64_t executions = 0;
  auto records = generator.PreRunApp("minidfs", &executions);
  for (auto _ : state) {
    int64_t total = 0;
    for (const PreRunRecord& record : records) {
      int64_t before = 0;
      auto instances = generator.Generate(record, &before);
      total += static_cast<int64_t>(instances.size());
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_GenerateInstances)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintTable5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
