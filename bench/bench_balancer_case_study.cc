// Regenerates the §7.1 dfs.datanode.balance.max.concurrent.moves case study:
// average balancing times of 14 s for (DataNode:50, Balancer:50), 16.7 s for
// (1,1), and 154 s for (1,50) — the ~10x congestion collapse caused by the
// Balancer's 1100 ms backoff after each declined dispatch.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/apps/minidfs/balancer.h"
#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"

namespace zebra {
namespace {

struct CaseResult {
  int64_t elapsed_ms = 0;
  int declines = 0;
  bool timed_out = false;
};

CaseResult RunCase(int64_t dn_moves, int64_t balancer_moves, int64_t timeout_ms) {
  Cluster cluster;
  Configuration nn_conf;
  NameNode nn(&cluster, nn_conf);
  Configuration dn_conf;
  dn_conf.SetInt(kDfsBalanceMaxMoves, dn_moves);
  DataNode dn(&cluster, &nn, dn_conf);
  Configuration bal_conf;
  bal_conf.SetInt(kDfsBalanceMaxMoves, balancer_moves);
  Balancer balancer(&cluster, &nn, bal_conf);

  CaseResult result;
  try {
    BalanceResult run = balancer.RunMoves(&dn, 150, timeout_ms);
    result.elapsed_ms = run.elapsed_ms;
    result.declines = run.declined_dispatches;
  } catch (const TimeoutError&) {
    result.timed_out = true;
    result.elapsed_ms = timeout_ms;
  }
  return result;
}

void PrintCaseStudy() {
  PrintHeader(
      "§7.1 case study — dfs.datanode.balance.max.concurrent.moves (150 moves)");
  std::printf("%-28s %16s %12s %16s\n", "(DataNode, Balancer)", "balancing time",
              "declines", "100 s unit test");
  PrintRule();

  struct Config {
    int64_t dn, bal;
    const char* paper;
  };
  for (const Config& config :
       {Config{50, 50, "14 s"}, Config{1, 1, "16.7 s"}, Config{1, 50, "154 s"}}) {
    CaseResult with_budget = RunCase(config.dn, config.bal, 1000000);
    CaseResult under_test = RunCase(config.dn, config.bal, 100000);
    std::printf("(DataNode:%-3lld Balancer:%-3lld) %13.1f s %12d %16s   (paper: %s)\n",
                static_cast<long long>(config.dn), static_cast<long long>(config.bal),
                with_budget.elapsed_ms / 1000.0, with_budget.declines,
                under_test.timed_out ? "TIMEOUT" : "passes", config.paper);
  }
  PrintRule();

  CaseResult low = RunCase(1, 1, 1000000);
  CaseResult mismatched = RunCase(1, 50, 1000000);
  std::printf(
      "\nSlowdown of (1,50) over (1,1): %.1fx   (paper: 154/16.7 = 9.2x)\n"
      "Mechanism: the Balancer, unaware of the 1-thread capacity, floods the\n"
      "DataNode; every declined request makes that dispatcher sleep 1100 ms before\n"
      "retrying, while the move itself takes ~110 ms.\n"
      "Proposed fix (§7.1): the Balancer should fetch the per-DataNode value and\n"
      "size its dispatch accordingly (HDFS-7466).\n\n",
      static_cast<double>(mismatched.elapsed_ms) / static_cast<double>(low.elapsed_ms));
}

void BM_BalancerRun(benchmark::State& state) {
  const int64_t dn_moves = state.range(0);
  const int64_t bal_moves = state.range(1);
  for (auto _ : state) {
    CaseResult result = RunCase(dn_moves, bal_moves, 1000000);
    benchmark::DoNotOptimize(result.elapsed_ms);
    state.counters["virtual_ms"] = static_cast<double>(result.elapsed_ms);
  }
}
BENCHMARK(BM_BalancerRun)
    ->Args({50, 50})
    ->Args({1, 1})
    ->Args({1, 50})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintCaseStudy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
