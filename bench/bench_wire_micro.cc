// Microbenchmarks of the wire layer: frame encode/decode across
// configurations, checksum throughput, codec throughput. These quantify the
// per-operation cost behind the campaign's unit-test executions.

#include <benchmark/benchmark.h>

#include "src/common/bytes.h"
#include "src/sim/wire.h"

namespace zebra {
namespace {

Bytes MakePayload(size_t size) {
  Bytes payload(size);
  for (size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  return payload;
}

void BM_EncodeFrame(benchmark::State& state) {
  WireConfig config;
  config.encrypt = state.range(1) != 0;
  config.compression = state.range(2) != 0 ? "rle" : "none";
  Bytes payload = MakePayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeFrame(config, payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EncodeFrame)
    ->Args({1024, 0, 0})
    ->Args({1024, 1, 0})
    ->Args({1024, 0, 1})
    ->Args({65536, 0, 0})
    ->Args({65536, 1, 1});

void BM_DecodeFrame(benchmark::State& state) {
  WireConfig config;
  config.encrypt = state.range(1) != 0;
  Bytes frame = EncodeFrame(config, MakePayload(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeFrame(config, frame));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DecodeFrame)->Args({1024, 0})->Args({65536, 0})->Args({65536, 1});

void BM_Crc32(benchmark::State& state) {
  Bytes payload = MakePayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(payload.data(), payload.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(512)->Arg(65536);

void BM_Crc32c(benchmark::State& state) {
  Bytes payload = MakePayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(payload.data(), payload.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(512)->Arg(65536);

void BM_RleCompress(benchmark::State& state) {
  Bytes payload(static_cast<size_t>(state.range(0)), 0x42);  // compressible
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompressPayload("rle", payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_RleCompress)->Arg(1024)->Arg(65536);

void BM_EncryptPayload(benchmark::State& state) {
  Bytes payload = MakePayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncryptPayload(payload, kClusterDataKey));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EncryptPayload)->Arg(1024)->Arg(65536);

}  // namespace
}  // namespace zebra

BENCHMARK_MAIN();
