// "Test in parallel" (§4): test instances are independent, so the paper runs
// them across 100 machines x 20 containers. This bench runs the full
// campaign sharded over worker *processes* (each the analog of a container)
// and reports the wall-clock scaling, plus the fleet-model extrapolation.

#include <chrono>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/fleet_model.h"
#include "src/core/sharded_campaign.h"

namespace zebra {
namespace {

double TimeShardedRun(int workers, CampaignReport* out) {
  CampaignOptions options;  // all apps
  auto start = std::chrono::steady_clock::now();
  CampaignReport report =
      RunShardedCampaign(FullSchema(), FullCorpus(), options, workers);
  double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 start)
                       .count();
  if (out != nullptr) {
    *out = std::move(report);
  }
  return seconds;
}

void PrintScaling() {
  PrintHeader("§4 — Test in parallel (worker processes as container analogs)");
  std::printf("%10s %16s %12s %12s\n", "workers", "wall-clock", "speedup", "findings");
  PrintRule('-', 56);
  double baseline = 0;
  for (int workers : {1, 2, 3, 6}) {
    CampaignReport report;
    double seconds = TimeShardedRun(workers, &report);
    if (workers == 1) {
      baseline = seconds;
    }
    std::printf("%10d %14.3f s %11.2fx %12zu\n", workers, seconds,
                baseline > 0 ? baseline / seconds : 1.0, report.findings.size());
  }
  PrintRule('-', 56);

  CampaignReport report;
  TimeShardedRun(1, &report);
  FleetEstimate fleet = EstimateFleet(report.run_durations_seconds, 100, 20);
  std::printf(
      "\nTwo honest observations, both consistent with the paper:\n"
      "  1. Isolation is lossless: every worker count yields identical findings\n"
      "     and counts (see tests/sharded_campaign_test.cc) — the property that\n"
      "     makes the paper's container fan-out sound.\n"
      "  2. At this miniature scale (~0.1 s of total work) fork+merge overhead\n"
      "     eats the speedup, and the largest shard (minidfs, ~70%% of the work)\n"
      "     bounds it anyway. The paper's workload is ~10^8x larger per the same\n"
      "     structure, which is precisely why it parallelizes across 100 x 20\n"
      "     containers; the per-run fleet model puts our %s measured runs\n"
      "     (%.3f CPU-seconds) at a %.4f s makespan on that fleet shape.\n\n",
      WithCommas(fleet.runs).c_str(), fleet.total_cpu_seconds,
      fleet.makespan_seconds);
}

void BM_ShardedCampaign(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CampaignOptions options;
    CampaignReport report =
        RunShardedCampaign(FullSchema(), FullCorpus(), options, workers);
    benchmark::DoNotOptimize(report.findings.size());
  }
}
BENCHMARK(BM_ShardedCampaign)->Arg(1)->Arg(3)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
