// "Test in parallel" (§4): test instances are independent, so the paper runs
// them across 100 machines x 20 containers. This bench compares the three
// single-machine parallelization strategies on the full campaign:
//
//   sharded   — static per-app sharding (sharded_campaign.h): hard-capped by
//               the largest shard (minidfs alone is ~70% of the work),
//   stealing  — work-stealing (app, unit-test) scheduler
//               (parallel_scheduler.h): capped by the largest *unit*,
//   stealing+cache — same, with the memoized run cache serving repeated
//               bisection probes and homogeneous controls without executing.
//
// Two cost regimes are measured:
//
//   native     — runs cost microseconds of pure CPU. At this scale (and on a
//                single-core CI box) fork/IPC overhead dominates and no
//                scheduler can win; the numbers are reported for honesty.
//   paper-cost — each real execution carries the configured synthetic harness
//                latency (SetSyntheticRunLatencyUs), restoring the paper's
//                cost shape where runs are wait-dominated, seconds-long
//                JUnit invocations. Worker processes overlap waits even on
//                one CPU — exactly how the paper's containers overlap
//                I/O-bound runs — so this regime shows true scheduling
//                quality: static sharding flattens at its largest shard
//                while work-stealing keeps scaling, and the run cache
//                removes executions outright.
//
// Every row yields bitwise-identical findings (enforced by
// tests/parallel_scheduler_test.cc); only wall-clock differs. Results are
// printed and emitted machine-readable to BENCH_parallel.json.

#include <chrono>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/fleet_model.h"
#include "src/core/parallel_scheduler.h"
#include "src/core/sharded_campaign.h"
#include "src/testkit/test_execution.h"

namespace zebra {
namespace {

constexpr int64_t kPaperCostLatencyUs = 500;

enum class Mode { kSequential, kSharded, kStealing, kStealingCache };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kSequential:
      return "sequential";
    case Mode::kSharded:
      return "sharded";
    case Mode::kStealing:
      return "stealing";
    case Mode::kStealingCache:
      return "stealing+cache";
  }
  return "?";
}

double TimeRun(Mode mode, int workers, CampaignReport* out) {
  CampaignOptions options;  // all apps
  options.enable_run_cache = mode == Mode::kStealingCache;
  auto start = std::chrono::steady_clock::now();
  CampaignReport report;
  switch (mode) {
    case Mode::kSequential: {
      Campaign campaign(FullSchema(), FullCorpus(), options);
      report = campaign.Run();
      break;
    }
    case Mode::kSharded:
      report = RunShardedCampaign(FullSchema(), FullCorpus(), options, workers);
      break;
    case Mode::kStealing:
    case Mode::kStealingCache:
      report =
          RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, workers);
      break;
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (out != nullptr) {
    *out = std::move(report);
  }
  return seconds;
}

// Best-of-N wall-clock: fork jitter at this miniature scale is comparable to
// the work itself, so the minimum is the honest capacity number.
double BestOf(int repetitions, Mode mode, int workers, CampaignReport* out) {
  double best = 0;
  for (int i = 0; i < repetitions; ++i) {
    double seconds = TimeRun(mode, workers, i == 0 ? out : nullptr);
    if (i == 0 || seconds < best) {
      best = seconds;
    }
  }
  return best;
}

struct Row {
  const char* regime;
  Mode mode;
  int workers;
  double seconds;
  double speedup_vs_sequential;
  size_t findings;
  int64_t cache_hits;
  int64_t cache_misses;
};

// One regime (native or paper-cost): sequential baseline plus all three
// strategies across worker counts. Returns sharded/stealing(+cache)
// wall-clock at six workers through the out-params for the headline
// comparison.
void RunRegime(const char* regime, int repetitions, std::vector<Row>* rows,
               double* sharded_at_6, double* stealing_at_6,
               double* stealing_cache_at_6) {
  CampaignReport sequential_report;
  double sequential_seconds =
      BestOf(repetitions, Mode::kSequential, 1, &sequential_report);
  rows->push_back(Row{regime, Mode::kSequential, 1, sequential_seconds, 1.0,
                      sequential_report.findings.size(), 0, 0});
  std::printf("%s regime — sequential baseline: %.3f s, %zu findings\n\n",
              regime, sequential_seconds, sequential_report.findings.size());

  std::printf("%16s %8s %12s %9s %9s %12s\n", "mode", "workers", "wall-clock",
              "speedup", "findings", "cache h/m");
  PrintRule('-', 72);
  for (Mode mode : {Mode::kSharded, Mode::kStealing, Mode::kStealingCache}) {
    for (int workers : {1, 2, 3, 6}) {
      CampaignReport report;
      double seconds = BestOf(repetitions, mode, workers, &report);
      double speedup = seconds > 0 ? sequential_seconds / seconds : 0.0;
      rows->push_back(Row{regime, mode, workers, seconds, speedup,
                          report.findings.size(), report.cache_hits,
                          report.cache_misses});
      char cache[32] = "-";
      if (report.cache_hits + report.cache_misses > 0) {
        std::snprintf(cache, sizeof(cache), "%lld/%lld",
                      static_cast<long long>(report.cache_hits),
                      static_cast<long long>(report.cache_misses));
      }
      std::printf("%16s %8d %10.3f s %8.2fx %9zu %12s\n", ModeName(mode),
                  workers, seconds, speedup, report.findings.size(), cache);
      if (workers == 6 && mode == Mode::kSharded) {
        *sharded_at_6 = seconds;
      }
      if (workers == 6 && mode == Mode::kStealing) {
        *stealing_at_6 = seconds;
      }
      if (workers == 6 && mode == Mode::kStealingCache) {
        *stealing_cache_at_6 = seconds;
      }
    }
    PrintRule('-', 72);
  }
  std::printf("\n");
}

void WriteJson(const std::vector<Row>& rows, double stealing_improvement,
               double cache_improvement) {
  WriteBenchJson("BENCH_parallel.json", [&](JsonWriter& json) {
    json.Field("paper_cost_latency_us", kPaperCostLatencyUs);
    json.Field("paper_cost_stealing_vs_sharded_at_6_workers",
               stealing_improvement);
    json.Field("paper_cost_stealing_cache_vs_sharded_at_6_workers",
               cache_improvement);
    json.BeginArray("rows");
    for (const Row& row : rows) {
      json.BeginObject();
      json.Field("regime", row.regime);
      json.Field("mode", ModeName(row.mode));
      json.Field("workers", row.workers);
      json.Field("seconds", row.seconds, 6);
      json.Field("speedup_vs_sequential", row.speedup_vs_sequential);
      json.Field("findings", static_cast<uint64_t>(row.findings));
      json.Field("cache_hits", row.cache_hits);
      json.Field("cache_misses", row.cache_misses);
      json.EndObject();
    }
    json.EndArray();
  });
}

void PrintScaling() {
  PrintHeader(
      "§4 — Test in parallel: static sharding vs work-stealing vs +run-cache");

  std::vector<Row> rows;
  double native_sharded_6 = 0;
  double native_stealing_6 = 0;
  double native_cache_6 = 0;
  RunRegime("native", /*repetitions=*/3, &rows, &native_sharded_6,
            &native_stealing_6, &native_cache_6);

  SetSyntheticRunLatencyUs(kPaperCostLatencyUs);
  double paper_sharded_6 = 0;
  double paper_stealing_6 = 0;
  double paper_cache_6 = 0;
  RunRegime("paper-cost", /*repetitions=*/2, &rows, &paper_sharded_6,
            &paper_stealing_6, &paper_cache_6);
  SetSyntheticRunLatencyUs(0);

  double stealing_improvement =
      paper_stealing_6 > 0 ? paper_sharded_6 / paper_stealing_6 : 0.0;
  double cache_improvement =
      paper_cache_6 > 0 ? paper_sharded_6 / paper_cache_6 : 0.0;
  std::printf(
      "paper-cost regime at 6 workers, vs static sharding:\n"
      "  work-stealing alone:      %.2fx\n"
      "  work-stealing + cache:    %.2fx   <- the full scheduler\n"
      "Static sharding is bounded by its largest shard (minidfs, ~70%% of the\n"
      "work); stealing is bounded by the largest single (app, unit-test)\n"
      "unit. Stealing alone pays for exactness: frequent-failure threshold\n"
      "crossings spread across the whole canonical order, so most\n"
      "speculatively-dispatched units are re-run once to match the\n"
      "sequential globally-unsafe set bit-for-bit; the memoized run cache\n"
      "recoups exactly that duplicated work (the repeats are\n"
      "cache-resident), which is why the full scheduler wins decisively. In\n"
      "the native regime (microsecond-scale runs on this single-core box)\n"
      "fork/IPC overhead swamps everything — reported for honesty. Findings\n"
      "are bitwise-identical in every row "
      "(tests/parallel_scheduler_test.cc).\n\n",
      stealing_improvement, cache_improvement);

  CampaignReport sequential_report;
  TimeRun(Mode::kSequential, 1, &sequential_report);
  FleetEstimate fleet =
      EstimateFleet(sequential_report.run_durations_seconds, 100, 20);
  std::printf(
      "Fleet extrapolation: the paper's workload is ~10^8x larger with the\n"
      "same structure; the per-run fleet model puts our %s measured runs\n"
      "(%.3f CPU-seconds) at a %.4f s makespan on the paper's 100x20 fleet.\n\n",
      WithCommas(fleet.runs).c_str(), fleet.total_cpu_seconds,
      fleet.makespan_seconds);

  WriteJson(rows, stealing_improvement, cache_improvement);
}

void BM_ShardedCampaign(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CampaignOptions options;
    CampaignReport report =
        RunShardedCampaign(FullSchema(), FullCorpus(), options, workers);
    benchmark::DoNotOptimize(report.findings.size());
  }
}
BENCHMARK(BM_ShardedCampaign)->Arg(1)->Arg(3)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_WorkStealingCampaign(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CampaignOptions options;
    CampaignReport report =
        RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, workers);
    benchmark::DoNotOptimize(report.findings.size());
  }
}
BENCHMARK(BM_WorkStealingCampaign)
    ->Arg(1)
    ->Arg(3)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_WorkStealingCampaignCached(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CampaignOptions options;
    options.enable_run_cache = true;
    CampaignReport report =
        RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, workers);
    benchmark::DoNotOptimize(report.findings.size());
  }
}
BENCHMARK(BM_WorkStealingCampaignCached)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  zebra::PrintScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
