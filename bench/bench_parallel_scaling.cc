// "Test in parallel" (§4): test instances are independent, so the paper runs
// them across 100 machines x 20 containers. This bench compares the
// single-machine parallelization strategies on the full campaign:
//
//   sharded   — static per-app sharding (sharded_campaign.h): hard-capped by
//               the largest shard (minidfs alone is ~70% of the work),
//   stealing  — forked work-stealing (app, unit-test) scheduler
//               (parallel_scheduler.h): capped by the largest *unit*,
//   stealing+cache — same, with the memoized run cache serving repeated
//               bisection probes and homogeneous controls without executing,
//   threadpool — in-process worker threads (thread_pool_scheduler.h): the
//               same dynamic dispatch as stealing with zero fork/IPC cost —
//               results travel by pointer, not by pipe,
//   threadpool+cache — same, with one shared internally synchronized run
//               cache across all workers (hits propagate cross-worker
//               immediately instead of per-process).
//   distributed(+cache) — the TCP campaign fabric (distributed_campaign.h):
//               N forked agent processes x 1 thread each over the framed
//               wire protocol (v2: pipelined leases, batched dispatch/result
//               frames, snapshot deltas). The delta against threadpool at
//               the same worker count is the whole fabric tax; divided by
//               the v1-equivalent frame count (2 x folded units — kept as
//               the denominator across PRs so the per-frame series stays
//               comparable) it is emitted as the per-frame fabric overhead,
//               and divided into the folded unit count it is emitted as
//               distributed_units_per_sec.
//
// Two cost regimes are measured:
//
//   native     — runs cost microseconds of pure CPU. At this scale fork/IPC
//                overhead dominates the forked schedulers; the thread pool
//                exists to close exactly this gap. True CPU parallelism
//                requires real cores — `hardware_cores` is emitted alongside
//                the numbers, and the CI gate scales its expectation by it
//                (a single-core box cannot speed up CPU-bound work, no
//                matter the scheduler).
//   paper-cost — each real execution carries the configured synthetic harness
//                latency (SetSyntheticRunLatencyUs), restoring the paper's
//                cost shape where runs are wait-dominated, seconds-long
//                JUnit invocations. Workers overlap waits even on one CPU —
//                exactly how the paper's containers overlap I/O-bound runs —
//                so this regime shows scheduling quality on any hardware.
//
// Every row yields bitwise-identical findings (enforced by
// tests/parallel_scheduler_test.cc and tests/thread_pool_scheduler_test.cc);
// only wall-clock differs. Results are printed and emitted machine-readable
// to BENCH_parallel.json.
//
// `--ci-gate` runs a fast subset and exits nonzero unless (a) the thread
// pool's findings serialize bitwise-identically to sequential and (b) its
// native-regime speedup clears min(4.0, 0.75*cores) (0.5 on one core). The
// speedup leg runs at clamp(cores, 2, 6) workers: oversubscribing CPU-bound threads
// measures the kernel scheduler plus speculation re-runs, not the engine, so
// the gate matches thread count to the hardware — 4x at 6 workers on the
// ≥6-core hardware the engine targets, degrading to a "within 2x of
// sequential" sanity bound on a single-core box, where the pool pays
// speculation re-runs with no parallelism to recoup them.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>

#if defined(__GLIBC__)
#include <malloc.h>  // malloc_trim between timed runs
#endif

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/distributed_campaign.h"
#include "src/core/fleet_model.h"
#include "src/core/parallel_scheduler.h"
#include "src/core/report_io.h"
#include "src/core/sharded_campaign.h"
#include "src/core/thread_pool_scheduler.h"
#include "src/testkit/test_execution.h"

namespace zebra {
namespace {

constexpr int64_t kPaperCostLatencyUs = 500;

enum class Mode {
  kSequential,
  kSharded,
  kStealing,
  kStealingCache,
  kThreadPool,
  kThreadPoolCache,
  kDistributed,
  kDistributedCache,
};

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kSequential:
      return "sequential";
    case Mode::kSharded:
      return "sharded";
    case Mode::kStealing:
      return "stealing";
    case Mode::kStealingCache:
      return "stealing+cache";
    case Mode::kThreadPool:
      return "threadpool";
    case Mode::kThreadPoolCache:
      return "threadpool+cache";
    case Mode::kDistributed:
      return "distributed";
    case Mode::kDistributedCache:
      return "distributed+cache";
  }
  return "?";
}

int HardwareCores() {
  unsigned cores = std::thread::hardware_concurrency();
  return cores == 0 ? 1 : static_cast<int>(cores);
}

// The native-regime speedup the thread pool must clear: the 4x design
// target on the ≥6-core hardware the engine is built for, scaling down with
// the core count. On a single core no scheduler can make CPU-bound work
// parallel and speculative dispatch still pays its re-runs, so the floor
// bottoms out at a "within 2x of sequential" sanity bound there.
double CoreScaledSpeedupFloor(int cores) {
  if (cores <= 1) {
    return 0.5;
  }
  return std::min(4.0, 0.75 * cores);
}

double TimeRun(Mode mode, int workers, CampaignReport* out) {
  CampaignOptions options;  // all apps
  options.enable_run_cache = mode == Mode::kStealingCache ||
                             mode == Mode::kThreadPoolCache ||
                             mode == Mode::kDistributedCache;
  auto start = std::chrono::steady_clock::now();
  CampaignReport report;
  switch (mode) {
    case Mode::kSequential: {
      Campaign campaign(FullSchema(), FullCorpus(), options);
      report = campaign.Run();
      break;
    }
    case Mode::kSharded:
      report = RunShardedCampaign(FullSchema(), FullCorpus(), options, workers);
      break;
    case Mode::kStealing:
    case Mode::kStealingCache:
      report =
          RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, workers);
      break;
    case Mode::kThreadPool:
    case Mode::kThreadPoolCache:
      report =
          RunThreadPoolCampaign(FullSchema(), FullCorpus(), options, workers);
      break;
    case Mode::kDistributed:
    case Mode::kDistributedCache: {
      // agents = workers, one thread each: same concurrency as the other
      // rows, so the delta is pure fabric cost (fork + TCP framing + leases).
      DistributedCampaignOptions fabric;
      fabric.agents = workers;
      fabric.agent_threads = 1;
      report = RunDistributedCampaign(FullSchema(), FullCorpus(), options,
                                      fabric);
      break;
    }
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (out != nullptr) {
    *out = std::move(report);
  }
  return seconds;
}

// Best-of-N wall-clock: fork jitter at this miniature scale is comparable to
// the work itself, so the minimum is the honest capacity number.
double BestOf(int repetitions, Mode mode, int workers, CampaignReport* out) {
  double best = 0;
  for (int i = 0; i < repetitions; ++i) {
#if defined(__GLIBC__)
    // Release freed heap pages before each timed run. By the fork-based
    // rows this process has run dozens of campaigns; without the trim
    // every forked child (shard, stealing worker, fabric agent) pays a
    // copy-on-write fault for each reused dirty page — a tax levied by
    // the bench harness's own allocation history, not by the engine
    // under measurement.
    ::malloc_trim(0);
#endif
    double seconds = TimeRun(mode, workers, i == 0 ? out : nullptr);
    if (i == 0 || seconds < best) {
      best = seconds;
    }
  }
  return best;
}

struct Row {
  const char* regime;
  Mode mode;
  int workers;
  double seconds;
  double speedup_vs_sequential;
  size_t findings;
  int64_t cache_hits;
  int64_t cache_misses;
};

// One regime (native or paper-cost): sequential baseline plus every strategy
// across worker counts. Records each strategy's six-worker wall-clock in
// `at_6` for the headline comparisons.
void RunRegime(const char* regime, int repetitions, std::vector<Row>* rows,
               std::map<Mode, double>* at_6, double* sequential_out) {
  CampaignReport sequential_report;
  double sequential_seconds =
      BestOf(repetitions, Mode::kSequential, 1, &sequential_report);
  *sequential_out = sequential_seconds;
  rows->push_back(Row{regime, Mode::kSequential, 1, sequential_seconds, 1.0,
                      sequential_report.findings.size(), 0, 0});
  std::printf("%s regime — sequential baseline: %.3f s, %zu findings\n\n",
              regime, sequential_seconds, sequential_report.findings.size());

  std::printf("%16s %8s %12s %9s %9s %12s\n", "mode", "workers", "wall-clock",
              "speedup", "findings", "cache h/m");
  PrintRule('-', 72);
  for (Mode mode :
       {Mode::kSharded, Mode::kStealing, Mode::kStealingCache,
        Mode::kThreadPool, Mode::kThreadPoolCache, Mode::kDistributed,
        Mode::kDistributedCache}) {
    for (int workers : {1, 2, 3, 6}) {
      CampaignReport report;
      double seconds = BestOf(repetitions, mode, workers, &report);
      double speedup = seconds > 0 ? sequential_seconds / seconds : 0.0;
      rows->push_back(Row{regime, mode, workers, seconds, speedup,
                          report.findings.size(), report.cache_hits,
                          report.cache_misses});
      char cache[32] = "-";
      if (report.cache_hits + report.cache_misses > 0) {
        std::snprintf(cache, sizeof(cache), "%lld/%lld",
                      static_cast<long long>(report.cache_hits),
                      static_cast<long long>(report.cache_misses));
      }
      std::printf("%16s %8d %10.3f s %8.2fx %9zu %12s\n", ModeName(mode),
                  workers, seconds, speedup, report.findings.size(), cache);
      if (workers == 6) {
        (*at_6)[mode] = seconds;
      }
    }
    PrintRule('-', 72);
  }
  std::printf("\n");
}

double Ratio(double numerator, double denominator) {
  return denominator > 0 ? numerator / denominator : 0.0;
}

void WriteJson(const std::vector<Row>& rows,
               const std::map<Mode, double>& native_at_6,
               const std::map<Mode, double>& paper_at_6,
               double native_sequential, double paper_sequential,
               int64_t fabric_frames) {
  const int cores = HardwareCores();
  WriteBenchJson("BENCH_parallel.json", [&](JsonWriter& json) {
    json.Field("paper_cost_latency_us", kPaperCostLatencyUs);
    // True thread parallelism needs real cores; readers of the native-regime
    // numbers must interpret them against this, and the CI gate does.
    json.Field("hardware_cores", cores);
    json.Field("ci_gate_workers", std::clamp(cores, 2, 6));
    json.Field("native_threadpool_speedup_floor",
               CoreScaledSpeedupFloor(cores));
    json.Field("native_threadpool_speedup_at_6_workers",
               Ratio(native_sequential, native_at_6.at(Mode::kThreadPool)));
    json.Field(
        "native_threadpool_vs_stealing_at_6_workers",
        Ratio(native_at_6.at(Mode::kStealing), native_at_6.at(Mode::kThreadPool)));
    json.Field("paper_cost_stealing_vs_sharded_at_6_workers",
               Ratio(paper_at_6.at(Mode::kSharded), paper_at_6.at(Mode::kStealing)));
    json.Field(
        "paper_cost_stealing_cache_vs_sharded_at_6_workers",
        Ratio(paper_at_6.at(Mode::kSharded), paper_at_6.at(Mode::kStealingCache)));
    json.Field("paper_cost_threadpool_speedup_at_6_workers",
               Ratio(paper_sequential, paper_at_6.at(Mode::kThreadPool)));
    json.Field(
        "paper_cost_threadpool_cache_speedup_at_6_workers",
        Ratio(paper_sequential, paper_at_6.at(Mode::kThreadPoolCache)));
    json.Field("paper_cost_distributed_speedup_at_6_agents",
               Ratio(paper_sequential, paper_at_6.at(Mode::kDistributed)));
    json.Field(
        "paper_cost_distributed_cache_speedup_at_6_agents",
        Ratio(paper_sequential, paper_at_6.at(Mode::kDistributedCache)));
    // Fabric tax per wire frame: the native-regime delta against the thread
    // pool at the same concurrency (same dispatch, zero transport cost),
    // spread over the 2-frames-per-folded-unit cost of the v1 protocol. The
    // v2 data plane batches many units per frame, so far fewer frames
    // actually cross the wire — the v1 denominator is kept deliberately so
    // the series stays comparable across PRs (it normalizes the whole
    // fabric tax, fork/exit and lease bookkeeping included, per unit of
    // useful work rather than per literal frame).
    json.Field("native_fabric_frames", fabric_frames);
    json.Field(
        "native_fabric_per_frame_overhead_us",
        fabric_frames > 0
            ? 1e6 *
                  (native_at_6.at(Mode::kDistributed) -
                   native_at_6.at(Mode::kThreadPool)) /
                  static_cast<double>(fabric_frames)
            : 0.0);
    // Absolute fabric throughput: folded units per second of native-regime
    // wall clock at 6 agents. Unlike the per-frame delta this includes the
    // work itself, so it is the number to watch when the question is "how
    // fast does the fleet drain a campaign", not "what does the wire cost".
    json.Field("distributed_units_per_sec",
               Ratio(static_cast<double>(fabric_frames) / 2.0,
                     native_at_6.at(Mode::kDistributed)));
    json.BeginArray("rows");
    for (const Row& row : rows) {
      json.BeginObject();
      json.Field("regime", row.regime);
      json.Field("mode", ModeName(row.mode));
      json.Field("workers", row.workers);
      json.Field("seconds", row.seconds, 6);
      json.Field("speedup_vs_sequential", row.speedup_vs_sequential);
      json.Field("findings", static_cast<uint64_t>(row.findings));
      json.Field("cache_hits", row.cache_hits);
      json.Field("cache_misses", row.cache_misses);
      json.EndObject();
    }
    json.EndArray();
  });
}

void PrintScaling() {
  PrintHeader(
      "§4 — Test in parallel: sharding vs work-stealing vs thread pool");

  std::vector<Row> rows;
  std::map<Mode, double> native_at_6;
  double native_sequential = 0;
  // Five repetitions in the native regime: the headline fabric metric is a
  // *difference* of two best-of-N minima, so its noise is the sum of both
  // arms' sampling error — three samples per arm was visibly not enough on
  // a busy single-core box.
  RunRegime("native", /*repetitions=*/5, &rows, &native_at_6,
            &native_sequential);

  SetSyntheticRunLatencyUs(kPaperCostLatencyUs);
  std::map<Mode, double> paper_at_6;
  double paper_sequential = 0;
  RunRegime("paper-cost", /*repetitions=*/2, &rows, &paper_at_6,
            &paper_sequential);
  SetSyntheticRunLatencyUs(0);

  const int cores = HardwareCores();
  std::printf(
      "paper-cost regime at 6 workers, vs static sharding:\n"
      "  work-stealing alone:      %.2fx\n"
      "  work-stealing + cache:    %.2fx\n"
      "  thread pool:              %.2fx\n"
      "  thread pool + cache:      %.2fx   <- the full in-process engine\n"
      "  distributed fabric:       %.2fx\n"
      "  distributed + cache:      %.2fx\n"
      "Static sharding is bounded by its largest shard (minidfs, ~70%% of the\n"
      "work); dynamic dispatch is bounded by the largest single (app,\n"
      "unit-test) unit. Exactness costs re-runs: frequent-failure threshold\n"
      "crossings spread across the whole canonical order, so speculatively\n"
      "dispatched units re-run to match the sequential globally-unsafe set\n"
      "bit-for-bit; the run cache recoups exactly that duplicated work. The\n"
      "thread pool runs the same dispatch with zero fork/exec/pipe cost and\n"
      "a cache every worker shares, which is why it leads both regimes. In\n"
      "the native regime thread parallelism is bounded by physical cores\n"
      "(this box: %d); the forked schedulers lose outright to fork/IPC\n"
      "overhead there — reported for honesty. Findings are bitwise-identical\n"
      "in every row (tests/parallel_scheduler_test.cc,\n"
      "tests/thread_pool_scheduler_test.cc).\n\n",
      Ratio(paper_at_6[Mode::kSharded], paper_at_6[Mode::kStealing]),
      Ratio(paper_at_6[Mode::kSharded], paper_at_6[Mode::kStealingCache]),
      Ratio(paper_at_6[Mode::kSharded], paper_at_6[Mode::kThreadPool]),
      Ratio(paper_at_6[Mode::kSharded], paper_at_6[Mode::kThreadPoolCache]),
      Ratio(paper_at_6[Mode::kSharded], paper_at_6[Mode::kDistributed]),
      Ratio(paper_at_6[Mode::kSharded], paper_at_6[Mode::kDistributedCache]),
      cores);

  CampaignReport sequential_report;
  TimeRun(Mode::kSequential, 1, &sequential_report);

  // v1 charged every folded unit one kDispatch and one kResult frame; v2
  // batches both directions, but the 2x denominator is kept so the
  // per-frame overhead series stays comparable across PRs.
  int64_t fabric_units = 0;
  for (const auto& [app, counts] : sequential_report.per_app) {
    fabric_units += counts.tests_total;
  }
  const int64_t fabric_frames = 2 * fabric_units;
  std::printf(
      "Fabric overhead: distributed vs threadpool at 6 workers (native) is\n"
      "%.3f s across %lld v1-equivalent dispatch/result frames — %.1f us per\n"
      "frame (v2 batches units per frame; the v1 denominator normalizes the\n"
      "whole fabric tax per unit of useful work), %.1f units/s end to end.\n\n",
      native_at_6[Mode::kDistributed] - native_at_6[Mode::kThreadPool],
      static_cast<long long>(fabric_frames),
      fabric_frames > 0 ? 1e6 *
                              (native_at_6[Mode::kDistributed] -
                               native_at_6[Mode::kThreadPool]) /
                              static_cast<double>(fabric_frames)
                        : 0.0,
      Ratio(static_cast<double>(fabric_units),
            native_at_6[Mode::kDistributed]));

  FleetEstimate fleet =
      EstimateFleet(sequential_report.run_durations_seconds, 100, 20);
  std::printf(
      "Fleet extrapolation: the paper's workload is ~10^8x larger with the\n"
      "same structure; the per-run fleet model puts our %s measured runs\n"
      "(%.3f CPU-seconds) at a %.4f s makespan on the paper's 100x20 fleet.\n\n",
      WithCommas(fleet.runs).c_str(), fleet.total_cpu_seconds,
      fleet.makespan_seconds);

  WriteJson(rows, native_at_6, paper_at_6, native_sequential,
            paper_sequential, fabric_frames);
}

// Fast CI gate (no google-benchmark pass, no JSON): bitwise identity between
// sequential and the thread pool at several thread counts, plus the
// core-scaled native-regime speedup floor at 6 workers. Exits nonzero on the
// first violation so the determinism contract breaks the build, not just a
// dashboard.
int RunCiGate() {
  PrintHeader("thread-pool CI gate: bitwise identity + core-scaled speedup");
  CampaignReport sequential;
  double sequential_seconds = BestOf(3, Mode::kSequential, 1, &sequential);
  const std::string expected = SerializeReport(sequential);

  for (int workers : {2, 6}) {
    for (Mode mode : {Mode::kThreadPool, Mode::kThreadPoolCache}) {
      CampaignReport report;
      BestOf(1, mode, workers, &report);
      // Scheduling-dependent accounting differs legitimately; zero it out so
      // the comparison covers findings, stage counts, and detection order.
      report.wall_seconds = sequential.wall_seconds;
      report.cache_hits = sequential.cache_hits;
      report.cache_misses = sequential.cache_misses;
      report.cache_evictions = sequential.cache_evictions;
      report.run_durations_seconds = sequential.run_durations_seconds;
      if (SerializeReport(report) != expected) {
        std::fprintf(stderr,
                     "FAIL: %s at %d workers is not bitwise-identical to the "
                     "sequential campaign\n",
                     ModeName(mode), workers);
        return 1;
      }
      std::printf("identity: %s at %d workers OK\n", ModeName(mode), workers);
    }
  }

  // More threads than cores measures timeslicing plus speculation re-runs,
  // not the engine: match the gate's thread count to the hardware.
  const int cores = HardwareCores();
  const int gate_workers = std::clamp(cores, 2, 6);
  const double floor = CoreScaledSpeedupFloor(cores);
  double pool_seconds = BestOf(3, Mode::kThreadPool, gate_workers, nullptr);
  double speedup = Ratio(sequential_seconds, pool_seconds);
  std::printf(
      "native speedup at %d workers: %.2fx (floor %.2fx on %d cores)\n",
      gate_workers, speedup, floor, cores);
  if (speedup < floor) {
    std::fprintf(stderr,
                 "FAIL: native thread-pool speedup %.2fx at %d workers below "
                 "the core-scaled floor %.2fx\n",
                 speedup, gate_workers, floor);
    return 1;
  }
  std::printf("thread-pool CI gate passed\n");
  return 0;
}

void BM_ShardedCampaign(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CampaignOptions options;
    CampaignReport report =
        RunShardedCampaign(FullSchema(), FullCorpus(), options, workers);
    benchmark::DoNotOptimize(report.findings.size());
  }
}
BENCHMARK(BM_ShardedCampaign)->Arg(1)->Arg(3)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_WorkStealingCampaign(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CampaignOptions options;
    CampaignReport report =
        RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, workers);
    benchmark::DoNotOptimize(report.findings.size());
  }
}
BENCHMARK(BM_WorkStealingCampaign)
    ->Arg(1)
    ->Arg(3)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_WorkStealingCampaignCached(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CampaignOptions options;
    options.enable_run_cache = true;
    CampaignReport report =
        RunWorkStealingCampaign(FullSchema(), FullCorpus(), options, workers);
    benchmark::DoNotOptimize(report.findings.size());
  }
}
BENCHMARK(BM_WorkStealingCampaignCached)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_ThreadPoolCampaign(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CampaignOptions options;
    CampaignReport report =
        RunThreadPoolCampaign(FullSchema(), FullCorpus(), options, workers);
    benchmark::DoNotOptimize(report.findings.size());
  }
}
BENCHMARK(BM_ThreadPoolCampaign)
    ->Arg(1)
    ->Arg(3)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_ThreadPoolCampaignCached(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CampaignOptions options;
    options.enable_run_cache = true;
    CampaignReport report =
        RunThreadPoolCampaign(FullSchema(), FullCorpus(), options, workers);
    benchmark::DoNotOptimize(report.findings.size());
  }
}
BENCHMARK(BM_ThreadPoolCampaignCached)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace zebra

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ci-gate") == 0) {
      return zebra::RunCiGate();
    }
  }
  zebra::PrintScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
