// Corpus inventory: pre-runs every whole-system unit test and prints what
// the ZebraConf pre-run phase learns about it — node types started,
// parameters read per entity, sharing, uncertainty. Useful when growing the
// corpus (is my new test actually effective for the parameter I care about?).
//
//   $ ./corpus_inventory [app]

#include <cstdio>
#include <string>

#include "src/testkit/test_execution.h"
#include "src/testkit/unit_test_registry.h"

int main(int argc, char** argv) {
  using namespace zebra;

  std::string filter = argc > 1 ? argv[1] : "";
  int total = 0;
  int with_nodes = 0;
  int sharing = 0;
  int with_uncertainty = 0;

  for (const UnitTestDef& test : FullCorpus().tests()) {
    if (!filter.empty() && test.app != filter) {
      continue;
    }
    ++total;
    TestResult result = RunUnitTest(test, TestPlan{}, /*trial=*/0);
    const SessionReport& report = result.report;

    std::printf("%-48s %s\n", test.id.c_str(),
                result.passed ? "pass" : "FAIL (flaky or broken)");
    if (!report.StartedAnyNode()) {
      std::printf("    starts no nodes (filtered by pre-run)\n");
      continue;
    }
    ++with_nodes;
    std::printf("    nodes:");
    for (const auto& [type, count] : report.node_counts) {
      std::printf(" %s x%d", type.c_str(), count);
    }
    std::printf("\n    reads:");
    for (const auto& [entity, params] : report.reads) {
      std::printf(" %s(%zu)", entity.c_str(), params.size());
    }
    std::printf("\n");
    if (report.conf_sharing_detected) {
      ++sharing;
    }
    if (!report.uncertain_params.empty()) {
      ++with_uncertainty;
      std::printf("    uncertain params: %zu (excluded for this test)\n",
                  report.uncertain_params.size());
    }
  }

  std::printf("\n%d tests (%d start nodes, %d share conf objects, %d carry "
              "uncertain confs)\n",
              total, with_nodes, sharing, with_uncertainty);
  return 0;
}
