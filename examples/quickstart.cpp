// Quickstart: run the ZebraConf pipeline against one application (the HBase
// analog) and print the heterogeneous-unsafe parameters it finds.
//
//   $ ./quickstart
//
// The pipeline (paper Figure 1):
//   1. TestGenerator pre-runs the application's whole-system unit tests to
//      learn which node types read which parameters,
//   2. generates heterogeneous test instances (value pairs x assignment
//      strategies) only for effective (test, parameter, node type) triples,
//   3. pooled testing runs many parameters per unit-test execution and
//      bisects failures,
//   4. TestRunner validates candidates against homogeneous controls and a
//      Fisher exact test at significance 1e-4.

#include <cstdio>

#include "src/core/campaign.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/ground_truth.h"
#include "src/testkit/unit_test_registry.h"

int main() {
  using namespace zebra;

  CampaignOptions options;
  options.apps = {"minikv"};

  Campaign campaign(FullSchema(), FullCorpus(), options);
  CampaignReport report = campaign.Run();

  std::printf("ZebraConf quickstart — application: minikv (HBase analog)\n\n");
  const AppStageCounts& counts = report.per_app.at("minikv");
  std::printf("test instances: %lld originally conceivable\n",
              static_cast<long long>(counts.original));
  std::printf("                %lld after pre-running the unit tests\n",
              static_cast<long long>(counts.after_prerun));
  std::printf("                %lld after removing uncertain conf objects\n",
              static_cast<long long>(counts.after_uncertainty));
  std::printf("unit-test runs: %lld executed (pooling + controls + trials)\n\n",
              static_cast<long long>(counts.executed_runs));

  std::printf("heterogeneous-unsafe parameters found:\n");
  for (const auto& [param, finding] : report.findings) {
    std::printf("  %-45s p=%.2e\n", param.c_str(), finding.best_p_value);
    std::printf("      witness: %s\n", finding.witness_tests.begin()->c_str());
    std::printf("      failure: %.100s\n", finding.example_failure.c_str());
    if (!IsExpectedUnsafe(param)) {
      std::printf("      NOTE: known false-positive source (%s)\n",
                  KnownFalsePositiveSources().count(param) > 0
                      ? KnownFalsePositiveSources().at(param).c_str()
                      : "unclassified");
    }
  }
  std::printf("\ndone in %.3f s\n", report.wall_seconds);
  return 0;
}
