// Dependency mining: the paper's §4 future-work item, implemented.
//
// TestGenerator needs developer-supplied rules like "when testing
// dfs.http.policy=HTTPS_ONLY, also set dfs.namenode.https-address". The miner
// discovers such value-conditional dependencies automatically by re-running
// unit tests under each candidate value of every enum parameter and diffing
// which other parameters get read.
//
//   $ ./dependency_mining [app]

#include <cstdio>
#include <string>

#include "src/core/dependency_miner.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

int main(int argc, char** argv) {
  using namespace zebra;

  std::string app = argc > 1 ? argv[1] : "minidfs";

  DependencyMiner miner(FullSchema(), FullCorpus());
  int64_t executions = 0;
  std::vector<MinedRule> rules = miner.MineApp(app, &executions);

  std::printf("dependency mining for %s (%lld unit-test executions)\n\n", app.c_str(),
              static_cast<long long>(executions));
  if (rules.empty()) {
    std::printf("no value-conditional dependencies discovered\n");
    return 0;
  }
  std::printf("%-28s %-14s %s\n", "parameter", "when value is", "also set");
  for (const MinedRule& rule : rules) {
    std::printf("%-28s %-14s %s\n", rule.param.c_str(), rule.value.c_str(),
                rule.dep_param.c_str());
  }
  std::printf(
      "\nThese match the hand-written §4 rules (http policy -> address params);\n"
      "DependencyMiner::InstallRules() feeds them back into the schema so\n"
      "TestGenerator applies them without developer effort.\n");
  return 0;
}
