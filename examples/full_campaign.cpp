// Full campaign driver: runs the ZebraConf pipeline over any subset of the
// six applications and prints the complete evaluation report.
//
//   $ ./full_campaign                          # all applications
//   $ ./full_campaign minidfs minimr           # a subset
//   $ ./full_campaign --no-pooling minikv      # ablate pooled testing
//   $ ./full_campaign --first-trials 3         # §5 false-negative mitigation
//   $ ./full_campaign --report report.md       # write a markdown report
//   $ ./full_campaign --cache-file runs.zc     # warm-start the run cache
//   $ ./full_campaign --equiv-cache            # observational-equivalence dedup
//   $ ./full_campaign --journal camp.zj        # crash-safe result journal
//   $ ./full_campaign --journal camp.zj --resume   # pick up where it stopped
//   $ ./full_campaign --static-prior           # zebralint prune/rank/couple
//   $ ./full_campaign --static-prior --no-coupling-plans   # ablate coupling
//   $ ./full_campaign --impacted-only diff.json    # re-test only tests whose
//                                                  # reads intersect the diff
//   $ ./full_campaign --engine threadpool --workers 4   # pick the execution
//                                                       # backend explicitly
//   $ ./full_campaign --engine distributed --agents 4 --agent-threads 2
//                                              # TCP fabric, local agents
//   $ ./full_campaign --engine distributed --agents 2 --listen :9009
//                                              # coordinator for real hosts
//   $ ./full_campaign --connect host:9009 --agent-index 0 --agent-threads 4
//                                              # one agent on a real host
//
// SIGINT/SIGTERM request a graceful stop: the campaign halts at the next
// unit boundary, the run cache (if any) is saved, and — when journaling —
// the journal retains everything folded so far, so `--resume` continues the
// run instead of restarting it.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/prior_diff.h"
#include "src/analysis/static_prior.h"
#include "src/common/error.h"
#include "src/core/campaign.h"
#include "src/core/campaign_agent.h"
#include "src/core/campaign_executor.h"
#include "src/core/fabric_wire.h"
#include "src/core/parallel_scheduler.h"
#include "src/core/report_writer.h"
#include "src/core/sharded_campaign.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/ground_truth.h"
#include "src/testkit/unit_test_registry.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

extern "C" void HandleStopSignal(int) { g_stop = 1; }

void InstallStopHandlers() {
  struct sigaction action {};
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zebra;

  CampaignOptions options;
  std::string report_path;
  std::string cache_file;
  std::string journal_path;
  std::string impacted_path;
  std::string engine_name;
  bool use_static_prior = false;
  bool resume = false;
  int workers = 1;
  int journal_sync_batch = 1;
  int agents = 0;
  int agent_threads = 1;
  int agent_index = 0;
  int pipeline_depth = 0;
  std::string listen_address;
  std::string connect_address;
  std::string agent_cache_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-pooling") == 0) {
      options.enable_pooling = false;
    } else if (std::strcmp(argv[i], "--no-round-robin") == 0) {
      options.enable_round_robin = false;
    } else if (std::strcmp(argv[i], "--no-prerun-prune") == 0) {
      options.prune_unread_instances = false;
    } else if (std::strcmp(argv[i], "--first-trials") == 0 && i + 1 < argc) {
      options.first_trials = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-file") == 0 && i + 1 < argc) {
      cache_file = argv[++i];
      options.enable_run_cache = true;
    } else if (std::strcmp(argv[i], "--equiv-cache") == 0) {
      options.enable_equiv_cache = true;
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      journal_path = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strncmp(argv[i], "--journal-sync=", 15) == 0) {
      const char* value = argv[i] + 15;
      if (std::strcmp(value, "every") == 0) {
        journal_sync_batch = 1;
      } else if (std::strncmp(value, "batch:", 6) == 0 &&
                 std::atoi(value + 6) >= 1) {
        journal_sync_batch = std::atoi(value + 6);
      } else {
        std::fprintf(stderr,
                     "--journal-sync takes 'every' or 'batch:N' (N >= 1)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--watchdog-floor") == 0 && i + 1 < argc) {
      options.watchdog_floor_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--static-prior") == 0) {
      use_static_prior = true;
    } else if (std::strcmp(argv[i], "--no-coupling-plans") == 0) {
      options.enable_coupling_plans = false;
    } else if (std::strcmp(argv[i], "--impacted-only") == 0 && i + 1 < argc) {
      impacted_path = argv[++i];
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine_name = argv[++i];
    } else if (std::strcmp(argv[i], "--agents") == 0 && i + 1 < argc) {
      agents = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--agent-threads") == 0 && i + 1 < argc) {
      agent_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--agent-index") == 0 && i + 1 < argc) {
      agent_index = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--pipeline-depth") == 0 && i + 1 < argc) {
      pipeline_depth = std::atoi(argv[++i]);
      if (pipeline_depth < 1) {
        std::fprintf(stderr, "--pipeline-depth takes an integer >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--agent-cache-dir") == 0 && i + 1 < argc) {
      agent_cache_dir = argv[++i];
      options.enable_run_cache = true;
    } else if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      listen_address = argv[++i];
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect_address = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--no-pooling] [--no-round-robin] [--no-prerun-prune]\n"
          "          [--first-trials N] [--workers N] [--report FILE]\n"
          "          [--cache-file FILE] [--equiv-cache]\n"
          "          [--journal FILE] [--resume] [--journal-sync=every|batch:N]\n"
          "          [--watchdog-floor SECONDS]\n"
          "          [--static-prior] [--no-coupling-plans]\n"
          "          [--impacted-only DIFF.json]\n"
          "          [--engine sequential|sharded|stealing|threadpool|"
          "distributed]\n"
          "          [--agents N] [--agent-threads K] [--pipeline-depth N]\n"
          "          [--agent-cache-dir DIR] [--listen HOST:PORT]\n"
          "          [--connect HOST:PORT] [--agent-index N]\n"
          "          [app ...]\n"
          "apps: minidfs minimr miniyarn ministream minikv apptools\n"
          "--cache-file warm-starts the run cache from FILE (if it exists)\n"
          "and saves the cache back after the campaign (also on SIGINT/SIGTERM).\n"
          "--journal appends every folded unit result to FILE (crash-safe);\n"
          "--resume replays a journal's valid prefix instead of re-running it.\n"
          "--journal-sync picks the durability policy: 'every' (default)\n"
          "fdatasyncs each record; 'batch:N' group-commits up to N records\n"
          "per sync — faster folds, at most N-1 records of resume coverage\n"
          "lost to a crash. Findings are identical either way.\n"
          "--watchdog-floor tunes the hung-worker deadline floor (0 disables;\n"
          "see docs/ROBUSTNESS.md).\n"
          "--static-prior runs zebralint over the build tree first: never-read\n"
          "parameters are pruned, wire-tainted ones run first, and coupled\n"
          "pairs get an add-on phase (--no-coupling-plans ablates it).\n"
          "--impacted-only restricts the dynamic phase to tests whose pre-run\n"
          "reads intersect the impacted list of a `zebralint --diff --json`\n"
          "artifact (see docs/ZEBRALINT.md).\n"
          "--engine picks the execution backend explicitly (all five produce\n"
          "bitwise-identical findings; see docs/PARALLEL.md). Without it the\n"
          "driver routes by flags: journaled runs use the work-stealing pool,\n"
          "--workers N>1 uses per-app sharding, otherwise sequential.\n"
          "--engine distributed runs the TCP campaign fabric: --agents N\n"
          "forked local agent processes x --agent-threads K threads each\n"
          "(docs/ROBUSTNESS.md, fabric section). --listen HOST:PORT instead\n"
          "waits for N remote agents started with --connect HOST:PORT\n"
          "--agent-index I (agent mode runs no coordinator: it executes\n"
          "dispatched units until kShutdown and exits).\n"
          "--pipeline-depth keeps depth x K leases in flight per agent\n"
          "(default 2) so agent workers never stall on a dispatch round\n"
          "trip; findings are identical at every depth.\n"
          "--agent-cache-dir DIR persists each agent's run cache to\n"
          "DIR/fabric-<schema-hash>-agent<N>.zc across campaigns (implies\n"
          "the run cache; corrupt files degrade to a cold start). In agent\n"
          "mode the same flag names where this agent loads/saves its cache.\n",
          argv[0]);
      return 0;
    } else {
      options.apps.emplace_back(argv[i]);
    }
  }
  if (resume && journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal FILE\n");
    return 2;
  }

  // Agent mode: no coordinator, no report. Connect to one, execute whatever
  // it dispatches, exit with the agent's status (0 after a clean kShutdown).
  if (!connect_address.empty()) {
    std::string host;
    uint16_t port = 0;
    std::string parse_error;
    if (!ParseHostPort(connect_address, &host, &port, &parse_error)) {
      std::fprintf(stderr, "--connect takes HOST:PORT: %s\n",
                   parse_error.c_str());
      return 2;
    }
    CampaignAgentOptions agent;
    agent.host = host;
    agent.port = port;
    agent.agent_index = agent_index;
    agent.threads = agent_threads < 1 ? 1 : agent_threads;
    agent.cache_dir = agent_cache_dir;
    return RunCampaignAgent(FullSchema(), FullCorpus(), options, agent);
  }

  std::optional<ExecutorKind> engine;
  if (!engine_name.empty()) {
    engine = ParseExecutorKind(engine_name);
    if (!engine) {
      std::fprintf(stderr,
                   "unknown --engine '%s' "
                   "(sequential|sharded|stealing|threadpool|distributed)\n",
                   engine_name.c_str());
      return 2;
    }
  }
  if ((agents > 0 || agent_threads != 1 || !listen_address.empty() ||
       pipeline_depth > 0 || !agent_cache_dir.empty()) &&
      (!engine || *engine != ExecutorKind::kDistributed)) {
    std::fprintf(stderr,
                 "--agents/--agent-threads/--listen/--pipeline-depth/"
                 "--agent-cache-dir require --engine distributed\n");
    return 2;
  }

  analysis::StaticPriorReport prior;
  if (use_static_prior) {
    analysis::StaticAnalyzer analyzer;
    if (analyzer.AddTree(ZEBRALINT_SOURCE_ROOT) == 0) {
      std::fprintf(stderr, "full_campaign: no sources under %s/src\n",
                   ZEBRALINT_SOURCE_ROOT);
      return 2;
    }
    prior = analyzer.Analyze(&FullSchema());
    options.static_prior = &prior;
    std::printf("static prior: %zu params profiled, %zu never read, "
                "%zu coupling sets\n",
                prior.params.size(), prior.never_read.size(),
                prior.coupling_sets.size());
  }
  if (!impacted_path.empty()) {
    std::vector<std::string> impacted;
    std::string error;
    if (!analysis::LoadImpactedParams(impacted_path, &impacted, &error)) {
      std::fprintf(stderr, "full_campaign: --impacted-only: %s\n",
                   error.c_str());
      return 2;
    }
    options.impacted_params.insert(impacted.begin(), impacted.end());
    std::printf("impacted-only: %zu parameters from %s\n",
                options.impacted_params.size(), impacted_path.c_str());
    if (options.impacted_params.empty()) {
      std::printf("impacted set is empty: every dynamic phase will be "
                  "skipped (nothing to re-test)\n");
      // An empty set would mean "no restriction"; force a never-matching
      // entry so the restriction stays active.
      options.impacted_params.insert("\x01nothing-impacted");
    }
  }

  InstallStopHandlers();
  options.cancel_flag = &g_stop;

  CampaignReport report;
  try {
  if (engine) {
    // Explicit backend selection: every backend implements CampaignExecutor,
    // so the driver hands over one ExecutorOptions and lets the backend
    // throw on anything it cannot honor (e.g. --journal on sequential)
    // instead of silently dropping the flag.
    ExecutorOptions exec;
    exec.workers = workers < 1 ? 1 : workers;
    exec.journal_path = journal_path;
    exec.resume = resume;
    exec.journal_sync_batch = journal_sync_batch;
    if (*engine == ExecutorKind::kDistributed) {
      // The distributed backend reads workers as the agent count; --agents
      // overrides --workers when both are given.
      if (agents > 0) {
        exec.workers = agents;
      }
      exec.agent_threads = agent_threads < 1 ? 1 : agent_threads;
      exec.pipeline_depth = pipeline_depth;  // 0 = backend default
      exec.agent_cache_dir = agent_cache_dir;
      exec.listen_address = listen_address;
      // A --listen coordinator serves remote --connect agents; without it
      // the backend forks the whole fleet locally.
      exec.spawn_agents = listen_address.empty();
    }
    report = MakeExecutor(*engine)->Run(FullSchema(), FullCorpus(), options,
                                        exec);
  } else if (!journal_path.empty()) {
    // Journaling lives in the work-stealing scheduler; at --workers 1 it is
    // bitwise-identical to the sequential campaign, so routing every
    // journaled run through it costs nothing.
    ParallelCampaignOptions parallel;
    parallel.workers = workers < 1 ? 1 : workers;
    parallel.journal_path = journal_path;
    parallel.resume = resume;
    parallel.journal_sync_batch = journal_sync_batch;
    report = RunWorkStealingCampaign(FullSchema(), FullCorpus(), options,
                                     parallel);
  } else if (workers > 1) {
    report = RunShardedCampaign(FullSchema(), FullCorpus(), options, workers);
  } else {
    Campaign campaign(FullSchema(), FullCorpus(), options);
    if (!cache_file.empty() && campaign.run_cache() != nullptr) {
      if (campaign.run_cache()->LoadFromFile(cache_file)) {
        std::printf("run cache warm-started from %s (%lld entries)\n",
                    cache_file.c_str(),
                    static_cast<long long>(campaign.run_cache()->stats().entries));
      } else if (campaign.run_cache()->stats().load_failures > 0) {
        std::fprintf(stderr,
                     "warning: run cache %s was corrupt; starting cold\n",
                     cache_file.c_str());
      }
    }
    report = campaign.Run();
    // Runs after graceful cancellation too: an interrupted campaign's cache
    // still warm-starts the next invocation.
    if (!cache_file.empty() && campaign.run_cache() != nullptr) {
      if (!campaign.run_cache()->SaveToFile(cache_file)) {
        std::fprintf(stderr, "warning: could not save run cache to %s\n",
                     cache_file.c_str());
      }
    }
  }
  } catch (const Error& error) {
    // Setup failures (incompatible journal, unwritable file, fork trouble)
    // are operator errors, not crashes: name the problem and exit cleanly.
    std::fprintf(stderr, "full_campaign: %s\n", error.what());
    return 2;
  }

  if (g_stop != 0) {
    std::printf("\n*** campaign interrupted (partial results below) ***\n");
    if (!journal_path.empty()) {
      std::printf("resume with: --journal %s --resume\n", journal_path.c_str());
    }
  }

  std::printf("=== ZebraConf campaign report ===\n\n");
  std::printf("%-12s %14s %14s %14s %12s\n", "app", "original", "pre-run",
              "uncertainty", "executed");
  for (const auto& [app, counts] : report.per_app) {
    std::printf("%-12s %14lld %14lld %14lld %12lld\n", app.c_str(),
                static_cast<long long>(counts.original),
                static_cast<long long>(counts.after_prerun),
                static_cast<long long>(counts.after_uncertainty),
                static_cast<long long>(counts.executed_runs));
  }

  int true_positives = 0;
  int false_positives = 0;
  std::printf("\nfindings (%zu):\n", report.findings.size());
  for (const auto& [param, finding] : report.findings) {
    bool expected =
        IsExpectedUnsafe(param) || ProbabilisticUnsafeParams().count(param) > 0;
    expected ? ++true_positives : ++false_positives;
    std::printf("  [%s] %-55s (%zu witness tests)\n", expected ? "TRUE" : "FP  ",
                param.c_str(), finding.witness_tests.size());
  }

  int false_negatives = 0;
  for (const auto& [param, why] : ExpectedUnsafeParams()) {
    const ParamSpec* spec = FullSchema().Find(param);
    bool in_scope = options.apps.empty();
    for (const std::string& app : options.apps) {
      in_scope |= spec != nullptr && (spec->app == app || spec->app == kSharedApp);
    }
    if (in_scope && report.findings.count(param) == 0) {
      ++false_negatives;
      std::printf("  [MISS] %s\n", param.c_str());
    }
  }

  std::printf("\nprecision: %d true / %d false positives / %d missed-in-scope\n",
              true_positives, false_positives, false_negatives);
  std::printf("hypothesis testing: %d first-trial candidates, %d filtered\n",
              report.first_trial_candidates, report.filtered_by_hypothesis);
  std::printf("total unit-test executions: %lld in %.2f s\n",
              static_cast<long long>(report.total_unit_test_runs),
              report.wall_seconds);
  if (report.cache_hits > 0 || report.equiv_hits > 0) {
    std::printf(
        "run cache: %lld exact hits, %lld equivalence hits, %lld plans "
        "canonicalized, %lld mispredictions, %lld evictions\n",
        static_cast<long long>(report.cache_hits),
        static_cast<long long>(report.equiv_hits),
        static_cast<long long>(report.canonicalized_plans),
        static_cast<long long>(report.mispredictions),
        static_cast<long long>(report.cache_evictions));
  }
  if (report.coupling_runs > 0 || report.units_skipped > 0) {
    std::printf(
        "coupling add-on: %lld runs, %lld coupled confirmations; "
        "%lld units skipped by restriction\n",
        static_cast<long long>(report.coupling_runs),
        static_cast<long long>(report.coupling_confirmations),
        static_cast<long long>(report.units_skipped));
  }
  if (report.hung_workers > 0 || report.requeued_units > 0 ||
      report.resumed_units > 0 || report.cache_load_failures > 0) {
    std::printf(
        "fault tolerance: %lld workers SIGKILLed by watchdog, %lld units "
        "re-queued, %lld units resumed from journal, %lld cache load "
        "failures\n",
        static_cast<long long>(report.hung_workers),
        static_cast<long long>(report.requeued_units),
        static_cast<long long>(report.resumed_units),
        static_cast<long long>(report.cache_load_failures));
  }
  if (report.agent_disconnects > 0 || report.expired_leases > 0 ||
      report.duplicate_results > 0) {
    std::printf(
        "distributed fabric: %lld agents retired, %lld leases expired and "
        "re-queued, %lld duplicate results dropped\n",
        static_cast<long long>(report.agent_disconnects),
        static_cast<long long>(report.expired_leases),
        static_cast<long long>(report.duplicate_results));
  }
  if (report.journal_append_failures > 0) {
    std::printf(
        "journal append failures: %lld (journaling disabled mid-campaign; "
        "resume coverage ends at the last synced record)\n",
        static_cast<long long>(report.journal_append_failures));
  }
  for (const std::string& unit : report.poisoned_units) {
    std::printf("poisoned unit (hit the attempt limit; no results): %s\n",
                unit.c_str());
  }

  if (!report_path.empty()) {
    ReportWriterOptions writer_options;
    writer_options.annotate_ground_truth = true;
    writer_options.fleet_machines = 100;
    writer_options.fleet_containers = 20;
    std::ofstream out(report_path);
    out << RenderMarkdownReport(report, writer_options);
    std::printf("markdown report written to %s\n", report_path.c_str());
  }
  return 0;
}
