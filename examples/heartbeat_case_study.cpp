// Case study: dfs.heartbeat.interval (paper §7.1, heartbeat-related
// parameters).
//
// HDFS supports reconfiguring the heartbeat interval at run time
// (hdfs dfsadmin -reconfig), which transiently creates a heterogeneous
// configuration between the heartbeat sender (DataNode) and receiver
// (NameNode). This example demonstrates:
//   1. the failure: a DataNode beating slower than the NameNode expects gets
//      declared dead, and its next heartbeat is rejected;
//   2. the paper's workaround: when DECREASING the interval, reconfigure the
//      sender first; when INCREASING it, reconfigure the receiver first —
//      so the sender's interval never exceeds the receiver's expectation.

#include <cstdio>
#include <string>

#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"
#include "src/runtime/cluster.h"

namespace {

// Runs a cluster in which the DataNode beats every `sender_interval_s` while
// the NameNode expects `receiver_interval_s`, for two virtual minutes.
// Returns a human-readable outcome.
std::string RunPhase(int64_t sender_interval_s, int64_t receiver_interval_s) {
  using namespace zebra;
  Cluster cluster;
  Configuration nn_conf;
  nn_conf.SetInt(kDfsHeartbeatRecheck, 1000);  // check every second
  nn_conf.SetInt(kDfsHeartbeatInterval, receiver_interval_s);
  NameNode nn(&cluster, nn_conf);

  Configuration dn_conf;
  dn_conf.SetInt(kDfsHeartbeatInterval, sender_interval_s);
  try {
    DataNode dn(&cluster, &nn, dn_conf);
    cluster.AdvanceTime(120000);
    return nn.NumLiveDataNodes() == 1 ? "OK (DataNode alive)"
                                      : "DEAD (DataNode lost)";
  } catch (const Error& e) {
    return std::string("FAILED: ") + e.what();
  }
}

}  // namespace

int main() {
  std::printf("dfs.heartbeat.interval case study\n");
  std::printf("NameNode dead window = 2 x recheck + 10 x heartbeat.interval\n\n");

  std::printf("homogeneous baselines:\n");
  std::printf("  sender 3 s,  receiver 3 s:   %s\n", RunPhase(3, 3).c_str());
  std::printf("  sender 100 s, receiver 100 s: %s\n", RunPhase(100, 100).c_str());

  std::printf("\nheterogeneous (the Table 3 failure):\n");
  std::printf("  sender 100 s, receiver 1 s:   %s\n", RunPhase(100, 1).c_str());

  std::printf("\nonline reconfiguration from 100 s down to 1 s:\n");
  std::printf("  step 'sender first'  -> transient (sender 1, receiver 100): %s\n",
              RunPhase(1, 100).c_str());
  std::printf("  step 'receiver first'-> transient (sender 100, receiver 1): %s\n",
              RunPhase(100, 1).c_str());
  std::printf(
      "\nWorkaround (paper §7.1): decreasing the interval must update the sender\n"
      "first; increasing it must update the receiver first. Either way the sender's\n"
      "interval never exceeds what the receiver tolerates. (The workaround cannot\n"
      "help when a node acts as both sender and receiver.)\n");
  return 0;
}
