// Rolling reconfiguration, executed live: the planner's §7.1 ordering is
// applied step-by-step to a running MiniDFS cluster via the nodes' online
// Reconfigure() API (the dfsadmin -reconfig analog), with the cluster kept
// under observation between steps. The wrong ordering is then shown to kill
// a DataNode on an identical cluster.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"
#include "src/core/reconfig_planner.h"
#include "src/runtime/cluster.h"

namespace {

using namespace zebra;

struct LiveCluster {
  explicit LiveCluster(int64_t heartbeat_interval_s) {
    conf.SetInt(kDfsHeartbeatRecheck, 1000);
    conf.SetInt(kDfsHeartbeatInterval, heartbeat_interval_s);
    name_node = std::make_unique<NameNode>(&cluster, conf);
    for (int i = 0; i < 2; ++i) {
      datanodes.push_back(std::make_unique<DataNode>(&cluster, name_node.get(), conf));
    }
  }

  void ApplyStep(const ReconfigStep& step, const std::string& param,
                 const std::string& value) {
    if (step.node_type == "NameNode") {
      name_node->Reconfigure(param, value);
    } else {
      // Map plan step names dn-1, dn-2 onto the live DataNodes in order.
      size_t index = static_cast<size_t>(step.node_name.back() - '1');
      datanodes.at(index)->Reconfigure(param, value);
    }
    // Observe the cluster for a virtual minute between steps.
    cluster.AdvanceTime(60000);
  }

  Cluster cluster;
  Configuration conf;
  std::unique_ptr<NameNode> name_node;
  std::vector<std::unique_ptr<DataNode>> datanodes;
};

}  // namespace

int main() {
  const std::string param = kDfsHeartbeatInterval;
  std::vector<NodeRef> nodes{
      {"nn-1", "NameNode"}, {"dn-1", "DataNode"}, {"dn-2", "DataNode"}};

  // ---- The planned (safe) rollout: decrease 100 s -> 1 s -------------------
  ReconfigPlan plan = PlanReconfiguration(param, "100", "1", nodes);
  std::printf("plan for %s: 100 -> 1 (%s)\n  %s\n", param.c_str(),
              ReconfigCategoryName(plan.category), plan.rationale.c_str());

  LiveCluster safe(/*heartbeat_interval_s=*/100);
  int step_number = 1;
  for (const ReconfigStep& step : plan.steps) {
    safe.ApplyStep(step, param, "1");
    std::printf("  step %d: %s (%s) reconfigured; live DataNodes: %d\n", step_number++,
                step.node_name.c_str(), step.node_type.c_str(),
                safe.name_node->NumLiveDataNodes());
  }
  safe.cluster.AdvanceTime(120000);
  std::printf("after rollout: %d/2 DataNodes alive — SAFE\n\n",
              safe.name_node->NumLiveDataNodes());

  // ---- The wrong ordering on an identical cluster ---------------------------
  std::printf("wrong ordering (receiver first) on an identical cluster:\n");
  LiveCluster doomed(/*heartbeat_interval_s=*/100);
  try {
    doomed.name_node->Reconfigure(param, "1");  // receiver updated first
    doomed.cluster.AdvanceTime(120000);
    std::printf("  unexpectedly survived\n");
  } catch (const Error& e) {
    std::printf("  FAILED as the paper predicts: %s\n", e.what());
  }
  return 0;
}
