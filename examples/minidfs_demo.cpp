// MiniDFS as a plain library: bring up a cluster, write and read files,
// observe liveness, checkpoint, and rebalance — without any ZebraConf
// involvement (outside a ConfAgent session every hook is a no-op).

#include <cstdio>
#include <string>

#include "src/apps/minidfs/balancer.h"
#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_client.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/apps/minidfs/secondary_name_node.h"
#include "src/runtime/cluster.h"

int main() {
  using namespace zebra;

  Cluster cluster;

  Configuration conf;
  conf.SetInt(kDfsReplication, 2);
  conf.SetInt(kDfsBlockSize, 512);

  NameNode name_node(&cluster, conf);
  DataNode dn1(&cluster, &name_node, conf);
  DataNode dn2(&cluster, &name_node, conf);
  DataNode dn3(&cluster, &name_node, conf);
  SecondaryNameNode secondary(&cluster, &name_node, conf);
  DfsClient client(&cluster, &name_node, {&dn1, &dn2, &dn3}, conf);

  std::printf("cluster up: %d DataNodes registered\n",
              name_node.NumRegisteredDataNodes());

  // Write a couple of files and read one back.
  std::string essay;
  for (int i = 0; i < 50; ++i) {
    essay += "line " + std::to_string(i) + " of the demo essay. ";
  }
  client.WriteFile("/docs/essay", essay);
  client.WriteFile("/docs/note", "a short note");
  std::printf("wrote /docs/essay (%zu bytes, %d blocks cluster-wide)\n", essay.size(),
              name_node.TotalBlocks());
  std::printf("read back matches: %s\n",
              client.ReadFile("/docs/essay") == essay ? "yes" : "NO");

  // Let heartbeats run for a virtual minute.
  cluster.AdvanceTime(60000);
  std::printf("after 60 s: live=%d stale=%d dead=%d\n", client.NumLiveDataNodes(),
              client.NumStaleDataNodes(), client.NumDeadDataNodes());

  // Checkpoint the namespace.
  secondary.DoCheckpoint();
  std::printf("checkpoint image: %zu bytes (canonical %zu bytes)\n",
              secondary.ImageBytes().size(), secondary.CanonicalImage().size());

  // Run the balancer (matched configuration: no declines).
  Balancer balancer(&cluster, &name_node, conf);
  BalanceResult moves = balancer.RunMoves(&dn1, 20, 600000);
  std::printf("balancer: %d moves in %.1f s virtual (%d declines)\n",
              moves.completed_moves, moves.elapsed_ms / 1000.0,
              moves.declined_dispatches);

  // Delete and confirm visibility.
  client.DeleteFile("/docs/note");
  std::printf("after delete: %d blocks\n", client.TotalBlocks());
  std::printf("fsck: %s\n", client.Fsck().c_str());
  return 0;
}
