// Operator workflow: from a ZebraConf campaign to deployment decisions.
//
//  1. Run the campaign once; its findings become the knowledge base.
//  2. Check a proposed per-node configuration-file deployment
//     (HeteroConf(F1..Fn) of Definition 3.1) against the knowledge base.
//  3. For a parameter the operator still wants to change, ask the
//     reconfiguration planner for a safe rolling order (§7.1 / §7.3).

#include <cstdio>

#include "src/core/campaign.h"
#include "src/core/deployment_checker.h"
#include "src/core/reconfig_planner.h"
#include "src/testkit/full_schema.h"
#include "src/testkit/unit_test_registry.h"

int main() {
  using namespace zebra;

  // 1. Build the knowledge base (here: a campaign over MiniDFS).
  CampaignOptions options;
  options.apps = {"minidfs"};
  Campaign campaign(FullSchema(), FullCorpus(), options);
  CampaignReport report = campaign.Run();
  DeploymentChecker checker(report);
  std::printf("knowledge base: %d heterogeneous-unsafe parameters (campaign: %.2f s)\n\n",
              checker.knowledge_base_size(), report.wall_seconds);

  // 2a. A sensible heterogeneous deployment: per-node data dirs differ.
  ConfFileSet good;
  good.AddFile("nn-1",
               "dfs.checksum.type = CRC32C\n"
               "dfs.namenode.handler.count = 32\n");
  good.AddFile("dn-1",
               "dfs.checksum.type = CRC32C\n"
               "dfs.datanode.data.dir = /disk1/dfs\n");
  good.AddFile("dn-2",
               "dfs.checksum.type = CRC32C\n"
               "dfs.datanode.data.dir = /disk2/dfs\n");
  DeploymentVerdict good_verdict = checker.Check(good);
  std::printf("proposal A (per-node data dirs): %s\n",
              good_verdict.safe ? "SAFE" : "UNSAFE");
  for (const std::string& param : good_verdict.unknown_heterogeneous) {
    std::printf("  note: '%s' is heterogeneous but not in the knowledge base\n",
                param.c_str());
  }

  // 2b. A deployment about to mix checksum types and heartbeat intervals.
  ConfFileSet bad;
  bad.AddFile("nn-1", "dfs.checksum.type = CRC32C\ndfs.heartbeat.interval = 1\n");
  bad.AddFile("dn-1", "dfs.checksum.type = CRC32\ndfs.heartbeat.interval = 1\n");
  bad.AddFile("dn-2", "dfs.checksum.type = CRC32C\ndfs.heartbeat.interval = 100\n");
  DeploymentVerdict bad_verdict = checker.Check(bad);
  std::printf("\nproposal B (mixed checksums + intervals): %s\n",
              bad_verdict.safe ? "SAFE" : "UNSAFE");
  for (const DeploymentWarning& warning : bad_verdict.warnings) {
    std::printf("  UNSAFE %-45s", warning.param.c_str());
    for (const auto& [node, value] : warning.values) {
      std::printf(" %s=%s", node.c_str(), value.c_str());
    }
    std::printf("\n         because: %.90s\n", warning.reason.c_str());
  }

  // 3. The operator still wants faster heartbeats: plan a safe rollout.
  std::vector<NodeRef> nodes{{"nn-1", "NameNode"}, {"dn-1", "DataNode"},
                             {"dn-2", "DataNode"}};
  ReconfigPlan plan = PlanReconfiguration("dfs.heartbeat.interval", "100", "1", nodes);
  std::printf("\nrolling plan for dfs.heartbeat.interval 100 -> 1 (%s):\n",
              ReconfigCategoryName(plan.category));
  std::printf("  %s\n", plan.rationale.c_str());
  int step = 1;
  for (const ReconfigStep& node : plan.steps) {
    std::printf("  step %d: reconfigure %s (%s)\n", step++, node.node_name.c_str(),
                node.node_type.c_str());
  }

  // And a parameter with no safe order:
  ReconfigPlan refused =
      PlanReconfiguration("dfs.encrypt.data.transfer", "false", "true", nodes);
  std::printf("\nrolling plan for dfs.encrypt.data.transfer false -> true:\n  REFUSED: %s\n",
              refused.rationale.c_str());
  return 0;
}
