// Case study: dfs.datanode.balance.max.concurrent.moves (paper §7.1).
//
// Shows the congestion collapse when the Balancer believes DataNodes admit
// more concurrent moves than they do, and the community's proposed fix
// (HDFS-7466): the Balancer should fetch each DataNode's value instead of
// reading its own configuration file.

#include <cstdio>

#include "src/apps/minidfs/balancer.h"
#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"
#include "src/runtime/cluster.h"

namespace {

using namespace zebra;

struct Outcome {
  double seconds = 0;
  int declines = 0;
  bool timed_out = false;
};

Outcome Run(int64_t dn_max, int64_t balancer_max) {
  Cluster cluster;
  Configuration nn_conf;
  NameNode nn(&cluster, nn_conf);
  Configuration dn_conf;
  dn_conf.SetInt(kDfsBalanceMaxMoves, dn_max);
  DataNode dn(&cluster, &nn, dn_conf);
  Configuration bal_conf;
  bal_conf.SetInt(kDfsBalanceMaxMoves, balancer_max);
  Balancer balancer(&cluster, &nn, bal_conf);

  Outcome outcome;
  try {
    BalanceResult result = balancer.RunMoves(&dn, 150, 1000000);
    outcome.seconds = result.elapsed_ms / 1000.0;
    outcome.declines = result.declined_dispatches;
  } catch (const TimeoutError&) {
    outcome.timed_out = true;
  }
  return outcome;
}

void Report(const char* label, int64_t dn_max, int64_t bal_max, const char* paper) {
  Outcome outcome = Run(dn_max, bal_max);
  std::printf("  %-28s %7.1f s   %5d declines   (paper: %s)\n", label,
              outcome.seconds, outcome.declines, paper);
}

}  // namespace

int main() {
  std::printf("dfs.datanode.balance.max.concurrent.moves case study (150 moves)\n\n");
  Report("(DataNode:50, Balancer:50)", 50, 50, "14 s");
  Report("(DataNode:1,  Balancer:1)", 1, 1, "16.7 s");
  Report("(DataNode:1,  Balancer:50)", 1, 50, "154 s");

  std::printf(
      "\nWhy (DataNode:1, Balancer:50) is ~10x slower than (1,1): the Balancer\n"
      "dispatches 50 concurrent requests; the DataNode accepts one and declines 49;\n"
      "each declined dispatcher sleeps 1100 ms before retrying, while a move itself\n"
      "takes ~110 ms — so progress is paced by the backoff, not the move time.\n");

  std::printf(
      "\nProposed fix (HDFS-7466): the Balancer fetches each DataNode's value and\n"
      "dispatches at the DataNode's own capacity. Emulating the fix by sizing the\n"
      "dispatcher at the DataNode's limit:\n");
  Report("fixed: fetch DN value (=1)", 1, 1, "no declines expected");

  std::printf(
      "\nNote the deeper point from the paper: if different DataNodes have\n"
      "different limits, the Balancer's single file-based value is *inevitably*\n"
      "wrong for some of them — per-node values must travel with the protocol.\n");
  return 0;
}
